"""Bench: regenerate Table 2 (revocation activity)."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_table2(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "table2", save, rounds=ROUNDS_HEAVY)
    assert result.measured["full_revokers"] == ["DigiCert", "Sectigo"]
