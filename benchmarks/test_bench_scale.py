"""Bench: the scale ladder — build cost and peak memory toward paper scale.

The source paper measures ~11.7M domains under .ru/.su/.рф (§2); the
repo's default bench scale is 1:250 of that.  This bench climbs the
ladder — 1:250 → 1:50 → 1:10, and 1:1 when ``REPRO_SCALE_FULL=1`` —
building a short daily archive window at each rung through the
streaming (``chunk_domains``) path inside a fresh subprocess, so every
rung reports an honest, isolated peak RSS.

Per rung, ``benchmarks/output/BENCH_scale.json`` records population,
build seconds (world construction included), archive bytes, peak RSS,
and warm query latency.  Two regression gates run over the ladder:

* **sublinear memory** — peak RSS must grow strictly slower than the
  population between adjacent rungs (the bounded-memory invariant:
  per-day encode transients scale with ``chunk_domains``, not scale);
* **absolute ceiling** — no rung may exceed ``REPRO_SCALE_MAX_RSS_MB``
  (default 6144), which CI tightens for the rungs it runs.

Env knobs: ``REPRO_SCALE_RUNGS`` (comma-separated divisors, default
``250,50,10``), ``REPRO_SCALE_FULL=1`` (append the 1:1 rung),
``REPRO_SCALE_MAX_RSS_MB``, ``REPRO_SCALE_MIN_DOMAIN_RATE``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import textwrap

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

#: The daily window each rung archives (3 conflict-window days).
WINDOW_START = "2022-02-24"
WINDOW_END = "2022-02-26"
WINDOW_DAYS = 3

#: Streaming chunk used at every rung: the per-day encode transients
#: stay bounded by this many domains no matter the scale.
CHUNK_DOMAINS = 50_000

#: Ladder rungs as scale divisors (1:N of the paper's 11.7M domains).
DEFAULT_RUNGS = "250,50,10"

#: Peak-RSS ceiling per rung, MiB.  Generous by default (the 1:10 rung
#: holds a ~1.2M-domain world); CI enforces a tighter value for the
#: small rungs it runs.
MAX_RSS_MIB = float(os.environ.get("REPRO_SCALE_MAX_RSS_MB", "6144"))

#: Build-throughput floor, measured domain-days archived per second of
#: total rung time (world build included).  A modest floor that catches
#: order-of-magnitude regressions without flaking on shared runners.
MIN_DOMAIN_RATE = float(os.environ.get("REPRO_SCALE_MIN_DOMAIN_RATE", "500"))


def ladder_rungs() -> list:
    rungs = [
        int(token)
        for token in os.environ.get("REPRO_SCALE_RUNGS", DEFAULT_RUNGS).split(",")
        if token.strip()
    ]
    if os.environ.get("REPRO_SCALE_FULL") == "1" and 1 not in rungs:
        rungs.append(1)
    return rungs


_RUNG_SCRIPT = textwrap.dedent(
    """
    import json
    import sys
    import time

    from repro.archive import ArchiveBuilder, MeasurementArchive
    from repro.measurement.metrics import SweepMetrics, current_rss_bytes
    from repro.sim import ConflictScenarioConfig

    divisor, directory, window_start, window_end, chunk = (
        int(sys.argv[1]), sys.argv[2], sys.argv[3], sys.argv[4], int(sys.argv[5])
    )
    metrics = SweepMetrics()
    config = ConflictScenarioConfig(scale=float(divisor), with_pki=False)
    started = time.perf_counter()
    builder = ArchiveBuilder(
        directory, config, metrics=metrics, chunk_domains=chunk
    )
    report = builder.build(window_start, window_end)
    build_seconds = time.perf_counter() - started
    metrics.sample_rss()

    archive = MeasurementArchive(directory)
    population = archive.manifest.population_size

    # Warm query latency: coarse longitudinal queries replay stored
    # summaries; time the second pass (caches hot), report both.
    started = time.perf_counter()
    cold = archive.load_summaries(window_start, window_end)
    cold_query_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = archive.load_summaries(window_start, window_end)
    warm_query_seconds = time.perf_counter() - started
    assert warm == cold and all(s is not None for s in warm)

    print(json.dumps({
        "divisor": divisor,
        "population": population,
        "archived_days": len(report.written),
        "build_seconds": round(build_seconds, 3),
        "archive_bytes": report.bytes_written,
        "peak_rss_bytes": max(metrics.peak_rss_bytes, current_rss_bytes()),
        "cold_query_seconds": round(cold_query_seconds, 6),
        "warm_query_seconds": round(warm_query_seconds, 6),
    }))
    """
)


def run_rung(divisor: int, directory: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    result = subprocess.run(
        [
            sys.executable, "-c", _RUNG_SCRIPT,
            str(divisor), directory, WINDOW_START, WINDOW_END,
            str(CHUNK_DOMAINS),
        ],
        capture_output=True,
        text=True,
        timeout=3600,
        env=env,
    )
    assert result.returncode == 0, (
        f"rung 1:{divisor} failed:\n{result.stderr[-2000:]}"
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_bench_scale_ladder(tmp_path):
    rungs = ladder_rungs()
    assert len(rungs) >= 2, "the ladder needs at least two rungs to compare"
    records = []
    for divisor in rungs:
        record = run_rung(divisor, str(tmp_path / f"rung-{divisor}"))
        assert record["archived_days"] == WINDOW_DAYS
        assert record["archive_bytes"] > 0
        peak_mib = record["peak_rss_bytes"] / (1024 * 1024)
        assert peak_mib <= MAX_RSS_MIB, (
            f"rung 1:{divisor} peaked at {peak_mib:.0f} MiB "
            f"(ceiling {MAX_RSS_MIB:.0f} MiB)"
        )
        domain_days = record["population"] * WINDOW_DAYS
        rate = domain_days / record["build_seconds"]
        assert rate >= MIN_DOMAIN_RATE, (
            f"rung 1:{divisor} archived {rate:.0f} domain-days/s "
            f"(floor {MIN_DOMAIN_RATE:.0f})"
        )
        records.append(record)

    # The bounded-memory invariant: between adjacent rungs the
    # population grows by the divisor ratio, peak RSS must grow by
    # strictly less (fixed interpreter/numpy baseline + chunk-bounded
    # encode transients; only the world and the day columns scale).
    ordered = sorted(records, key=lambda record: record["population"])
    growth = []
    for smaller, larger in zip(ordered, ordered[1:]):
        population_ratio = larger["population"] / smaller["population"]
        rss_ratio = larger["peak_rss_bytes"] / smaller["peak_rss_bytes"]
        growth.append(
            {
                "from_divisor": smaller["divisor"],
                "to_divisor": larger["divisor"],
                "population_ratio": round(population_ratio, 2),
                "rss_ratio": round(rss_ratio, 2),
            }
        )
        assert rss_ratio < population_ratio, (
            f"peak RSS grew {rss_ratio:.2f}x for a {population_ratio:.2f}x "
            f"population step (1:{smaller['divisor']} -> "
            f"1:{larger['divisor']}): the streaming build is no longer "
            "sublinear in scale"
        )

    payload = {
        "window": {
            "start": WINDOW_START,
            "end": WINDOW_END,
            "days": WINDOW_DAYS,
        },
        "chunk_domains": CHUNK_DOMAINS,
        "rungs": records,
        "rss_growth": growth,
        "ceiling_mib": MAX_RSS_MIB,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_scale.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
