"""Bench: regenerate Figure 8 (per-CA issuance dot timelines)."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_fig8(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig8", save, rounds=ROUNDS_HEAVY)
    assert result.measured["continuing_cas"] == [
        "GlobalSign", "Google Trust Services", "Let's Encrypt",
    ]
