"""Ablation: measurement cadence error on the Figure 1 series.

OpenINTEL measures daily; our long sweeps default to weekly.  This bench
quantifies the error that cadence choice introduces on the NS-composition
series over the conflict window.
"""

import datetime as dt

from repro.core.composition import collect_composition
from repro.measurement import FastCollector

WINDOW = (dt.date(2022, 2, 1), dt.date(2022, 5, 25))


def test_bench_ablation_cadence(benchmark, bench_world, save):
    collector = FastCollector(bench_world)

    def run():
        daily = collect_composition(
            collector.sweep(WINDOW[0], WINDOW[1], 1), kind="ns"
        )
        weekly = collect_composition(
            collector.sweep(WINDOW[0], WINDOW[1], 7), kind="ns"
        )
        monthly = collect_composition(
            collector.sweep(WINDOW[0], WINDOW[1], 28), kind="ns"
        )
        return daily, weekly, monthly

    daily, weekly, monthly = benchmark.pedantic(run, rounds=1, iterations=1)
    daily_by_date = {p.date: p.share("full") for p in daily}

    def max_error(series):
        return max(
            abs(point.share("full") - daily_by_date[point.date])
            for point in series
            if point.date in daily_by_date
        )

    weekly_err = max_error(weekly)
    monthly_err = max_error(monthly)
    lines = [
        "== ablation: measurement cadence (NS full-share, conflict window) ==",
        f"weekly vs daily, max abs error:  {weekly_err:.3f} pp (sampling exactness)",
        f"monthly vs daily, max abs error: {monthly_err:.3f} pp",
        "note: sampled days agree exactly; coarse cadence only *misses* "
        "transition days, it does not distort sampled values.",
    ]
    save("ablation_cadence", "\n".join(lines))
    print("\n" + "\n".join(lines))
    assert weekly_err == 0.0  # sampled days are exact
