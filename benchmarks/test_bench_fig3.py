"""Bench: regenerate Figure 3 (top-5 NS TLD shares)."""

from _util import regenerate


def test_bench_fig3(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig3", save)
    assert result.measured["top_tlds"][0] == "ru"
    assert set(result.measured["top_tlds"]) == {"ru", "com", "pro", "org", "net"}
