"""Bench: cold archive build vs warm archive-backed Figure 1 replay.

Measures the three costs the archive trades between: building the
standard archive from scratch (cold), regenerating Figure 1 by live
simulation, and regenerating it by replaying the archive (warm).  The
observed speedup is recorded in ``benchmarks/output/archive_speedup.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext, run_experiment
from repro.sim import ConflictScenarioConfig

#: Archive benches run without PKI (sweeps never read it) at a coarser
#: cadence than the artefact benches, so the cold build stays short.
ARCHIVE_SCALE = 250.0
CADENCE = 30

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def test_bench_archive_warm_vs_cold(benchmark, tmp_path):
    config = ConflictScenarioConfig(scale=ARCHIVE_SCALE, with_pki=False)
    directory = str(tmp_path / "std")

    started = time.perf_counter()
    report = ArchiveBuilder(directory, config).build_standard(CADENCE)
    cold_build_seconds = time.perf_counter() - started
    # The cadence grid and the daily conflict window overlap, so the
    # second sub-build legitimately skips a handful of shared days.
    assert report.written

    started = time.perf_counter()
    live = run_experiment(
        "fig1", ExperimentContext(config=config, cadence_days=CADENCE)
    )
    live_seconds = time.perf_counter() - started

    def replay():
        return run_experiment(
            "fig1",
            ExperimentContext(
                config=config, cadence_days=CADENCE, archive=directory
            ),
        )

    replayed = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert replayed.render() == live.render()

    warm_seconds = benchmark.stats.stats.mean
    record = {
        "experiment": "fig1",
        "scale": ARCHIVE_SCALE,
        "cadence_days": CADENCE,
        "archived_days": len(report.written),
        "archive_bytes": report.bytes_written,
        "cold_build_seconds": round(cold_build_seconds, 3),
        "live_fig1_seconds": round(live_seconds, 3),
        "warm_archive_fig1_seconds": round(warm_seconds, 3),
        # Cold = collect-then-analyse; warm = re-analyse the existing
        # archive.  This is the paper-pipeline ratio the archive exists
        # for: measurements are collected once and queried many times.
        "speedup_cold_vs_warm": round(
            (cold_build_seconds + warm_seconds) / warm_seconds, 2
        ),
        # Reference: replay vs simulating the sweep fresh each run.
        "speedup_vs_live": round(live_seconds / warm_seconds, 2),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "archive_speedup.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
