"""Bench: cold archive build vs warm archive-backed Figure 1 replay.

Measures the three costs the archive trades between — building the
standard archive from scratch (cold), regenerating Figure 1 by live
simulation, and regenerating it by replaying the archive (warm) — and
records each as its own honest number in
``benchmarks/output/archive_speedup.json``.

The headline ratio is ``speedup_vs_live``: warm replay vs recomputing
the figure by live simulation, both measured end to end on a fresh
context.  The retired ``speedup_cold_vs_warm`` field folded the one-off
build cost into the numerator, which inflated the ratio with a cost the
query path never pays; the build is now reported separately as
``cold_build_seconds`` so amortisation arguments can be made explicitly.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext, run_experiment
from repro.scenario import ScenarioSpec

#: Archive benches run without PKI (sweeps never read it) at a coarser
#: cadence than the artefact benches, so the cold build stays short.
ARCHIVE_SCALE = 250.0
CADENCE = 30

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: The kernel path answers Figure 1 from per-shard summaries without
#: building the world; anything under this ratio means the columnar
#: read path has regressed.  The project target (and local default) is
#: >= 10; CI lowers the floor via REPRO_ARCHIVE_MIN_SPEEDUP to absorb
#: noisy shared runners (see the archive-perf-gate job's ratchet note).
MIN_SPEEDUP_VS_LIVE = float(os.environ.get("REPRO_ARCHIVE_MIN_SPEEDUP", "10"))


def test_bench_archive_warm_vs_cold(benchmark, tmp_path):
    config = ScenarioSpec.resolve("baseline").with_config(
        scale=ARCHIVE_SCALE, with_pki=False
    ).compile()
    directory = str(tmp_path / "std")

    started = time.perf_counter()
    report = ArchiveBuilder(directory, config).build_standard(CADENCE)
    cold_build_seconds = time.perf_counter() - started
    # The cadence grid and the daily conflict window overlap, so the
    # second sub-build legitimately skips a handful of shared days.
    assert report.written

    started = time.perf_counter()
    live = run_experiment(
        "fig1", ExperimentContext(config=config, cadence_days=CADENCE)
    )
    live_seconds = time.perf_counter() - started

    def replay():
        return run_experiment(
            "fig1",
            ExperimentContext(
                config=config, cadence_days=CADENCE, archive=directory
            ),
        )

    replayed = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert replayed.render() == live.render()

    warm_seconds = benchmark.stats.stats.mean
    speedup_vs_live = live_seconds / warm_seconds
    record = {
        "experiment": "fig1",
        "scale": ARCHIVE_SCALE,
        "cadence_days": CADENCE,
        "archived_days": len(report.written),
        "archive_bytes": report.bytes_written,
        # One-off cost of collecting the archive.  Deliberately NOT
        # folded into any ratio: the query path never pays it.
        "cold_build_seconds": round(cold_build_seconds, 3),
        # End-to-end figure regeneration by live simulation vs by
        # replaying the archive through the summary kernel.
        "live_seconds": round(live_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup_vs_live": round(speedup_vs_live, 2),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "archive_speedup.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    assert speedup_vs_live >= MIN_SPEEDUP_VS_LIVE, (
        f"warm archive replay is only {speedup_vs_live:.1f}x live "
        f"(target >= {MIN_SPEEDUP_VS_LIVE:.0f}x)"
    )
