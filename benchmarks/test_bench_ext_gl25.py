"""Bench (extension): OFAC General License 25 non-effect (footnote 7)."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_ext_gl25(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "gl25", save, rounds=ROUNDS_HEAVY)
    assert result.measured["clear_change_observed"] is False
