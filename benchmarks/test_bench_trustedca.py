"""Bench: regenerate the Section 4.3 Russian Trusted Root CA analysis."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_trustedca(benchmark, fresh_context, save):
    result = regenerate(
        benchmark, fresh_context, "trustedca", save, rounds=ROUNDS_HEAVY
    )
    assert result.measured["in_ct_logs"] == 0
    assert result.measured["sanctioned_secured"] == 36
