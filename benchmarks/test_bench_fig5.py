"""Bench: regenerate Figure 5 (sanctioned-domain NS composition)."""

from _util import regenerate


def test_bench_fig5(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig5", save)
    assert result.measured["sanctioned_total"] == 107
    assert result.measured["mar4_full_pct"] > 90.0
