"""Shared helpers for the benchmark harness."""

from __future__ import annotations

from repro.experiments import run_experiment

ROUNDS_LIGHT = 3
ROUNDS_HEAVY = 1


def regenerate(benchmark, make_context, experiment_id, save, rounds=ROUNDS_LIGHT):
    """Regenerate one paper artefact under the benchmark timer.

    Each round runs against a *fresh* (uncached) context over the shared
    world, so the timing covers the real sweep/analysis work.  The
    rendered artefact is saved to benchmarks/output/ and printed.
    """
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, make_context()),
        rounds=rounds,
        iterations=1,
    )
    text = result.render()
    save(experiment_id, text)
    print()
    print(text)
    return result
