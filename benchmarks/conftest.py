"""Benchmark fixtures: one bench-scale world shared across the session.

Benches run at 1:250 scale (~20k concurrent domains, the repo default) and
regenerate every paper artefact.  Rendered outputs are written to
``benchmarks/output/<experiment>.txt`` so EXPERIMENTS.md can reference the
exact reproduced tables/series.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentContext
from repro.sim import ConflictScenarioConfig, build_scenario

BENCH_SCALE = 250.0
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_world():
    """The bench-scale world (built once; includes the PKI simulation)."""
    return build_scenario(ConflictScenarioConfig(scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_context(bench_world):
    """A shared, fully-cached context for result reporting."""
    return ExperimentContext(world=bench_world, cadence_days=7)


@pytest.fixture()
def fresh_context(bench_world):
    """An uncached context over the shared world (honest per-bench work)."""
    def make() -> ExperimentContext:
        return ExperimentContext(world=bench_world, cadence_days=7)

    return make


def save_output(experiment_id: str, text: str) -> None:
    """Persist a rendered artefact for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def save():
    return save_output
