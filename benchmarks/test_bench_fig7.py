"""Bench: regenerate Figure 7 (Sedo AS47846 movement)."""

from _util import regenerate


def test_bench_fig7(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig7", save)
    assert result.measured["relocated_share"] >= 0.85
