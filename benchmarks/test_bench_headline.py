"""Bench: regenerate the headline prose statistics."""

from _util import regenerate


def test_bench_headline(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "headline", save)
    assert 68.0 < result.measured["hosting_full_start_pct"] < 74.0
    assert result.measured["hosting_part_start_pct"] < 1.0
