"""Bench: regenerate Figure 1 (NS country composition, 5-year sweep)."""

from _util import regenerate


def test_bench_fig1(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig1", save)
    assert 60.0 < result.measured["ns_full_start_pct"] < 72.0
    assert result.measured["ns_full_change_pp"] > 3.0
