"""Bench: regenerate Figure 2 (NS TLD-dependency composition)."""

from _util import regenerate


def test_bench_fig2(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig2", save)
    assert result.measured["tld_full_change_pp"] < -3.0
    assert result.measured["tld_part_change_pp"] > 3.0
