"""Bench (extension): Section 2 dataset summary."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_ext_dataset(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "dataset", save, rounds=ROUNDS_HEAVY)
    assert result.measured["study_days"] == 1803
    assert result.measured["sanctioned_domains"] == 107
    # Unique-domain count scales back to the paper's order of magnitude.
    assert 8_000_000 < result.measured["unique_domains_scaled_up"] < 16_000_000
