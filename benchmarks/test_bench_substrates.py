"""Micro-benchmarks of the heavy substrates."""

import datetime as dt

from repro.ctlog.merkle import MerkleTree
from repro.dns.idna import punycode_decode, punycode_encode
from repro.measurement import ResolvingCollector
from repro.net.prefix import Prefix
from repro.net.rib import RoutingTable


def test_bench_resolving_collector(benchmark, bench_world):
    """Honest-path resolution throughput (domains/second)."""
    collector = ResolvingCollector(bench_world)
    date = dt.date(2022, 3, 10)
    indices = bench_world.population.active_indices(date)[:300]
    measurements = benchmark.pedantic(
        lambda: collector.collect(date, indices), rounds=3, iterations=1
    )
    assert len(measurements) == 300


def test_bench_merkle_append_and_prove(benchmark):
    """CT log core: append 5k leaves, prove and verify 100 inclusions."""

    def run():
        tree = MerkleTree()
        for index in range(5000):
            tree.append(index.to_bytes(4, "big"))
        root = tree.root()
        for index in range(0, 5000, 50):
            proof = tree.inclusion_proof(index)
            assert MerkleTree.verify_inclusion(
                tree.leaf(index), index, 5000, proof, root
            )
        return tree

    tree = benchmark.pedantic(run, rounds=3, iterations=1)
    assert tree.size == 5000


def test_bench_rib_lookup(benchmark):
    """Longest-prefix match: 50k lookups against a 1k-route table."""
    table = RoutingTable()
    for index in range(1000):
        table.announce(Prefix((10 << 24) | (index << 12), 20), index + 1)
    probes = [(10 << 24) | (i << 12) | 99 for i in range(0, 1000)] * 50

    def run():
        return sum(1 for p in probes if table.lookup(p) is not None)

    hits = benchmark.pedantic(run, rounds=3, iterations=1)
    assert hits == len(probes)


def test_bench_punycode(benchmark):
    """IDNA throughput on Cyrillic labels."""
    labels = [f"пример-домен-{i}" for i in range(500)]

    def run():
        encoded = [punycode_encode(label) for label in labels]
        decoded = [punycode_decode(text) for text in encoded]
        return decoded

    decoded = benchmark.pedantic(run, rounds=3, iterations=1)
    assert decoded == labels
