"""Bench: regenerate Figure 4 (hosting-network shares, conflict window)."""

from _util import regenerate


def test_bench_fig4(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig4", save)
    assert 34.0 < result.measured["russian_big4_start_pct"] < 42.0
    assert 4.5 < result.measured["cloudflare_pct"] < 8.5
