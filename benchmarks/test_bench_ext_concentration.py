"""Bench (extension): CA and hosting market concentration (Section 6)."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_ext_concentration(benchmark, fresh_context, save):
    result = regenerate(
        benchmark, fresh_context, "concentration", save, rounds=ROUNDS_HEAVY
    )
    assert result.measured["ca_leader_post_sanctions"] == "Let's Encrypt"
    assert result.measured["ca_hhi_post_sanctions"] > 0.9
