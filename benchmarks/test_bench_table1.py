"""Bench: regenerate Table 1 (per-phase CA issuance)."""

from _util import ROUNDS_HEAVY, regenerate


def test_bench_table1(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "table1", save, rounds=ROUNDS_HEAVY)
    shares = result.measured["shares"]
    assert shares["post-sanctions"]["Let's Encrypt"] > 96.0
