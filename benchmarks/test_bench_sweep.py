"""Bench: the sweep engine — chunked vs monolithic five-year pass.

Times the FullSweepReducer pass through the engine at bench scale,
verifies chunked output matches the monolithic pass, and saves the last
round's profile rendering (executor, chunk count, snapshots/sec)
alongside the artefact outputs.
"""

from _util import ROUNDS_LIGHT

from repro.core.reducers import FullSweepReducer
from repro.measurement.fast import FastCollector
from repro.measurement.metrics import SweepMetrics
from repro.measurement.sweep import SweepEngine
from repro.timeline import STUDY_END, STUDY_START

CADENCE = 7


def test_bench_sweep_engine_chunked(benchmark, bench_world, save):
    collector = FastCollector(bench_world)
    reducer = FullSweepReducer()
    baseline = SweepEngine(collector).run(
        reducer, STUDY_START, STUDY_END, CADENCE
    )
    profiles = []

    def chunked():
        metrics = SweepMetrics()
        engine = SweepEngine(collector, chunk_days=32, metrics=metrics)
        with metrics.phase("full_sweep"):
            records = engine.run(
                reducer, STUDY_START, STUDY_END, CADENCE, phase="full_sweep"
            )
        profiles.append(metrics.render())
        return records

    records = benchmark.pedantic(chunked, rounds=ROUNDS_LIGHT, iterations=1)
    assert records == baseline
    save("sweep_engine", profiles[-1])
    print()
    print(profiles[-1])
