"""Ablation: geolocation lag vs the Netnod event (paper footnote 5).

The paper warns that geolocation inferences "lag behind" when address
space *moves* rather than changes.  We measure exactly that: in
renumber mode the March 3 transition is visible immediately; in
transfer mode with a lagged geolocation feed, the sanctioned domains'
jump to fully-Russian name service is detected only after the lag.
"""

import datetime as dt

from repro.core.composition import collect_composition
from repro.measurement import FastCollector
from repro.sim import ConflictScenarioConfig, build_world

SCALE = 1000.0
WINDOW = (dt.date(2022, 2, 24), dt.date(2022, 3, 31))


def _full_share_series(world):
    collector = FastCollector(world)
    snapshots = collector.sweep(WINDOW[0], WINDOW[1], 1)
    series = collect_composition(snapshots, kind="ns", subset_indices=range(107))
    return {point.date: point.share("full") for point in series}


def _first_day_above(series, threshold=90.0):
    for date in sorted(series):
        if series[date] >= threshold:
            return date
    return None


def test_bench_ablation_geo_lag(benchmark, save):
    def run():
        renumber = build_world(
            ConflictScenarioConfig(scale=SCALE, with_pki=False)
        )
        transfer_lagged = build_world(
            ConflictScenarioConfig(
                scale=SCALE, with_pki=False,
                netnod_mode="transfer", geo_lag_days=14,
            )
        )
        return (
            _full_share_series(renumber),
            _full_share_series(transfer_lagged),
        )

    instant, lagged = benchmark.pedantic(run, rounds=1, iterations=1)
    detected_instant = _first_day_above(instant)
    detected_lagged = _first_day_above(lagged)
    assert detected_instant is not None and detected_lagged is not None
    delay = (detected_lagged - detected_instant).days
    lines = [
        "== ablation: geolocation lag vs the Netnod transition ==",
        f"renumber mode: >=90% fully-Russian first seen {detected_instant}",
        f"transfer mode + 14-day geo lag: first seen {detected_lagged}",
        f"detection delay: {delay} days (configured lag: 14)",
    ]
    save("ablation_geo", "\n".join(lines))
    print("\n" + "\n".join(lines))
    assert 10 <= delay <= 18
