"""Bench: regenerate Figure 6 (Amazon AS16509 movement)."""

from _util import regenerate


def test_bench_fig6(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "fig6", save)
    assert 0.30 <= result.measured["remained_share"] <= 0.58
