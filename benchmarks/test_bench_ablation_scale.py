"""Ablation: composition-metric stability across population scales."""

from repro.experiments import ExperimentContext, run_experiment
from repro.sim import ConflictScenarioConfig


def test_bench_ablation_scale(benchmark, save):
    def run():
        results = {}
        for scale in (2500.0, 1000.0, 500.0):
            context = ExperimentContext(
                config=ConflictScenarioConfig(scale=scale, with_pki=False),
                cadence_days=14,
            )
            measured = run_experiment("fig1", context).measured
            results[scale] = (
                measured["ns_full_start_pct"],
                measured["ns_full_end_pct"],
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["== ablation: scale stability of Figure 1 endpoints =="]
    for scale, (start, end) in sorted(results.items()):
        lines.append(
            f"1:{int(scale):>5d} scale  ->  full start {start:.1f}%  end {end:.1f}%"
        )
    spread_start = max(v[0] for v in results.values()) - min(
        v[0] for v in results.values()
    )
    lines.append(f"start-share spread across scales: {spread_start:.2f} pp")
    save("ablation_scale", "\n".join(lines))
    print("\n" + "\n".join(lines))
    assert spread_start < 4.0
