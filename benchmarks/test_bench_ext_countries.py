"""Bench (extension): per-country hosting shifts through the conflict."""

from _util import regenerate


def test_bench_ext_countries(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "countries", save)
    assert result.measured["ru_change_pp"] > 0
    assert result.measured["nl_change_pp"] > 0
    assert result.measured["de_change_pp"] < 0
