"""Bench: query service throughput, cold vs warm, single vs pool.

Starts a real ``QueryService`` over an archive-backed context, runs one
query mix twice — first against an empty result cache (every query
computes), then repeated once warm (every query is an LRU hit) — and
records queries/sec plus p50/p95/p99 request latencies for both in
``benchmarks/output/service_speedup.json``.  The warm path must be at
least 5x the cold path: that margin is the point of serving from a
result cache instead of recomputing per request.

A second bench races the pre-fork pool (``repro serve --processes 4``)
against a single-process server under concurrent clients and records
the warm-throughput scaling in ``benchmarks/output/service_scaling.json``.
Byte-identity across the pool (punycode included) is asserted
unconditionally; the scaling floor (``REPRO_SERVICE_MIN_SCALING``,
default 3) is only enforced when the host actually has the cores to
scale on.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext
from repro.loadgen import percentile
from repro.service import QueryService
from repro.sim import ConflictScenarioConfig

#: Service benches replay a small archive: serving cost, not sweep cost,
#: is what's under measurement.
SERVICE_SCALE = 2500.0
CADENCE = 60

#: Warm-throughput scaling the 4-worker pool must reach over a single
#: process — enforced only on hosts with >= 4 cores (CI runners vary;
#: a 1-core container cannot parallelise anything).
MIN_SCALING = float(os.environ.get("REPRO_SERVICE_MIN_SCALING", "3"))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: The measured mix: one of each expensive query class.
QUERY_MIX = [
    "/v1/headline",
    "/v1/series/ns_composition",
    "/v1/series/asn_shares?start=2022-03-01&end=2022-03-15",
    "/v1/records/2022-03-04?tld=ru&limit=20",
    "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=20",
    "/v1/experiments/headline",
]


def _latency_ms(latencies: list[float]) -> dict:
    ordered = sorted(value * 1000.0 for value in latencies)
    return {
        "p50": round(percentile(ordered, 50.0), 3),
        "p95": round(percentile(ordered, 95.0), 3),
        "p99": round(percentile(ordered, 99.0), 3),
    }


class _Server:
    """Background-thread harness around one QueryService."""

    def __init__(self, context: ExperimentContext) -> None:
        self._context = context
        self._ready = threading.Event()
        self.port = None

    def __enter__(self) -> "_Server":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(60)
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        service = QueryService(self._context)
        await service.start("127.0.0.1", 0)
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await service.shutdown()

    def fetch(self, path: str) -> bytes:
        return _fetch(self.port, path)


def _fetch(port: int, path: str) -> bytes:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=120) as response:
        assert response.status == 200
        return response.read()


def _build_archive(tmp_path) -> tuple[ConflictScenarioConfig, str]:
    config = ConflictScenarioConfig(scale=SERVICE_SCALE, with_pki=False)
    directory = str(tmp_path / "std")
    ArchiveBuilder(directory, config).build_standard(CADENCE)
    return config, directory


def test_bench_service_cold_vs_warm(benchmark, tmp_path):
    config, directory = _build_archive(tmp_path)
    context = ExperimentContext(
        config=config, cadence_days=CADENCE, archive=directory
    )

    cold_latencies: list[float] = []
    warm_latencies: list[float] = []

    def timed_mix(sink: list[float]) -> list[bytes]:
        bodies = []
        for path in QUERY_MIX:
            started = time.perf_counter()
            bodies.append(server.fetch(path))
            sink.append(time.perf_counter() - started)
        return bodies

    with _Server(context) as server:
        started = time.perf_counter()
        cold_bodies = timed_mix(cold_latencies)
        cold_seconds = time.perf_counter() - started

        warm_bodies = benchmark.pedantic(
            lambda: timed_mix(warm_latencies), rounds=10, iterations=1
        )
        warm_seconds = max(benchmark.stats.stats.mean, 1e-9)

    # Warm answers are the cached cold answers, byte for byte.
    assert warm_bodies == cold_bodies

    cold_qps = len(QUERY_MIX) / cold_seconds
    warm_qps = len(QUERY_MIX) / warm_seconds
    speedup = warm_qps / cold_qps
    record = {
        "scale": SERVICE_SCALE,
        "cadence_days": CADENCE,
        "queries_in_mix": len(QUERY_MIX),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_queries_per_second": round(cold_qps, 1),
        "warm_queries_per_second": round(warm_qps, 1),
        "cold_latency_ms": _latency_ms(cold_latencies),
        "warm_latency_ms": _latency_ms(warm_latencies),
        "warm_over_cold_speedup": round(speedup, 1),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_speedup.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= 5.0, (
        f"warm cache served only {speedup:.1f}x cold throughput"
    )


# ----------------------------------------------------------------------
# Pool scaling: repro serve --processes 4 vs a single process
# ----------------------------------------------------------------------

class _ServeProcess:
    """A real ``repro serve`` subprocess (single or pre-fork pool)."""

    def __init__(self, archive: str, processes: int) -> None:
        self._argv = [
            sys.executable, "-m", "repro",
            "--scale", str(int(SERVICE_SCALE)), "--no-pki",
            "--cadence", str(CADENCE),
            "serve", "--port", "0", "--archive", archive,
            "--processes", str(processes),
        ]
        self._processes = processes
        self.port = None

    def __enter__(self) -> "_ServeProcess":
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (os.path.join(root, "src"), env.get("PYTHONPATH"))
            if part
        )
        self._process = subprocess.Popen(
            self._argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        line = self._process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"no serving announcement: {line!r}"
        self.port = int(match.group(1))
        if self._processes >= 2:
            assert "supervisor" in self._process.stdout.readline()
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            try:
                _fetch(self.port, "/healthz")
                return self
            except OSError:
                time.sleep(0.1)
        raise AssertionError("serve subprocess never became ready")

    def __exit__(self, *exc_info) -> None:
        self._process.send_signal(signal.SIGTERM)
        try:
            self._process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self._process.kill()
            self._process.wait(timeout=10)


def _measure_warm_qps(port: int, threads: int, passes: int) -> float:
    """Wall-clock qps of ``threads`` clients each replaying the mix."""

    def one_client(_):
        for _ in range(passes):
            for path in QUERY_MIX:
                _fetch(port, path)

    started = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(threads) as pool:
        list(pool.map(one_client, range(threads)))
    elapsed = time.perf_counter() - started
    return threads * passes * len(QUERY_MIX) / elapsed


def test_bench_service_pool_scaling(tmp_path):
    _, directory = _build_archive(tmp_path)
    threads, passes = 8, 4

    with _ServeProcess(directory, processes=1) as single:
        single_bodies = [_fetch(single.port, path) for path in QUERY_MIX]
        single_qps = _measure_warm_qps(single.port, threads, passes)

    with _ServeProcess(directory, processes=4) as pool:
        # Byte-identity across the pool, punycode included: every
        # worker must serve exactly what the single process served.
        for _ in range(3):
            pool_bodies = [_fetch(pool.port, path) for path in QUERY_MIX]
            assert pool_bodies == single_bodies
        pool_qps = _measure_warm_qps(pool.port, threads, passes)

    cores = os.cpu_count() or 1
    scaling = pool_qps / max(single_qps, 1e-9)
    record = {
        "scale": SERVICE_SCALE,
        "cadence_days": CADENCE,
        "cores": cores,
        "client_threads": threads,
        "requests_per_run": threads * passes * len(QUERY_MIX),
        "single_process_qps": round(single_qps, 1),
        "pool_processes": 4,
        "pool_qps": round(pool_qps, 1),
        "pool_over_single_scaling": round(scaling, 2),
        "scaling_floor": MIN_SCALING,
        "floor_enforced": cores >= 4,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_scaling.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    if cores >= 4:
        assert scaling >= MIN_SCALING, (
            f"4-worker pool served only {scaling:.2f}x single-process "
            f"warm throughput (floor {MIN_SCALING})"
        )
    else:
        print(f"only {cores} core(s): scaling floor not enforced")
