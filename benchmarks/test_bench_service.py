"""Bench: query service throughput, cold computation vs warm cache.

Starts a real ``QueryService`` over an archive-backed context, runs one
query mix twice — first against an empty result cache (every query
computes), then repeated once warm (every query is an LRU hit) — and
records queries/sec for both in ``benchmarks/output/service_speedup.json``.
The warm path must be at least 5x the cold path: that margin is the
point of serving from a result cache instead of recomputing per request.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading
import time
import urllib.request

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext
from repro.service import QueryService
from repro.sim import ConflictScenarioConfig

#: Service benches replay a small archive: serving cost, not sweep cost,
#: is what's under measurement.
SERVICE_SCALE = 2500.0
CADENCE = 60

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: The measured mix: one of each expensive query class.
QUERY_MIX = [
    "/v1/headline",
    "/v1/series/ns_composition",
    "/v1/series/asn_shares?start=2022-03-01&end=2022-03-15",
    "/v1/records/2022-03-04?tld=ru&limit=20",
    "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=20",
    "/v1/experiments/headline",
]


class _Server:
    """Background-thread harness around one QueryService."""

    def __init__(self, context: ExperimentContext) -> None:
        self._context = context
        self._ready = threading.Event()
        self.port = None

    def __enter__(self) -> "_Server":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(60)
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        service = QueryService(self._context)
        await service.start("127.0.0.1", 0)
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await service.shutdown()

    def fetch(self, path: str) -> bytes:
        url = f"http://127.0.0.1:{self.port}{path}"
        with urllib.request.urlopen(url, timeout=120) as response:
            assert response.status == 200
            return response.read()


def test_bench_service_cold_vs_warm(benchmark, tmp_path):
    config = ConflictScenarioConfig(scale=SERVICE_SCALE, with_pki=False)
    directory = str(tmp_path / "std")
    ArchiveBuilder(directory, config).build_standard(CADENCE)
    context = ExperimentContext(
        config=config, cadence_days=CADENCE, archive=directory
    )

    with _Server(context) as server:
        started = time.perf_counter()
        cold_bodies = [server.fetch(path) for path in QUERY_MIX]
        cold_seconds = time.perf_counter() - started

        def warm_mix():
            return [server.fetch(path) for path in QUERY_MIX]

        warm_bodies = benchmark.pedantic(warm_mix, rounds=10, iterations=1)
        warm_seconds = max(benchmark.stats.stats.mean, 1e-9)

    # Warm answers are the cached cold answers, byte for byte.
    assert warm_bodies == cold_bodies

    cold_qps = len(QUERY_MIX) / cold_seconds
    warm_qps = len(QUERY_MIX) / warm_seconds
    speedup = warm_qps / cold_qps
    record = {
        "scale": SERVICE_SCALE,
        "cadence_days": CADENCE,
        "queries_in_mix": len(QUERY_MIX),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_queries_per_second": round(cold_qps, 1),
        "warm_queries_per_second": round(warm_qps, 1),
        "warm_over_cold_speedup": round(speedup, 1),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_speedup.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= 5.0, (
        f"warm cache served only {speedup:.1f}x cold throughput"
    )
