"""Bench: regenerate the Section 3.4 Google movement numbers."""

from _util import regenerate


def test_bench_google(benchmark, fresh_context, save):
    result = regenerate(benchmark, fresh_context, "google", save)
    assert result.measured["intra_google_share_of_relocated"] >= 0.55
