#!/usr/bin/env python3
"""Western-provider exodus (paper Sections 3.2 and 3.4, Figures 4/6/7).

Tracks hosting-network shares through the conflict window and measures
the movement in and out of Amazon, Sedo, Google, and Cloudflare the way
the paper does: set comparison between two dates, with whois lookups to
split arrivals into relocations vs fresh registrations.
"""

import datetime as dt

from repro.core.movement import analyze_movement
from repro.experiments import ExperimentContext, run_experiment
from repro.sim import ConflictScenarioConfig


def main() -> None:
    context = ExperimentContext(
        config=ConflictScenarioConfig(scale=500.0, with_pki=False),
        cadence_days=7,
    )

    for experiment_id in ("fig4", "fig6", "fig7", "google"):
        print(run_experiment(experiment_id, context).render())
        print()

    # Cloudflare "business as usual" (Section 3.4), measured directly.
    world = context.world
    registry = world.catalog.as_registry()
    asn = world.catalog.get("cloudflare").primary_asn
    report = analyze_movement(
        context.collector, asn, dt.date(2022, 3, 7), dt.date(2022, 5, 25)
    )
    print(f"--- Cloudflare AS{asn} ({registry.name_of(asn)}) ---")
    print(f"in AS on 2022-03-07:     {report.original}")
    print(f"remained on 2022-05-25:  {report.remained} "
          f"({100 * report.remained_share:.0f}%; paper: 94%)")
    print(f"newly appeared:          {report.inflow_total}")
    print("consistent with 'Russia needs more Internet access, not less'.")


if __name__ == "__main__":
    main()
