#!/usr/bin/env python3
"""The two measurement paths, compared (DESIGN.md section 6).

Long sweeps use the fast columnar collector; this example proves on a
live sample that it produces byte-identical records to the honest path —
a real iterative resolver walking root -> TLD -> authoritative servers
with referrals, glue, and caching — and shows the resolver's cache doing
its job across a day's sweep.
"""

import datetime as dt
import time

from repro.measurement import FastCollector, ResolvingCollector
from repro.sim import ConflictScenarioConfig, build_world


def main() -> None:
    world = build_world(ConflictScenarioConfig(scale=1000.0, with_pki=False))
    date = dt.date(2022, 3, 10)
    sample = list(world.population.active_indices(date)[:400])

    fast = FastCollector(world)
    resolving = ResolvingCollector(world)

    started = time.perf_counter()
    resolved = resolving.collect(date, sample)
    resolve_seconds = time.perf_counter() - started

    started = time.perf_counter()
    snapshot = fast.collect(date)
    fast_records = [snapshot.measurement_for(index) for index in sample]
    fast_seconds = time.perf_counter() - started

    matches = sum(1 for a, b in zip(fast_records, resolved) if a == b)
    print(f"domains measured:        {len(sample)}")
    print(f"resolving path:          {resolve_seconds * 1000:7.1f} ms")
    print(f"fast columnar path:      {fast_seconds * 1000:7.1f} ms")
    print(f"identical records:       {matches}/{len(sample)}")
    assert matches == len(sample)

    example = resolved[0]
    print(f"\nexample record for {example.domain}:")
    print(f"  NS names:      {', '.join(example.ns_names)}")
    print(f"  NS addresses:  {len(example.ns_addresses)}")
    print(f"  apex addresses:{len(example.apex_addresses)}")

    print("\nwhy the honest path is affordable: per-day caching.")
    from repro.dns.cache import ResolverCache  # noqa: F401 (illustrative)
    # Re-run the same sample: the builder is rebuilt, but within one
    # collect() call the resolver reuses TLD/NS lookups across domains.
    resolved_again = resolving.collect(date, sample)
    assert [m.key() for m in resolved_again] == [m.key() for m in resolved]
    print("second honest run produced identical records (determinism).")


if __name__ == "__main__":
    main()
