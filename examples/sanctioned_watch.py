#!/usr/bin/env python3
"""Sanctioned-domain deep dive (paper Section 3.3 / Figure 5).

Reproduces the sanctioned-domain composition series AND drills into a
single Netnod-backed domain, resolving it for real — through root,
TLD, and authoritative servers — on both sides of the March 3, 2022
renumbering to show exactly what OpenINTEL would have observed.
"""

import datetime as dt

from repro.experiments import ExperimentContext, run_experiment
from repro.measurement import ResolvingCollector
from repro.sim import ConflictScenarioConfig


def drill_down(context: ExperimentContext, domain_index: int) -> None:
    world = context.world
    name = world.population.record(domain_index).name
    collector = ResolvingCollector(world)
    print(f"--- honest resolution of {name} around the Netnod cutoff ---")
    for date in (dt.date(2022, 3, 2), dt.date(2022, 3, 4)):
        [measurement] = collector.collect(date, [domain_index])
        geo = world.epoch_at(date).geo
        routing = world.epoch_at(date).routing
        print(f"{date}:")
        for ns_name in measurement.ns_names:
            print(f"  NS {ns_name}")
        for address in measurement.ns_addresses:
            country = geo.lookup(address)
            asn = routing.lookup(address)
            print(f"    -> NS host in AS{asn} ({country})")
        countries = sorted({geo.lookup(a) for a in measurement.ns_addresses})
        verdict = "fully Russian" if countries == ["RU"] else f"partial: {countries}"
        print(f"  name service: {verdict}\n")


def main() -> None:
    context = ExperimentContext(
        config=ConflictScenarioConfig(scale=1000.0, with_pki=False),
        cadence_days=7,
    )
    result = run_experiment("fig5", context)
    print(result.render())
    print()

    # Domain index 0 is a wave-one sanctioned entity on RU-CENTER's
    # Netnod-backed cloud name service.
    drill_down(context, 0)

    sanctions = context.world.sanctions
    print("--- listing waves ---")
    for date in sanctions.listing_dates():
        listed = len(sanctions.domains_listed_as_of(date))
        print(f"{date}: {listed:3d} domains designated (OFAC SDN / UK list)")


if __name__ == "__main__":
    main()
