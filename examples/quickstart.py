#!/usr/bin/env python3
"""Quickstart: build a small conflict world and reproduce Figure 1.

Runs in well under a minute at 1:1000 scale.  For paper-comparable output
use the benchmarks (1:250 scale):  pytest benchmarks/ --benchmark-only
"""

from repro.experiments import ExperimentContext, run_experiment
from repro.sim import ConflictScenarioConfig


def main() -> None:
    print("Building the conflict scenario at 1:1000 scale ...")
    config = ConflictScenarioConfig(scale=1000.0)
    context = ExperimentContext(config=config, cadence_days=7)
    world = context.world
    print(
        f"  population: {world.population.active_count('2017-06-18'):,} domains "
        f"active on day one ({world.population.unique_count():,} unique over "
        "five years)"
    )
    print(f"  providers:  {len(world.catalog)} hosting/DNS companies")
    print(f"  sanctioned: {len(world.sanctions.all_domains())} domains\n")

    for experiment_id in ("fig1", "headline"):
        result = run_experiment(experiment_id, context)
        print(result.render())
        print()


if __name__ == "__main__":
    main()
