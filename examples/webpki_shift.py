#!/usr/bin/env python3
"""WebPKI shift (paper Section 4: Table 1, Figure 8, Table 2, §4.3).

Reproduces the certificate-side findings: CA market concentration after
the invasion, issuance stops, sanctioned-domain revocations, and the
scan-only visibility of the Russian Trusted Root CA — including a Merkle
inclusion-proof check against the simulated CT logs.
"""

from repro.ctlog.merkle import MerkleTree
from repro.experiments import ExperimentContext, run_experiment
from repro.sim import ConflictScenarioConfig


def verify_ct_proofs(context: ExperimentContext) -> None:
    """Cryptographically verify a few CT inclusion proofs."""
    log = context.world.pki.logs[0]
    sth = log.get_sth()
    checked = 0
    for entry in log.get_entries(0, min(len(log) - 1, 200))[::40]:
        proof = log.inclusion_proof_for(entry.certificate)
        ok = MerkleTree.verify_inclusion(
            log.tree.leaf(entry.index), entry.index, sth.tree_size,
            proof, sth.root_hash,
        )
        assert ok
        checked += 1
    print(
        f"--- CT log {log.log_id}: size {sth.tree_size}, "
        f"{checked} inclusion proofs verified against the STH ---\n"
    )


def main() -> None:
    context = ExperimentContext(
        config=ConflictScenarioConfig(scale=500.0), cadence_days=7
    )
    for experiment_id in ("table1", "fig8", "table2", "trustedca"):
        print(run_experiment(experiment_id, context).render())
        print()
    verify_ct_proofs(context)


if __name__ == "__main__":
    main()
