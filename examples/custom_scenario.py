#!/usr/bin/env python3
"""Counterfactual: what if Cloudflare had exited the Russian market?

The paper notes Cloudflare explicitly chose to keep serving Russia
("Russia needs more Internet access, not less").  This example uses the
public ``WorldBuilder`` API to construct the counterfactual — Cloudflare
terminating Russian customers on April 1, 2022 — and measures how much
further the "fully Russian name service" share would have jumped, using
the *unchanged* analysis pipeline.
"""

import datetime as dt

from repro.core.composition import collect_composition
from repro.measurement import FastCollector
from repro.sim import WorldBuilder
from repro.sim.events import Field
from repro.sim.flows import Pulse

WINDOW = (dt.date(2022, 3, 1), dt.date(2022, 5, 25))
EXIT_DAY = dt.date(2022, 4, 1)


def full_share_series(world):
    collector = FastCollector(world)
    series = collect_composition(
        collector.sweep(WINDOW[0], WINDOW[1], 7), kind="ns"
    )
    return series


def main() -> None:
    print("building baseline (no exit) and counterfactual worlds ...\n")
    baseline = WorldBuilder(scale=1000.0).build()

    counterfactual = (
        WorldBuilder(scale=1000.0)
        .add_pulse(
            Pulse(Field.DNS, ["cloudflare_dns"], "regru_dns", EXIT_DAY,
                  fraction=1.0),
            note="Cloudflare terminates Russian DNS customers",
        )
        .add_pulse(
            Pulse(Field.DNS, ["ru_plus_cloudflare"], "rucenter_dns", EXIT_DAY,
                  fraction=1.0),
            note="secondary-NS customers drop the Cloudflare leg",
        )
        .add_pulse(
            Pulse(Field.HOSTING, ["cloudflare_h"], "timeweb_h", EXIT_DAY,
                  fraction=1.0),
            note="Cloudflare-hosted sites repatriate",
        )
        .build()
    )
    print(counterfactual.manifest.render())
    print()

    base_series = full_share_series(baseline)
    cf_series = full_share_series(counterfactual)

    print(f"{'date':12s} {'baseline full%':>15s} {'counterfactual':>15s} {'delta':>7s}")
    for base_point, cf_point in zip(base_series, cf_series):
        delta = cf_point.share("full") - base_point.share("full")
        marker = "  <- exit" if base_point.date >= EXIT_DAY and delta > 1 else ""
        print(
            f"{base_point.date!s:12s} {base_point.share('full'):14.1f}% "
            f"{cf_point.share('full'):14.1f}% {delta:+6.1f}{marker}"
        )

    final_delta = cf_series.last().share("full") - base_series.last().share("full")
    print(
        f"\na full Cloudflare exit would have pushed fully-Russian name "
        f"service up another {final_delta:.1f} pp —\n"
        "on top of the paper's measured +6.9 pp, illustrating how much the "
        "decision of a single\nprovider matters at this concentration."
    )


if __name__ == "__main__":
    main()
