"""Tests for repro.sim.validate."""

import numpy as np
import pytest

from repro.sim.validate import validate_world


class TestCleanWorld:
    def test_conflict_world_is_valid(self, tiny_world):
        assert validate_world(tiny_world) == []

    def test_full_context_world_is_valid(self, tiny_context):
        assert validate_world(tiny_context.world) == []


class TestDetection:
    def test_detects_out_of_range_plan_id(self, tiny_world):
        original = tiny_world.base_dns[5]
        tiny_world.base_dns[5] = 30_000
        try:
            issues = validate_world(tiny_world)
            assert any("plan id out of range" in issue for issue in issues)
        finally:
            tiny_world.base_dns[5] = original

    def test_detects_sanctions_mismatch(self, tiny_world):
        original = tiny_world.sanctioned_indices.copy()
        tiny_world.sanctioned_indices = np.asarray([500, 501])
        try:
            issues = validate_world(tiny_world)
            assert any("sanctions" in issue for issue in issues)
        finally:
            tiny_world.sanctioned_indices = original

    def test_detects_russian_ca_leak_into_ct(self, tiny_context):
        world = tiny_context.world
        pki = world.pki
        russian = pki.cas["russianca"]
        cert = russian.issue(["leaked.ru"], "2022-03-15")
        pki.logs[0].add_chain(cert, "2022-03-15")
        try:
            issues = validate_world(world)
            assert any("Russian CA certificate in CT log" in issue for issue in issues)
        finally:
            # Remove the poisoned entry to keep the session fixture clean.
            log = pki.logs[0]
            log._entries.pop()
            log._by_fingerprint.pop(cert.fingerprint)
            log._tree._leaf_hashes.pop()
            log._tree._memo.clear()
