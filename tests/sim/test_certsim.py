"""Tests for repro.sim.certsim using the tiny context's PKI bundle."""

import datetime as dt

import pytest

from repro.sim.certsim import RUSSIAN_CA_ORG


@pytest.fixture(scope="module")
def pki(tiny_context):
    return tiny_context.world.pki


class TestBundleShape:
    def test_all_cas_present(self, pki):
        orgs = {ca.organization for ca in pki.authorities()}
        assert {"Let's Encrypt", "DigiCert", "Sectigo", "GlobalSign",
                RUSSIAN_CA_ORG} <= orgs

    def test_two_ct_logs(self, pki):
        assert len(pki.logs) == 2
        assert all(len(log) > 0 for log in pki.logs)

    def test_store_covers_logs(self, pki):
        for log in pki.logs:
            for entry in log.get_entries(0, min(len(log) - 1, 50)):
                assert pki.store.by_fingerprint(
                    entry.certificate.fingerprint
                ) is not None


class TestCtLoggingPolicy:
    def test_russian_ca_never_logged(self, pki):
        for log in pki.logs:
            for entry in log.entries():
                assert entry.certificate.issuer.organization != RUSSIAN_CA_ORG

    def test_russian_ca_in_store(self, pki):
        state_certs = pki.store.filter(
            lambda cert: cert.issuer.organization == RUSSIAN_CA_ORG
        )
        assert state_certs
        for cert in state_certs[:10]:
            assert cert.chain_contains_organization(RUSSIAN_CA_ORG)


class TestIssuanceStops:
    def _last_issuance(self, pki, org):
        dates = [
            cert.not_before
            for cert in pki.store
            if cert.issuer.organization == org
        ]
        return max(dates) if dates else None

    def test_digicert_stops_after_leak_window(self, pki):
        last = self._last_issuance(pki, "DigiCert")
        assert last is not None
        assert last <= dt.date(2022, 2, 25) + dt.timedelta(days=45)

    def test_lets_encrypt_continues(self, pki):
        assert self._last_issuance(pki, "Let's Encrypt") >= dt.date(2022, 5, 10)

    def test_geocerts_stops_at_conflict(self, pki):
        last = self._last_issuance(pki, "GeoCerts")
        assert last is None or last < dt.date(2022, 2, 24)


class TestRevocations:
    def test_digicert_revokes_all_sanctioned(self, pki, tiny_context):
        sanctioned = {
            str(domain) for domain in tiny_context.world.sanctions.all_domains()
        }
        digicert = pki.cas["digicert"]
        sanc_certs = [
            cert
            for cert in digicert.issued_certificates()
            if set(cert.registered_domains()) & sanctioned
        ]
        assert sanc_certs
        assert all(digicert.crl.is_revoked(cert.serial) for cert in sanc_certs)

    def test_lets_encrypt_revokes_very_few(self, pki):
        le = pki.cas["letsencrypt"]
        rate = len(le.crl) / max(le.issued_count(), 1)
        assert rate < 0.05


class TestServingView:
    def test_serving_includes_state_ca_after_install(self, pki, tiny_context):
        view = pki.serving_view(tiny_context.world)
        served_orgs = {
            cert.issuer.organization for _addr, cert in view(dt.date(2022, 5, 1))
        }
        assert RUSSIAN_CA_ORG in served_orgs

    def test_state_cert_preferred_over_later_le(self, pki, tiny_context):
        # Find a domain with both a Russian-CA cert and a newer LE cert.
        world = tiny_context.world
        for index, certs in pki.domain_certs.items():
            state = [
                c for c in certs if c.issuer.organization == RUSSIAN_CA_ORG
            ]
            others = [
                c for c in certs if c.issuer.organization != RUSSIAN_CA_ORG
            ]
            if state and others and world.population.record(index).is_active(
                dt.date(2022, 5, 1)
            ):
                view = pki.serving_view(world)
                hosting = world.hosting_state(dt.date(2022, 5, 1))
                address = world.apex_addresses_for_plan(
                    index, int(hosting[index])
                )[0]
                served = {
                    addr: cert for addr, cert in view(dt.date(2022, 5, 1))
                }
                if address in served:
                    assert (
                        served[address].issuer.organization == RUSSIAN_CA_ORG
                    )
                    return
        pytest.skip("no dual-cert domain in tiny world")


class TestSctEmbedding:
    def test_logged_certs_carry_scts(self, pki):
        for log in pki.logs:
            for entry in log.get_entries(0, min(len(log) - 1, 30)):
                assert entry.certificate.scts, entry.certificate
                assert any(
                    sct.log_id == log.log_id for sct in entry.certificate.scts
                )

    def test_russian_ca_certs_carry_none(self, pki):
        state = pki.store.filter(
            lambda cert: cert.issuer.organization == RUSSIAN_CA_ORG
        )
        assert state
        assert all(cert.scts == () for cert in state)
