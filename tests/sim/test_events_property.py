"""Property tests: the columnar event log vs a naive reference replay."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.events import DomainEventLog, Field

_N_DOMAINS = 20

_EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),   # day
        st.integers(min_value=0, max_value=_N_DOMAINS - 1),  # domain
        st.sampled_from([Field.HOSTING, Field.DNS]),
        st.integers(min_value=0, max_value=9),     # plan id
    ),
    max_size=60,
)


def _naive_state(events, field, day):
    """Reference implementation: chronological list replay.

    Ties on the same day resolve in insertion order, matching the log's
    stable sort.
    """
    state = np.zeros(_N_DOMAINS, dtype=np.int32)
    for event_day, domain, event_field, value in sorted(
        events, key=lambda e: e[0]
    ):
        if event_field is field and event_day <= day:
            state[domain] = value
    return state


@settings(max_examples=80, deadline=None)
@given(_EVENTS, st.integers(min_value=-1, max_value=101))
def test_state_at_matches_naive(events, query_day):
    log = DomainEventLog()
    for day, domain, field, value in events:
        log.add(day, domain, field, value)
    log.finalize()
    base = np.zeros(_N_DOMAINS, dtype=np.int32)
    for field in (Field.HOSTING, Field.DNS):
        expected = _naive_state(events, field, query_day)
        actual = log.state_at(base, field, query_day)
        assert (actual == expected).all()


@settings(max_examples=40, deadline=None)
@given(_EVENTS, st.lists(st.integers(1, 15), min_size=1, max_size=6))
def test_incremental_windows_match_full_replay(events, steps):
    """Property: chained apply_window == state_at at every checkpoint."""
    log = DomainEventLog()
    for day, domain, field, value in events:
        log.add(day, domain, field, value)
    log.finalize()
    base = np.zeros(_N_DOMAINS, dtype=np.int32)
    # Seed with the day-0 state, as World.sweep does, then chain windows.
    state = log.state_at(base, Field.DNS, 0)
    position = 0
    for step in steps:
        log.apply_window(state, Field.DNS, position, position + step)
        position += step
        expected = log.state_at(base, Field.DNS, position)
        assert (state == expected).all()
