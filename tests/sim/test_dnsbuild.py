"""Tests for repro.sim.dnsbuild: the materialised DNS hierarchy."""

import datetime as dt

import pytest

from repro.dns.message import Question, Rcode
from repro.dns.name import DomainName
from repro.dns.rdata import RRType
from repro.dns.resolver import IterativeResolver
from repro.sim.dnsbuild import DnsTreeBuilder, _registrable


class TestRegistrable:
    def test_plain(self):
        assert _registrable(DomainName.parse("ns1.reg.ru")) == DomainName.parse(
            "reg.ru"
        )

    def test_deep_suffix(self):
        assert _registrable(
            DomainName.parse("ns-404.awsdns-04.co.uk")
        ) == DomainName.parse("awsdns-04.co.uk")


@pytest.fixture(scope="module")
def tree(tiny_world):
    builder = DnsTreeBuilder(tiny_world)
    indices = tiny_world.population.active_indices("2022-03-10")[:50]
    return tiny_world, builder.build("2022-03-10", indices), indices


class TestTree:
    def test_root_answers(self, tree):
        world, built, _ = tree
        response = built.network.query(
            built.root_addresses[0],
            Question(DomainName.parse("example.ru"), RRType.A),
        )
        assert response.is_referral

    def test_full_resolution_of_measured_domain(self, tree):
        world, built, indices = tree
        resolver = IterativeResolver(built.network, built.root_addresses)
        name = world.population.record(int(indices[5])).name
        result = resolver.resolve(name, RRType.A)
        assert result.ok
        expected = set(world.apex_addresses(int(indices[5]), "2022-03-10"))
        assert set(result.addresses()) == expected

    def test_ns_resolution_matches_world(self, tree):
        world, built, indices = tree
        resolver = IterativeResolver(built.network, built.root_addresses)
        index = int(indices[7])
        name = world.population.record(index).name
        result = resolver.resolve(name, RRType.NS)
        targets = {str(t) for t in result.ns_targets()}
        assert targets == set(world.ns_hostnames_for(index, "2022-03-10"))

    def test_unmeasured_domain_nxdomain(self, tree):
        world, built, indices = tree
        resolver = IterativeResolver(built.network, built.root_addresses)
        result = resolver.resolve(
            DomainName.parse("never-in-subset-zz.ru"), RRType.A
        )
        assert result.rcode is Rcode.NXDOMAIN

    def test_infra_hosts_resolvable(self, tree):
        world, built, _ = tree
        resolver = IterativeResolver(built.network, built.root_addresses)
        result = resolver.resolve(DomainName.parse("ns1.reg.ru"), RRType.A)
        assert result.ok
        epoch = world.epoch_at("2022-03-10")
        assert result.addresses() == [epoch.ns_addresses["ns1.reg.ru"]]

    def test_rf_domain_resolvable(self, tiny_world):
        # Build a dedicated tree around a guaranteed .рф domain.
        import numpy as np

        date = "2022-03-10"
        active = set(int(i) for i in tiny_world.population.active_indices(date))
        rf = next(
            int(i)
            for i in np.flatnonzero(tiny_world.population.is_rf)
            if int(i) in active
        )
        built = DnsTreeBuilder(tiny_world).build(date, [rf])
        resolver = IterativeResolver(built.network, built.root_addresses)
        name = tiny_world.population.record(rf).name
        assert name.tld == "xn--p1ai"
        assert resolver.resolve(name, RRType.A).ok
