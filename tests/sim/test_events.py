"""Tests for repro.sim.events: the columnar event log."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.sim.events import DomainEventLog, Field, InfraEvent


@pytest.fixture
def log():
    events = DomainEventLog()
    events.add(10, 0, Field.DNS, 5)
    events.add(20, 0, Field.DNS, 7)
    events.add(15, 1, Field.HOSTING, 3)
    events.add(15, 2, Field.DNS, 9)
    events.finalize()
    return events


class TestStateAt:
    def test_before_any_event(self, log):
        base = np.zeros(4, dtype=np.int32)
        assert (log.state_at(base, Field.DNS, 5) == base).all()

    def test_after_first_event(self, log):
        base = np.zeros(4, dtype=np.int32)
        state = log.state_at(base, Field.DNS, 12)
        assert state[0] == 5

    def test_last_write_wins(self, log):
        base = np.zeros(4, dtype=np.int32)
        state = log.state_at(base, Field.DNS, 25)
        assert state[0] == 7

    def test_fields_independent(self, log):
        base = np.zeros(4, dtype=np.int32)
        dns = log.state_at(base, Field.DNS, 25)
        hosting = log.state_at(base, Field.HOSTING, 25)
        assert dns[1] == 0
        assert hosting[1] == 3
        assert hosting[0] == 0

    def test_base_not_mutated(self, log):
        base = np.zeros(4, dtype=np.int32)
        log.state_at(base, Field.DNS, 25)
        assert (base == 0).all()


class TestApplyWindow:
    def test_incremental_sweep_matches_replay(self, log):
        base = np.zeros(4, dtype=np.int32)
        state = base.copy()
        for day in range(0, 30):
            log.apply_window(state, Field.DNS, day - 1, day)
            expected = log.state_at(base, Field.DNS, day)
            assert (state == expected).all(), f"day {day}"

    def test_window_with_multiple_events_same_domain(self):
        events = DomainEventLog()
        events.add(10, 0, Field.DNS, 1)
        events.add(11, 0, Field.DNS, 2)
        events.add(12, 0, Field.DNS, 3)
        events.finalize()
        state = np.zeros(1, dtype=np.int32)
        events.apply_window(state, Field.DNS, 9, 12)
        assert state[0] == 3


class TestLifecycle:
    def test_add_after_finalize_rejected(self, log):
        with pytest.raises(ScenarioError):
            log.add(30, 0, Field.DNS, 1)

    def test_query_before_finalize_rejected(self):
        events = DomainEventLog()
        events.add(1, 0, Field.DNS, 1)
        with pytest.raises(ScenarioError):
            events.event_days()

    def test_event_days(self, log):
        assert list(log.event_days()) == [10, 15, 20]

    def test_add_many(self):
        events = DomainEventLog()
        events.add_many(5, [1, 2, 3], Field.DNS, 7)
        events.finalize()
        state = np.zeros(4, dtype=np.int32)
        assert (events.state_at(state, Field.DNS, 5)[1:] == 7).all()

    def test_finalize_idempotent(self, log):
        log.finalize()
        assert len(log) == 4


class TestInfraEvent:
    def test_fields(self):
        event = InfraEvent(
            "2022-03-03",
            "netnod",
            ns_moves=[("ns4-cloud.nic.ru", "rucenter")],
        )
        assert event.ns_moves == (("ns4-cloud.nic.ru", "rucenter"),)
        assert event.day == 1719  # days from 2017-06-18 to 2022-03-03
