"""Tests for repro.sim.conflict: scenario assembly invariants."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.sim.conflict import (
    DNS_WEIGHTS,
    HOSTING_WEIGHTS,
    ConflictScenarioConfig,
    _dns_weights_at,
    build_world,
)


class TestConfig:
    def test_initial_count_scales(self):
        assert ConflictScenarioConfig(scale=250).initial_count == 19_800
        assert ConflictScenarioConfig(scale=2500).initial_count == 1_980

    def test_scale_factor(self):
        config = ConflictScenarioConfig(scale=495)
        assert config.scale_factor == pytest.approx(10_000 / 4_950_000)

    def test_scaled_counts_floor_at_one(self):
        config = ConflictScenarioConfig(scale=100_000)
        assert config.scaled(574) == 1

    def test_bad_scale_rejected(self):
        with pytest.raises(ScenarioError):
            ConflictScenarioConfig(scale=0)

    def test_bad_netnod_mode_rejected(self):
        with pytest.raises(ScenarioError):
            ConflictScenarioConfig(netnod_mode="teleport")

    def test_sanctioned_cert_scale_auto(self):
        tiny = ConflictScenarioConfig(scale=2500)
        bench = ConflictScenarioConfig(scale=250)
        assert 0.04 <= tiny.sanctioned_cert_scale <= bench.sanctioned_cert_scale <= 1.0


class TestWeights:
    def test_dns_weights_sum_to_100(self):
        assert sum(DNS_WEIGHTS.values()) == pytest.approx(100.0, abs=0.2)

    def test_hosting_weights_sum_to_100(self):
        assert sum(HOSTING_WEIGHTS.values()) == pytest.approx(100.0, abs=0.2)

    def test_drifted_weights_still_sum_to_100(self):
        for frac in (0.0, 0.33, 1.0):
            assert sum(_dns_weights_at(frac).values()) == pytest.approx(
                100.0, abs=0.2
            )

    def test_drifted_weights_nonnegative(self):
        assert all(v >= 0 for v in _dns_weights_at(1.0).values())

    def test_hosting_part_weight_matches_paper(self):
        assert HOSTING_WEIGHTS["dual_ru_de"] == pytest.approx(0.19)


class TestDeterminism:
    def test_same_config_same_world(self):
        config = ConflictScenarioConfig(scale=5000, with_pki=False)
        a = build_world(config)
        b = build_world(config)
        assert (a.base_dns == b.base_dns).all()
        assert (a.base_hosting == b.base_hosting).all()
        assert (
            a.dns_state("2022-03-10") == b.dns_state("2022-03-10")
        ).all()


class TestSanctionedSetup:
    def test_waves_cover_107(self, tiny_world):
        dates = tiny_world.sanctions.listing_dates()
        assert len(dates) == 4
        assert len(
            tiny_world.sanctions.domains_listed_as_of(dates[-1])
        ) == 107

    def test_first_wave_on_invasion_day(self, tiny_world):
        assert tiny_world.sanctions.listing_dates()[0].isoformat() == "2022-02-24"

    def test_101_hosted_in_russia_pre_conflict(self, tiny_world):
        labels = tiny_world.epoch_at("2022-02-20").hosting_labels
        hosting = tiny_world.hosting_state("2022-02-20")
        full = sum(
            1 for i in range(107) if labels.geo_label[hosting[i]] == 0
        )
        assert full == 101

    def test_three_foreign_move_to_russia_by_study_end(self, tiny_world):
        labels_end = tiny_world.epoch_at("2022-05-25").hosting_labels
        hosting_end = tiny_world.hosting_state("2022-05-25")
        full_end = sum(
            1 for i in range(107) if labels_end.geo_label[hosting_end[i]] == 0
        )
        assert full_end == 104  # 101 + the three movers


class TestTransferMode:
    def test_transfer_mode_changes_geo_not_address(self):
        config = ConflictScenarioConfig(
            scale=5000, with_pki=False, netnod_mode="transfer"
        )
        world = build_world(config)
        before = world.epoch_at("2022-03-02")
        after = world.epoch_at("2022-03-03")
        address = before.ns_addresses["ns4-cloud.nic.ru"]
        assert after.ns_addresses["ns4-cloud.nic.ru"] == address
        assert before.geo.lookup(address) == "SE"
        assert after.geo.lookup(address) == "RU"
        assert after.routing.lookup(address) == 48287

    def test_transfer_mode_with_lag_delays_geo(self):
        config = ConflictScenarioConfig(
            scale=5000, with_pki=False, netnod_mode="transfer", geo_lag_days=14
        )
        world = build_world(config)
        address = world.epoch_at("2022-03-02").ns_addresses["ns4-cloud.nic.ru"]
        assert world.epoch_at("2022-03-05").geo.lookup(address) == "SE"
        assert world.epoch_at("2022-03-17").geo.lookup(address) == "RU"
