"""Tests for repro.sim.plans: plans and derived label tables."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ScenarioError
from repro.providers.addressing import AddressPlan
from repro.providers.catalog import standard_catalog
from repro.sim.plans import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    DnsPlan,
    DnsPlanTable,
    HostingPlan,
    HostingPlanTable,
    composition_label,
)


@pytest.fixture(scope="module")
def infra():
    catalog = standard_catalog()
    plan = AddressPlan(catalog)
    return catalog, plan, plan.routing_table(), plan.geo_database()


class TestCompositionLabel:
    def test_full(self):
        assert composition_label([True, True]) == LABEL_FULL

    def test_non(self):
        assert composition_label([False]) == LABEL_NON

    def test_part(self):
        assert composition_label([True, False]) == LABEL_PART

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            composition_label([])

    @given(st.lists(st.booleans(), min_size=1, max_size=8))
    def test_trichotomy(self, flags):
        label = composition_label(flags)
        if all(flags):
            assert label == LABEL_FULL
        elif not any(flags):
            assert label == LABEL_NON
        else:
            assert label == LABEL_PART


class TestDnsPlan:
    def test_ns_tlds(self):
        plan = DnsPlan("mixed", ["ns1.reg.ru", "alice.ns.cloudflare.com"])
        assert plan.ns_tlds() == ("com", "ru")

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            DnsPlan("empty", [])


class TestDnsPlanTable:
    def test_derive_labels(self, infra):
        catalog, plan, routing, geo = infra
        table = DnsPlanTable()
        ru_id = table.add(DnsPlan("ru_only", ["ns1.reg.ru", "ns2.reg.ru"]))
        mixed_id = table.add(
            DnsPlan("mixed", ["ns1.reg.ru", "alice.ns.cloudflare.com"])
        )
        western_id = table.add(
            DnsPlan("western", ["alice.ns.cloudflare.com", "bob.ns.cloudflare.com"])
        )
        labels = table.derive(plan, routing, geo)
        assert labels.geo_label[ru_id] == LABEL_FULL
        assert labels.geo_label[mixed_id] == LABEL_PART
        assert labels.geo_label[western_id] == LABEL_NON
        assert labels.tld_label[ru_id] == LABEL_FULL
        assert labels.tld_label[mixed_id] == LABEL_PART
        assert labels.tld_label[western_id] == LABEL_NON

    def test_membership_matrix(self, infra):
        catalog, plan, routing, geo = infra
        table = DnsPlanTable()
        table.add(DnsPlan("mixed", ["ns1.reg.ru", "alice.ns.cloudflare.com"]))
        labels = table.derive(plan, routing, geo)
        assert labels.tld_membership[0, labels.tld_index("ru")]
        assert labels.tld_membership[0, labels.tld_index("com")]

    def test_ns_asns(self, infra):
        catalog, plan, routing, geo = infra
        table = DnsPlanTable()
        table.add(DnsPlan("cf", ["alice.ns.cloudflare.com"]))
        labels = table.derive(plan, routing, geo)
        assert labels.ns_asns[0] == (13335,)

    def test_duplicate_key_rejected(self):
        table = DnsPlanTable()
        table.add(DnsPlan("x", ["ns1.reg.ru"]))
        with pytest.raises(ScenarioError):
            table.add(DnsPlan("x", ["ns2.reg.ru"]))

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError):
            DnsPlanTable().id_of("missing")


class TestHostingPlanTable:
    def test_labels(self, infra):
        catalog, plan, routing, geo = infra
        table = HostingPlanTable()
        ru = table.add(HostingPlan("ru", [("regru", 197695)]))
        dual = table.add(
            HostingPlan("dual", [("regru", 197695), ("hetzner", 24940)])
        )
        western = table.add(HostingPlan("w", [("cloudflare", 13335)]))
        labels = table.derive(plan, routing, geo)
        assert labels.geo_label[ru] == LABEL_FULL
        assert labels.geo_label[dual] == LABEL_PART
        assert labels.geo_label[western] == LABEL_NON
        assert labels.primary_asn[dual] == 197695
        assert labels.asn_sets[dual] == (197695, 24940)

    def test_empty_components_rejected(self):
        with pytest.raises(ScenarioError):
            HostingPlan("bad", [])
