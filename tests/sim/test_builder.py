"""Tests for repro.sim.builder: the public scenario-composition API."""

import datetime as dt

import pytest

from repro.core.labels import snapshot_ns_geo_labels
from repro.errors import ScenarioError
from repro.measurement import FastCollector
from repro.sim import WorldBuilder, counterfactual_flows, validate_world
from repro.sim.events import Field, InfraEvent
from repro.sim.flows import Flow, Pulse


@pytest.fixture(scope="module")
def baseline():
    return WorldBuilder(scale=2500.0).build()


class TestBaseline:
    def test_valid_world(self, baseline):
        assert validate_world(baseline) == []

    def test_no_sanctions(self, baseline):
        assert baseline.sanctions.all_domains() == []

    def test_peaceful_baseline_is_flat(self, baseline):
        collector = FastCollector(baseline)
        early = snapshot_ns_geo_labels(collector.collect("2022-02-01"))
        late = snapshot_ns_geo_labels(collector.collect("2022-05-01"))
        assert abs((early == 0).mean() - (late == 0).mean()) < 0.03


class TestCustomisation:
    def test_pulse_moves_cohort(self):
        builder = WorldBuilder(scale=2500.0)
        builder.add_pulse(
            Pulse(Field.DNS, ["cloudflare_dns"], "regru_dns",
                  dt.date(2022, 4, 1), fraction=1.0),
            note="cloudflare exit",
        )
        world = builder.build()
        collector = FastCollector(world)
        before = snapshot_ns_geo_labels(collector.collect("2022-03-25"))
        after = snapshot_ns_geo_labels(collector.collect("2022-04-05"))
        assert (after == 0).mean() > (before == 0).mean() + 0.02

    def test_manifest_records_notes(self):
        builder = WorldBuilder(scale=2500.0)
        builder.add_pulse(
            Pulse(Field.DNS, ["cloudflare_dns"], "regru_dns",
                  dt.date(2022, 4, 1), fraction=0.5),
            note="cloudflare exit",
        )
        world = builder.build()
        assert any("cloudflare exit" in e[2] for e in world.manifest.entries())

    def test_weight_override(self):
        builder = WorldBuilder(scale=2500.0)
        # Shift 5 points from REG.RU DNS to Cloudflare DNS.
        builder.set_dns_weight("regru_dns", 9.0)
        builder.set_dns_weight("cloudflare_dns", 8.2)
        world = builder.build()
        collector = FastCollector(world)
        labels = snapshot_ns_geo_labels(collector.collect("2017-06-18"))
        # Less fully-Russian than the calibrated 67%.
        assert (labels == 0).mean() < 0.65

    def test_negative_weight_rejected(self):
        with pytest.raises(ScenarioError):
            WorldBuilder(scale=2500.0).set_dns_weight("regru_dns", -1.0)

    def test_unbalanced_weights_rejected_at_build(self):
        builder = WorldBuilder(scale=2500.0)
        builder.set_dns_weight("regru_dns", 50.0)  # sum now far from 100
        with pytest.raises(ScenarioError):
            builder.build()

    def test_infra_event(self):
        builder = WorldBuilder(scale=2500.0)
        builder.add_infra_event(
            InfraEvent(
                "2022-03-03", "netnod cut",
                ns_moves=[("ns4-cloud.nic.ru", "rucenter"),
                          ("ns8-cloud.nic.ru", "rucenter")],
            ),
            note="netnod renumbering",
        )
        world = builder.build()
        assert len(world.epochs()) == 2

    def test_counterfactual_flows_helper(self):
        flows, pulses = counterfactual_flows(
            "cloudflare_dns", "cloudflare_h", "regru_dns", "timeweb_h",
            "2022-04-01", "2022-05-01", dns_pp=3.0, hosting_pp=6.0,
        )
        assert len(flows) == 2 and pulses == []
        builder = WorldBuilder(scale=2500.0)
        for flow in flows:
            builder.add_flow(flow)
        assert validate_world(builder.build()) == []


class TestDeterminism:
    def test_same_builder_same_world(self):
        def build():
            return WorldBuilder(scale=2500.0, seed=7).build()

        a, b = build(), build()
        assert (a.base_dns == b.base_dns).all()
        assert (a.base_hosting == b.base_hosting).all()
