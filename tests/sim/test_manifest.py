"""Tests for repro.sim.manifest and the conflict scenario's timeline."""

import datetime as dt

from repro.sim.manifest import ScenarioManifest


class TestManifest:
    def test_entries_sorted(self):
        manifest = ScenarioManifest()
        manifest.record("2022-03-09", "Sedo", "pulls the plug")
        manifest.record("2022-02-24", "conflict", "invasion")
        dates = [entry[0] for entry in manifest.entries()]
        assert dates == sorted(dates)

    def test_between(self):
        manifest = ScenarioManifest()
        manifest.record("2022-02-24", "a", "x")
        manifest.record("2022-03-09", "b", "y")
        manifest.record("2022-04-22", "c", "z")
        march = manifest.between("2022-03-01", "2022-03-31")
        assert [entry[1] for entry in march] == ["b"]

    def test_render(self):
        manifest = ScenarioManifest()
        manifest.record("2022-03-03", "Netnod", "stops serving")
        text = manifest.render()
        assert "2022-03-03" in text and "Netnod" in text


class TestConflictTimeline:
    def test_world_carries_manifest(self, tiny_world):
        manifest = tiny_world.manifest
        assert manifest is not None
        assert len(manifest) >= 12

    def test_key_actors_present(self, tiny_world):
        actors = {entry[1] for entry in tiny_world.manifest.entries()}
        assert {"Netnod", "Amazon", "Sedo", "Google", "Cloudflare",
                "sanctions", "OFAC"} <= actors

    def test_timeline_spans_conflict_window(self, tiny_world):
        entries = tiny_world.manifest.entries()
        assert entries[0][0] == dt.date(2022, 2, 24)
        assert entries[-1][0] >= dt.date(2022, 4, 22)
