"""Tests for repro.sim.world using the tiny conflict world."""

import datetime as dt

import numpy as np
import pytest

from repro.sim.conflict import NETNOD_CUTOFF
from repro.timeline import STUDY_END, STUDY_START


class TestEpochs:
    def test_epoch_boundary_at_netnod(self, tiny_world):
        before = tiny_world.epoch_at(NETNOD_CUTOFF - dt.timedelta(days=1))
        after = tiny_world.epoch_at(NETNOD_CUTOFF)
        assert before is not after

    def test_cloud_ns_moves_country(self, tiny_world):
        before = tiny_world.epoch_at("2022-03-02")
        after = tiny_world.epoch_at("2022-03-03")
        old_address = before.ns_addresses["ns4-cloud.nic.ru"]
        new_address = after.ns_addresses["ns4-cloud.nic.ru"]
        assert old_address != new_address
        assert before.geo.lookup(old_address) == "SE"
        assert after.geo.lookup(new_address) == "RU"

    def test_stable_ns_untouched(self, tiny_world):
        before = tiny_world.epoch_at("2022-03-02")
        after = tiny_world.epoch_at("2022-03-03")
        assert (
            before.ns_addresses["ns1.reg.ru"] == after.ns_addresses["ns1.reg.ru"]
        )

    def test_epochs_chronological(self, tiny_world):
        days = [epoch.start_day for epoch in tiny_world.epochs()]
        assert days == sorted(days)


class TestStateAccess:
    def test_random_access_matches_sweep(self, tiny_world):
        dates = [dt.date(2019, 5, 1), dt.date(2022, 3, 10), STUDY_END]
        sweep_days = {
            day.date: (day.hosting_ids.copy(), day.dns_ids.copy())
            for day in tiny_world.sweep(STUDY_START, STUDY_END, 1)
            if day.date in dates
        }
        for date in dates:
            hosting, dns = sweep_days[date]
            assert (tiny_world.hosting_state(date) == hosting).all()
            assert (tiny_world.dns_state(date) == dns).all()

    def test_day_view_active_matches_population(self, tiny_world):
        view = tiny_world.day_view("2020-01-01")
        assert (
            view.active == tiny_world.population.active_indices("2020-01-01")
        ).all()

    def test_sweep_step(self, tiny_world):
        days = list(tiny_world.sweep("2022-01-01", "2022-01-31", 7))
        assert [d.date.day for d in days] == [1, 8, 15, 22, 29]


class TestPerDomainFacts:
    def test_apex_addresses_nonempty(self, tiny_world):
        addresses = tiny_world.apex_addresses(0, STUDY_START)
        assert addresses

    def test_ns_hostnames_for_sanctioned_cloud_domain(self, tiny_world):
        hostnames = tiny_world.ns_hostnames_for(0, "2022-02-01")
        assert "ns4-cloud.nic.ru" in hostnames

    def test_sanctioned_mask(self, tiny_world):
        mask = tiny_world.sanctioned_mask()
        assert mask[:107].all()
        assert not mask[107:].any()

    def test_sanctions_list_has_107_domains(self, tiny_world):
        assert len(tiny_world.sanctions.all_domains()) == 107
