"""Tests for repro.sim.certsim spec classes (unit level)."""

import datetime as dt

import pytest

from repro.errors import ScenarioError
from repro.sim.certsim import CaSpec, CertSimConfig, SanctionedIssuanceSpec

CONFLICT = dt.date(2022, 2, 24)


class TestCaSpec:
    def test_weight_before_conflict(self):
        spec = CaSpec("le", "Let's Encrypt", "US", share=90.0)
        assert spec.active_weight(dt.date(2022, 1, 1), CONFLICT) == 90.0

    def test_multiplier_after_conflict(self):
        spec = CaSpec(
            "gs", "GlobalSign", "JP", share=0.6,
            share_multiplier_post_conflict=2.0,
        )
        assert spec.active_weight(dt.date(2022, 3, 1), CONFLICT) == pytest.approx(1.2)

    def test_stop_date_zeroes_weight(self):
        spec = CaSpec(
            "dc", "DigiCert", "US", share=3.4, stop_date=dt.date(2022, 2, 25)
        )
        assert spec.active_weight(dt.date(2022, 2, 24), CONFLICT) > 0
        assert spec.active_weight(dt.date(2022, 2, 25), CONFLICT) == 0.0

    def test_leak_window(self):
        spec = CaSpec(
            "dc", "DigiCert", "US", share=3.4,
            stop_date=dt.date(2022, 2, 25), leak_days=10, leak_rate=0.1,
        )
        assert not spec.leaks_on(dt.date(2022, 2, 24))
        assert spec.leaks_on(dt.date(2022, 2, 25))
        assert spec.leaks_on(dt.date(2022, 3, 6))
        assert not spec.leaks_on(dt.date(2022, 3, 7))

    def test_no_stop_no_leak(self):
        spec = CaSpec("le", "Let's Encrypt", "US", share=90.0)
        assert not spec.leaks_on(dt.date(2022, 3, 1))

    def test_negative_share_rejected(self):
        with pytest.raises(ScenarioError):
            CaSpec("x", "X", "US", share=-1.0)

    def test_default_brand(self):
        spec = CaSpec("x", "X Corp", "US", share=1.0)
        assert spec.brands == ("X Corp CA",)


class TestSanctionedSpec:
    def test_revoked_cannot_exceed_issued(self):
        with pytest.raises(ScenarioError):
            SanctionedIssuanceSpec(
                "le", issued=10, revoked=11,
                revocation_window=("2022-03-01", "2022-03-10"),
            )

    def test_window_parsing(self):
        spec = SanctionedIssuanceSpec(
            "le", issued=10, revoked=2,
            revocation_window=("2022-03-01", "2022-03-10"),
            issue_until="2022-02-25",
        )
        assert spec.revocation_window[0] == dt.date(2022, 3, 1)
        assert spec.issue_until == dt.date(2022, 2, 25)


class TestCertSimConfig:
    def test_bad_scale_rejected(self):
        with pytest.raises(ScenarioError):
            CertSimConfig(seed=1, scale_factor=0.0, ca_specs=[], sanctioned_specs=[])

    def test_defaults(self):
        config = CertSimConfig(seed=1, scale_factor=0.01, ca_specs=[],
                               sanctioned_specs=[])
        assert config.start < config.conflict_start < config.end
        assert config.russian_ca_cert_count == 170
        assert (
            config.russian_ca_sanctioned_count
            + config.russian_ca_rf_count
            + config.russian_ca_external_count
            < config.russian_ca_cert_count
        )
