"""Tests for repro.sim.flows: the flow engine."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.registry.population import DomainPopulation, PopulationConfig
from repro.rng import derive_rng
from repro.sim.events import Field
from repro.sim.flows import Flow, FlowEngine, Pulse

PLAN_IDS = {
    Field.DNS: {"a": 0, "b": 1, "c": 2},
    Field.HOSTING: {"x": 0, "y": 1},
}


@pytest.fixture(scope="module")
def population():
    return DomainPopulation(PopulationConfig(seed=11, initial_count=2000))


def engine(population, seed=1):
    return FlowEngine(population, PLAN_IDS, derive_rng(seed, "flow-test"))


class TestValidation:
    def test_empty_flow_window_rejected(self):
        with pytest.raises(ScenarioError):
            Flow(Field.DNS, ["a"], "b", 1.0, "2020-01-02", "2020-01-02")

    def test_zero_pp_rejected(self):
        with pytest.raises(ScenarioError):
            Flow(Field.DNS, ["a"], "b", 0.0, "2020-01-01", "2020-01-02")

    def test_pulse_needs_exactly_one_quantum(self):
        with pytest.raises(ScenarioError):
            Pulse(Field.DNS, ["a"], "b", "2020-01-01")
        with pytest.raises(ScenarioError):
            Pulse(Field.DNS, ["a"], "b", "2020-01-01", fraction=0.5, count=3)

    def test_pulse_fraction_bounds(self):
        with pytest.raises(ScenarioError):
            Pulse(Field.DNS, ["a"], "b", "2020-01-01", fraction=1.5)


class TestFlowExecution:
    def test_flow_moves_approximately_total_pp(self, population):
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),  # everyone on plan "a"
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        flow = Flow(Field.DNS, ["a"], "b", 10.0, "2018-01-01", "2020-01-01")
        events, final = engine(population).run(base, [flow], [], 1803)
        active = population.active_mask("2020-06-01")
        moved_share = (final[Field.DNS][active] == 1).mean()
        assert 0.06 < moved_share < 0.15  # ~10pp with churn noise

    def test_unknown_plan_key_rejected(self, population):
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        flow = Flow(Field.DNS, ["a"], "missing", 1.0, "2018-01-01", "2018-02-01")
        with pytest.raises(ScenarioError):
            engine(population).run(base, [flow], [], 1803)


class TestPulseExecution:
    def test_fraction_pulse(self, population):
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        pulse = Pulse(Field.HOSTING, ["x"], "y", "2019-01-01", fraction=0.5)
        events, final = engine(population).run(base, [], [pulse], 1803)
        active = population.active_mask("2019-01-02")
        share = (final[Field.HOSTING][active] == 1).mean()
        assert 0.45 < share < 0.55

    def test_count_pulse_exact(self, population):
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        pulse = Pulse(Field.HOSTING, ["x"], "y", "2019-01-01", count=17)
        events, final = engine(population).run(base, [], [pulse], 1803)
        assert (final[Field.HOSTING] == 1).sum() == 17

    def test_exclusion_respected(self, population):
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        protected = np.zeros(n, dtype=bool)
        protected[:50] = True
        pulse = Pulse(Field.HOSTING, ["x"], "y", "2019-01-01", fraction=1.0)
        _, final = engine(population).run(
            base, [], [pulse], 1803, exclude=protected
        )
        assert (final[Field.HOSTING][:50] == 0).all()

    def test_pulse_order_within_day(self, population):
        """Two same-day pulses apply sequentially in list order."""
        n = len(population)
        base = {
            Field.DNS: np.zeros(n, dtype=np.int32),
            Field.HOSTING: np.zeros(n, dtype=np.int32),
        }
        pulses = [
            Pulse(Field.HOSTING, ["x"], "y", "2019-01-01", fraction=1.0),
            Pulse(Field.HOSTING, ["y"], "x", "2019-01-01", fraction=1.0),
        ]
        _, final = engine(population).run(base, [], pulses, 1803)
        active = population.active_mask("2019-01-02")
        # Everything moved x->y then back y->x.
        assert (final[Field.HOSTING][active] == 0).all()


class TestDeterminism:
    def test_same_seed_same_events(self, population):
        n = len(population)

        def run(seed):
            base = {
                Field.DNS: np.zeros(n, dtype=np.int32),
                Field.HOSTING: np.zeros(n, dtype=np.int32),
            }
            flow = Flow(Field.DNS, ["a"], "b", 5.0, "2018-01-01", "2019-01-01")
            events, final = engine(population, seed).run(base, [flow], [], 1803)
            return final[Field.DNS].copy()

        assert (run(3) == run(3)).all()
        assert not (run(3) == run(4)).all()
