"""Tests for repro.ioutil: atomic writes under injected mid-write faults.

Tier-1 (no worlds, no processes): proves a faulted write can never leave
a torn file behind the final name, and that the read-back verify turns
injected byte corruption into a retry.
"""

import os

import pytest

from repro.errors import RecoveryError
from repro.faults import CORRUPT, IO_ERROR, FaultPlan, FaultSpec
from repro.ioutil import atomic_write_bytes, backoff_seconds


def no_temp_files(directory):
    return not [name for name in os.listdir(directory) if ".tmp." in name]


class TestAtomicWrite:
    def test_plain_write(self, tmp_path):
        path = tmp_path / "out.bin"
        retries = atomic_write_bytes(str(path), b"payload")
        assert retries == 0
        assert path.read_bytes() == b"payload"
        assert no_temp_files(tmp_path)

    def test_mid_write_fault_retries_then_succeeds(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"previous good version")
        plan = FaultPlan(
            1, {"shard.write": FaultSpec(IO_ERROR, 1.0, match="#0")}
        )
        retries = atomic_write_bytes(
            str(path), b"new version", faults=plan, site="shard.write"
        )
        assert retries == 1
        assert path.read_bytes() == b"new version"
        assert plan.injected("shard.write") == 1
        assert no_temp_files(tmp_path)

    def test_exhausted_retries_keep_previous_version(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"previous good version")
        plan = FaultPlan(1, {"shard.write": FaultSpec(IO_ERROR, 1.0)})
        with pytest.raises(RecoveryError, match="3 attempts"):
            atomic_write_bytes(
                str(path), b"new version", faults=plan, site="shard.write",
                retries=2, backoff=0.0,
            )
        # The final name still holds the old bytes — never a torn file.
        assert path.read_bytes() == b"previous good version"
        assert no_temp_files(tmp_path)

    def test_injected_corruption_caught_by_read_back(self, tmp_path):
        path = tmp_path / "out.bin"
        data = bytes(range(256))
        plan = FaultPlan(
            2, {"shard.write.bytes": FaultSpec(CORRUPT, 1.0, match="#0")}
        )
        retries = atomic_write_bytes(
            str(path), data, faults=plan, site="shard.write"
        )
        assert retries == 1
        assert path.read_bytes() == data  # corrupted attempt never lands
        assert plan.injected("shard.write.bytes") == 1
        assert no_temp_files(tmp_path)


class TestBackoff:
    def test_exponential_then_capped(self):
        assert backoff_seconds(0, 0.01) == 0.01
        assert backoff_seconds(1, 0.01) == 0.02
        assert backoff_seconds(10, 0.01) == 0.25
