"""Tests for repro.faults.plan: determinism, budgets, firing semantics.

These are pure-logic tests (no worlds, no processes) and run in tier-1;
the self-healing integration suites live next door under ``-m faults``.
"""

import pickle

import pytest

from repro.errors import FaultError
from repro.faults import (
    CORRUPT,
    CRASH,
    IO_ERROR,
    KILL,
    SERVICE_SITES,
    SITES,
    STALL,
    FaultPlan,
    FaultSpec,
    TransientIOError,
    WorkerCrashed,
    default_plan,
    service_plan,
    sync_fault_metrics,
)
from repro.measurement.metrics import SweepMetrics

KEYS = [f"2022-03-{day:02d}.shard#{attempt}" for day in range(1, 29) for attempt in range(3)]


def decisions(plan, site="shard.write"):
    return [plan.decide(site, key) for key in KEYS]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(42, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        b = FaultPlan(42, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        assert decisions(a) == decisions(b)

    def test_decisions_are_stateless(self):
        # Reading the grid twice (events accumulating in between) must
        # not shift later decisions.
        plan = FaultPlan(42, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        first = decisions(plan)
        for key in KEYS:
            if plan.decide("shard.write", key) is not None:
                with pytest.raises(TransientIOError):
                    plan.check("shard.write", key)
        assert decisions(plan) == first

    def test_different_seeds_differ(self):
        a = FaultPlan(1, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        b = FaultPlan(2, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        assert decisions(a) != decisions(b)

    def test_sites_roll_independently(self):
        plan = FaultPlan(
            7,
            {
                "shard.write": FaultSpec(IO_ERROR, 0.3),
                "manifest.write": FaultSpec(IO_ERROR, 0.3),
            },
        )
        solo = FaultPlan(7, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        assert decisions(plan, "shard.write") == decisions(solo, "shard.write")
        assert decisions(plan, "shard.write") != decisions(plan, "manifest.write")

    def test_retry_rerolls_under_fresh_key(self):
        # At a moderate rate, some faulted key must pass on a later
        # attempt — the retry loop's convergence guarantee.
        plan = FaultPlan(42, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
        recovered = False
        for day in range(1, 29):
            rolls = [
                plan.decide("shard.write", f"2022-03-{day:02d}.shard#{attempt}")
                for attempt in range(4)
            ]
            if rolls[0] is not None and None in rolls[1:]:
                recovered = True
        assert recovered

    def test_event_sequence_reproducible(self, fault_seed):
        def run(seed):
            plan = FaultPlan(seed, {"shard.write": FaultSpec(IO_ERROR, 0.3)})
            for key in KEYS:
                try:
                    plan.check("shard.write", key)
                except TransientIOError:
                    pass
            return plan.events

        assert run(fault_seed) == run(fault_seed)
        assert run(fault_seed)  # the rate makes at least one firing certain


class TestBudgetAndTargeting:
    def test_budget_caps_per_instance(self):
        plan = FaultPlan(1, {"shard.write": FaultSpec(IO_ERROR, 1.0, max_injections=3)})
        fired = 0
        for key in KEYS:
            try:
                plan.check("shard.write", key)
            except TransientIOError:
                fired += 1
        assert fired == 3
        assert plan.injected("shard.write") == 3

    def test_match_targets_one_key(self):
        plan = FaultPlan(
            1, {"sweep.chunk": FaultSpec(CRASH, 1.0, match="2022-03-04.shard#0")}
        )
        assert plan.decide("sweep.chunk", "2022-03-04.shard#0") == CRASH
        assert plan.decide("sweep.chunk", "2022-03-04.shard#1") is None
        assert plan.decide("sweep.chunk", "2022-03-05.shard#0") is None

    def test_disabled_plan_is_a_noop(self):
        plan = FaultPlan(
            1, {"shard.write": FaultSpec(IO_ERROR, 1.0)}, enabled=False
        )
        assert decisions(plan) == [None] * len(KEYS)
        plan.check("shard.write", KEYS[0])
        assert plan.injected() == 0


class TestFiring:
    def test_io_error_raises_transient(self):
        plan = FaultPlan(1, {"shard.read": FaultSpec(IO_ERROR, 1.0)})
        with pytest.raises(TransientIOError, match="shard.read"):
            plan.check("shard.read", "x#0")

    def test_crash_raises_worker_crashed(self):
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(CRASH, 1.0)})
        with pytest.raises(WorkerCrashed):
            plan.check("sweep.chunk", "x#0")

    def test_kill_downgrades_to_crash_in_driving_process(self):
        # os._exit would take the test process down; outside a marked
        # worker the KILL kind must degrade to a survivable crash.
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(KILL, 1.0)})
        with pytest.raises(WorkerCrashed):
            plan.check("sweep.chunk", "x#0")

    def test_stall_sleeps_then_continues(self):
        plan = FaultPlan(
            1, {"sweep.chunk": FaultSpec(STALL, 1.0, stall_seconds=0.0)}
        )
        plan.check("sweep.chunk", "x#0")
        assert plan.events == [("sweep.chunk", "x#0", STALL)]

    def test_corrupt_flips_exactly_one_bit(self):
        plan = FaultPlan(9, {"shard.write.bytes": FaultSpec(CORRUPT, 1.0)})
        data = bytes(range(64))
        mutated = plan.corrupt_bytes("shard.write.bytes", "x#0", data)
        assert mutated != data
        assert len(mutated) == len(data)
        diff = [(a ^ b) for a, b in zip(data, mutated) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1
        again = FaultPlan(9, {"shard.write.bytes": FaultSpec(CORRUPT, 1.0)})
        assert again.corrupt_bytes("shard.write.bytes", "x#0", data) == mutated

    def test_corrupt_bytes_passes_clean_when_not_scheduled(self):
        plan = FaultPlan(9, {"shard.write.bytes": FaultSpec(CORRUPT, 0.0)})
        data = b"payload"
        assert plan.corrupt_bytes("shard.write.bytes", "x#0", data) == data

    def test_corrupt_via_check_is_rejected(self):
        plan = FaultPlan(9, {"shard.write.bytes": FaultSpec(CORRUPT, 1.0)})
        with pytest.raises(FaultError, match="corrupt_bytes"):
            plan.check("shard.write.bytes", "x#0")


class TestValidationAndPickling:
    def test_unknown_site_refused(self):
        with pytest.raises(FaultError, match="unknown injection site"):
            FaultPlan(1, {"nonsense.site": FaultSpec(IO_ERROR)})

    def test_unknown_kind_refused(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec("meltdown")

    def test_bad_rate_refused(self):
        with pytest.raises(FaultError, match="rate"):
            FaultSpec(IO_ERROR, rate=1.5)

    def test_pickle_round_trip_resets_process_state(self):
        plan = FaultPlan(3, {"shard.write": FaultSpec(IO_ERROR, 1.0)})
        with pytest.raises(TransientIOError):
            plan.check("shard.write", "x#0")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed
        assert clone.sites == plan.sites
        assert clone.enabled is plan.enabled
        assert clone.events == [] and clone.reported == 0
        # Fresh budget, same decisions.
        assert decisions(clone) == decisions(FaultPlan(3, plan.sites))


class TestDefaultPlanAndMetrics:
    def test_default_plan_covers_every_pipeline_site(self):
        plan = default_plan(5, rate=0.25)
        assert set(plan.sites) == set(SITES) - set(SERVICE_SITES)

    def test_service_plan_covers_every_service_site(self):
        # worker_crash is opt-in: armed via crash_match only, because a
        # rate-armed KILL would take down single-process serves.
        plan = service_plan(5, rate=0.25, match="headline")
        assert set(plan.sites) == set(SERVICE_SITES) - {"service.worker_crash"}
        for site in plan.sites:
            assert plan.sites[site].match == "headline"

        armed = service_plan(
            5, rate=0.25, match="headline", crash_match="2022-03-18"
        )
        assert set(armed.sites) == set(SERVICE_SITES)
        crash = armed.sites["service.worker_crash"]
        assert crash.match == "2022-03-18"
        assert crash.rate == 1.0
        assert crash.max_injections == 1

    def test_sync_fault_metrics_reports_deltas_once(self):
        plan = FaultPlan(1, {"shard.write": FaultSpec(IO_ERROR, 1.0)})
        metrics = SweepMetrics()
        with pytest.raises(TransientIOError):
            plan.check("shard.write", "x#0")
        sync_fault_metrics(plan, metrics)
        assert metrics.recovery_count("faults_injected") == 1
        sync_fault_metrics(plan, metrics)  # no new events: no double count
        assert metrics.recovery_count("faults_injected") == 1
        with pytest.raises(TransientIOError):
            plan.check("shard.write", "y#0")
        sync_fault_metrics(plan, metrics)
        assert metrics.recovery_count("faults_injected") == 2

    def test_sync_handles_missing_plan_or_metrics(self):
        sync_fault_metrics(None, SweepMetrics())
        sync_fault_metrics(FaultPlan(1), None)
