"""Self-healing archive tests: faulted builds, quarantine, repair.

Marked ``faults``: these build real (small) archives.  The acceptance
property throughout is byte-identity — a build that suffered injected
faults, and an archive healed after corruption, must equal the
fault-free artefact file for file.
"""

import datetime as dt
import hashlib
import json
import os

import pytest

from repro.archive import ArchiveBuilder, MeasurementArchive
from repro.archive.manifest import MANIFEST_NAME
from repro.faults import default_plan
from repro.measurement.metrics import SweepMetrics

pytestmark = pytest.mark.faults

START = dt.date(2022, 3, 1)
END = dt.date(2022, 3, 14)


def archive_digest(directory):
    """SHA-256 over every shard + the manifest (names and bytes)."""
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        if not (name.endswith(".shard") or name == MANIFEST_NAME):
            continue
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def clean_archive(tmp_path_factory, fault_config):
    directory = tmp_path_factory.mktemp("selfheal") / "clean"
    ArchiveBuilder(str(directory), fault_config).build(START, END, 1)
    return str(directory)


def copy_archive(source, target):
    os.makedirs(target)
    for name in os.listdir(source):
        with open(os.path.join(source, name), "rb") as src:
            with open(os.path.join(target, name), "wb") as dst:
                dst.write(src.read())
    return target


class TestFaultedBuild:
    def test_faulted_build_is_byte_identical(
        self, tmp_path, fault_config, clean_archive, fault_seed
    ):
        plan = default_plan(fault_seed, rate=0.25)
        metrics = SweepMetrics()
        directory = tmp_path / "faulted"
        builder = ArchiveBuilder(
            str(directory), fault_config, metrics=metrics, faults=plan
        )
        report = builder.build(START, END, 1)
        assert len(report.written) == 14
        # The plan must actually have interfered for this to prove anything.
        assert plan.injected() > 0
        assert metrics.recovery_count("faults_injected") > 0
        assert archive_digest(str(directory)) == archive_digest(clean_archive)
        assert MeasurementArchive(str(directory)).verify() == []


class TestLoadDaySelfHealing:
    def test_corrupt_shard_quarantined_and_rebuilt(
        self, tmp_path, fault_config, clean_archive
    ):
        directory = copy_archive(clean_archive, str(tmp_path / "heal"))
        date = dt.date(2022, 3, 5)
        shard = os.path.join(directory, f"{date.isoformat()}.shard")
        with open(shard, "rb") as handle:
            original = handle.read()
        mutated = bytearray(original)
        mutated[len(mutated) // 2] ^= 0x10
        with open(shard, "wb") as handle:
            handle.write(bytes(mutated))

        metrics = SweepMetrics()
        archive = MeasurementArchive(
            directory, metrics=metrics, config=fault_config
        )
        record = archive.load_day(date)
        assert record.date == date
        assert metrics.recovery_count("shards_quarantined") == 1
        assert metrics.recovery_count("shards_rebuilt") == 1
        assert os.path.exists(shard + ".quarantined")
        with open(shard, "rb") as handle:
            assert handle.read() == original  # bit-identical rebuild
        assert archive.verify() == []

    def test_without_config_damage_raises(self, tmp_path, clean_archive):
        directory = copy_archive(clean_archive, str(tmp_path / "noheal"))
        date = dt.date(2022, 3, 5)
        shard = os.path.join(directory, f"{date.isoformat()}.shard")
        with open(shard, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0x01]))
        archive = MeasurementArchive(directory)
        from repro.errors import ArchiveError

        with pytest.raises(ArchiveError):
            archive.load_day(date)


class TestRepair:
    def test_repair_restores_byte_identity(
        self, tmp_path, fault_config, clean_archive
    ):
        directory = copy_archive(clean_archive, str(tmp_path / "repair"))
        clean = archive_digest(clean_archive)

        # Four distinct damage classes plus an orphan.
        flip = os.path.join(directory, "2022-03-02.shard")
        with open(flip, "r+b") as handle:
            handle.seek(60)
            byte = handle.read(1)
            handle.seek(60)
            handle.write(bytes([byte[0] ^ 0x04]))
        truncated = os.path.join(directory, "2022-03-06.shard")
        with open(truncated, "rb") as handle:
            kept = handle.read()[:-9]
        with open(truncated, "wb") as handle:
            handle.write(kept)
        os.unlink(os.path.join(directory, "2022-03-09.shard"))
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        raw["days"]["2022-03-12"]["crc32"] ^= 1
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(os.path.join(directory, "1999-01-01.shard"), "wb") as handle:
            handle.write(b"stray bytes from an interrupted build")

        metrics = SweepMetrics()
        archive = MeasurementArchive(directory, metrics=metrics)
        kinds = {problem.kind for problem in archive.verify_detailed()}
        assert kinds == {
            "corrupt", "truncated", "missing-shard", "stale-manifest-crc", "orphan",
        }

        report = archive.repair(fault_config)
        assert report.ok
        assert sorted(report.rebuilt) == [
            dt.date(2022, 3, 2), dt.date(2022, 3, 6),
            dt.date(2022, 3, 9), dt.date(2022, 3, 12),
        ]
        assert len(report.quarantined) == 4  # all but the deleted shard
        assert metrics.recovery_count("shards_rebuilt") == 4
        assert archive.verify() == []
        assert archive_digest(directory) == clean

    def test_repair_on_clean_archive_is_a_noop(self, tmp_path, fault_config, clean_archive):
        directory = copy_archive(clean_archive, str(tmp_path / "noop"))
        archive = MeasurementArchive(directory)
        report = archive.repair(fault_config)
        assert report.ok
        assert report.quarantined == [] and report.rebuilt == []
        assert archive_digest(directory) == archive_digest(clean_archive)
