"""Fixtures for the fault-injection suites.

The self-healing tests (marked ``faults``) sweep real worlds at the
sweep-test scale (1:5000).  ``fault_seed`` honours the
``REPRO_FAULT_SEED`` environment variable so the CI fault matrix can
run the identical suite under several seeds.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import ConflictScenarioConfig


@pytest.fixture(scope="session")
def fault_seed():
    return int(os.environ.get("REPRO_FAULT_SEED", "101"))


@pytest.fixture(scope="session")
def fault_config():
    return ConflictScenarioConfig(scale=5000.0, with_pki=False)
