"""Self-healing sweep tests: injected crashes, pool degradation.

Marked ``faults`` (excluded from tier-1): these sweep a real 1:5000
world, fork process pools, and hard-kill workers.  Every test asserts
the recovered results are bit-identical to an undisturbed run — the
engine's self-healing guarantee.
"""

import datetime as dt
import hashlib

import numpy as np
import pytest

from repro.errors import RecoveryError
from repro.faults import CRASH, KILL, FaultPlan, FaultSpec
from repro.measurement.fast import FastCollector
from repro.measurement.metrics import SweepMetrics
from repro.measurement.sweep import SweepEngine
from repro.sim.conflict import build_world

pytestmark = pytest.mark.faults

START = dt.date(2021, 3, 15)
END = dt.date(2021, 4, 10)


class DigestReducer:
    """Hashes each day's full measured state (strong identity check)."""

    def reduce_day(self, snapshot):
        digest = hashlib.sha256()
        digest.update(snapshot.date.isoformat().encode())
        measured = np.asarray(snapshot.measured, dtype=np.int64)
        digest.update(measured.tobytes())
        digest.update(snapshot.dns_ids[measured].astype(np.int32).tobytes())
        digest.update(snapshot.hosting_ids[measured].astype(np.int32).tobytes())
        return (snapshot.date, digest.hexdigest())


@pytest.fixture(scope="module")
def world(fault_config):
    return build_world(fault_config)


@pytest.fixture(scope="module")
def baseline(world, fault_config):
    """The undisturbed sweep every recovery path must reproduce."""
    engine = SweepEngine(FastCollector(world), config=fault_config, chunk_days=4)
    return engine.run(DigestReducer(), START, END, 1)


def make_engine(world, fault_config, faults, workers=1, **kwargs):
    metrics = SweepMetrics()
    engine = SweepEngine(
        FastCollector(world),
        config=fault_config,
        workers=workers,
        chunk_days=4,
        metrics=metrics,
        faults=faults,
        **kwargs,
    )
    return engine, metrics


class TestSerialSelfHealing:
    def test_targeted_crash_retries_every_chunk(self, world, fault_config, baseline):
        # Every chunk's first attempt crashes; the retry (attempt #1)
        # falls outside the match and succeeds.
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(CRASH, 1.0, match="#0")})
        engine, metrics = make_engine(world, fault_config, plan)
        records = engine.run(DigestReducer(), START, END, 1)
        assert records == baseline
        chunks = 7  # 27 days in chunks of 4
        assert metrics.recovery_count("chunk_retries") == chunks
        assert metrics.recovery_count("faults_injected") == chunks
        assert metrics.recovery_count("degraded_to_serial") == 0

    def test_random_crashes_converge(self, world, fault_config, baseline, fault_seed):
        plan = FaultPlan(fault_seed, {"sweep.chunk": FaultSpec(CRASH, 0.3)})
        engine, metrics = make_engine(
            world, fault_config, plan, max_chunk_retries=6, retry_backoff=0.0
        )
        records = engine.run(DigestReducer(), START, END, 1)
        assert records == baseline

    def test_retry_budget_exhaustion_raises(self, world, fault_config):
        # No match clause: every attempt of every chunk crashes.
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(CRASH, 1.0)})
        engine, _ = make_engine(world, fault_config, plan, retry_backoff=0.0)
        with pytest.raises(RecoveryError, match="failed 4 times"):
            engine.run(DigestReducer(), START, END, 1)


class TestProcessSelfHealing:
    def test_worker_crash_resubmits_chunk(self, world, fault_config, baseline):
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(CRASH, 1.0, match="#0")})
        engine, metrics = make_engine(world, fault_config, plan, workers=2)
        records = engine.run(DigestReducer(), START, END, 1)
        assert records == baseline
        assert metrics.recovery_count("chunk_retries") == 7
        assert metrics.recovery_count("degraded_to_serial") == 0

    def test_killed_workers_degrade_to_serial(self, world, fault_config, baseline):
        # A hard kill takes the whole pool down (BrokenProcessPool), and
        # resubmission never bumps the attempt counter, so every pool
        # round dies the same way until the engine gives up on pools and
        # finishes serially — where KILL degrades to a survivable crash
        # and the retry succeeds.
        plan = FaultPlan(1, {"sweep.chunk": FaultSpec(KILL, 1.0, match="#0")})
        engine, metrics = make_engine(
            world, fault_config, plan, workers=2, retry_backoff=0.0
        )
        records = engine.run(DigestReducer(), START, END, 1)
        assert records == baseline
        assert metrics.recovery_count("degraded_to_serial") == 1
        assert metrics.recovery_count("pool_failures") == 3
        assert metrics.recovery_count("chunk_retries") > 0

    def test_pool_round_crash_recreates_pool(self, world, fault_config, baseline):
        # The pool-level fault fires in the driving process before the
        # first round's pool is created; the second round proceeds.
        plan = FaultPlan(
            1, {"sweep.pool": FaultSpec(CRASH, 1.0, match="round#0")}
        )
        engine, metrics = make_engine(
            world, fault_config, plan, workers=2, retry_backoff=0.0
        )
        records = engine.run(DigestReducer(), START, END, 1)
        assert records == baseline
        assert metrics.recovery_count("pool_failures") == 1
        assert metrics.recovery_count("degraded_to_serial") == 0
