"""Kill-and-resume: an interrupted build converges on identical bytes.

Marked ``faults``.  A fault plan deterministically kills one chunk of an
in-flight ``ArchiveBuilder.build`` (every attempt, so the retry budget
exhausts and the build dies mid-segment, leaving orphan shards and no
manifest coverage for the segment).  Resuming without faults must
produce an archive byte-identical to one built without interruption —
the resumability property the archive design promises.
"""

import datetime as dt
import hashlib
import os

import pytest

from repro.archive import ArchiveBuilder, MeasurementArchive
from repro.archive.manifest import MANIFEST_NAME
from repro.errors import RecoveryError
from repro.faults import CRASH, KILL, FaultPlan, FaultSpec

pytestmark = pytest.mark.faults

START = dt.date(2022, 3, 1)
END = dt.date(2022, 3, 14)

#: Chunk size the builds run at; 2022-03-07 starts the third chunk.
CHUNK_DAYS = 3
DOOMED_CHUNK = "2022-03-07"


def archive_digest(directory):
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        if not (name.endswith(".shard") or name == MANIFEST_NAME):
            continue
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory, fault_config):
    directory = tmp_path_factory.mktemp("killresume") / "reference"
    ArchiveBuilder(str(directory), fault_config, chunk_days=CHUNK_DAYS).build(
        START, END, 1
    )
    return str(directory)


def interrupt_then_resume(directory, fault_config, plan, workers=1):
    """Run a build that must die on the doomed chunk, then resume clean."""
    builder = ArchiveBuilder(
        str(directory),
        fault_config,
        workers=workers,
        chunk_days=CHUNK_DAYS,
        faults=plan,
    )
    with pytest.raises(RecoveryError):
        builder.build(START, END, 1)
    # The interruption landed mid-segment: shards exist that no
    # manifest records (the crash-consistency state resume must absorb).
    orphans = [n for n in os.listdir(directory) if n.endswith(".shard")]
    assert orphans
    assert not os.path.exists(os.path.join(directory, MANIFEST_NAME))
    resumed = ArchiveBuilder(str(directory), fault_config, chunk_days=CHUNK_DAYS)
    report = resumed.build(START, END, 1)
    # Resume covers every day of the range exactly once: intact orphan
    # shards are adopted in place, the rest are rebuilt.  Nothing was in
    # the manifest, so nothing is skipped.
    assert len(report.written) + len(report.adopted) == 14
    assert not report.skipped
    return report


class TestKillAndResume:
    def test_serial_interrupt_resume_byte_identical(
        self, tmp_path, fault_config, uninterrupted
    ):
        # Matching the chunk key without an attempt suffix dooms every
        # retry, so the serial build dies with RecoveryError mid-range.
        plan = FaultPlan(
            1, {"sweep.chunk": FaultSpec(CRASH, 1.0, match=DOOMED_CHUNK)}
        )
        directory = tmp_path / "serial"
        interrupt_then_resume(str(directory), fault_config, plan)
        assert archive_digest(str(directory)) == archive_digest(uninterrupted)
        assert MeasurementArchive(str(directory)).verify() == []

    def test_killed_pool_interrupt_resume_byte_identical(
        self, tmp_path, fault_config, uninterrupted
    ):
        # Hard-killed workers break pool after pool, the engine degrades
        # to serial, and the doomed chunk still exhausts its retries —
        # the worst recoverable-to-unrecoverable cascade ends in a clean
        # RecoveryError, and resume converges all the same.
        plan = FaultPlan(
            1, {"sweep.chunk": FaultSpec(KILL, 1.0, match=DOOMED_CHUNK)}
        )
        directory = tmp_path / "pool"
        interrupt_then_resume(str(directory), fault_config, plan, workers=2)
        assert archive_digest(str(directory)) == archive_digest(uninterrupted)
        assert MeasurementArchive(str(directory)).verify() == []
