"""Tests for repro.live.engine: determinism, resume, and the ladder."""

import datetime as dt

from repro.archive import archive_digest
from repro.live import (
    EventLog,
    FOLLOWING,
    FollowOptions,
    STATUS_FILENAME,
    read_follow_status,
)
from repro.measurement.metrics import SweepMetrics

from .conftest import (
    FOLLOW_END,
    FOLLOW_START,
    engine_cycles,
    make_engine,
    seed_archive,
)


def _event_lines(directory: str):
    return [event.to_line() for event in EventLog(directory).load()]


class TestDeterminism:
    def test_two_runs_are_byte_identical(
        self, tmp_path, live_config, reference_run
    ):
        """The whole live contract in one assertion: an independent
        follow run reproduces the reference archive digest and the
        reference event log, byte for byte."""
        directory = str(tmp_path / "again")
        seed_archive(directory, live_config)
        engine = make_engine(directory, live_config)
        engine.run()
        digest, lines = reference_run
        assert archive_digest(directory) == digest
        assert _event_lines(directory) == lines

    def test_event_feed_is_gapless(self, followed_archive):
        events = EventLog(followed_archive).load()
        assert [event.seq for event in events] == list(
            range(1, len(events) + 1)
        )


class TestResume:
    def test_stop_and_resume_converges(
        self, tmp_path, live_config, reference_run
    ):
        """An engine stopped cold mid-window and resumed by a fresh
        process converges on the uninterrupted run's bytes."""
        directory = str(tmp_path / "resumed")
        seed_archive(directory, live_config)
        first = make_engine(directory, live_config)
        assert first.run(max_cycles=5) == 5
        assert not first.done

        second = make_engine(directory, live_config)  # fresh, resumes
        checkpoint = second.last_checkpoint()
        assert checkpoint is not None
        assert checkpoint.date == dt.date.fromisoformat(
            FOLLOW_START
        ) + dt.timedelta(days=4)
        second.run()
        digest, lines = reference_run
        assert archive_digest(directory) == digest
        assert _event_lines(directory) == lines

    def test_fresh_directory_resume_is_empty(self, tmp_path, live_config):
        directory = str(tmp_path / "fresh")
        seed_archive(directory, live_config)
        engine = make_engine(directory, live_config)
        assert engine.last_checkpoint() is None
        assert engine.next_date() == dt.date.fromisoformat(FOLLOW_START)
        assert not engine.done


class TestScheduling:
    def test_cadence_steps_days(self, tmp_path, live_config):
        directory = str(tmp_path / "cadence")
        seed_archive(directory, live_config)
        engine = make_engine(directory, live_config, cadence_days=7)
        engine.run()
        covered = sorted(
            date
            for date in engine._open_archive().manifest.days
            if date >= dt.date.fromisoformat(FOLLOW_START)
        )
        expected = []
        day = dt.date.fromisoformat(FOLLOW_START)
        while day <= dt.date.fromisoformat(FOLLOW_END):
            expected.append(day)
            day += dt.timedelta(days=7)
        assert covered == expected

    def test_done_engine_advances_to_noop(self, followed_archive, live_config):
        engine = make_engine(followed_archive, live_config)
        assert engine.done
        assert engine.advance() is None
        assert engine.state == FOLLOWING


class TestStatusMirror:
    def test_status_document_shape(self, followed_archive):
        doc = read_follow_status(followed_archive)
        assert doc is not None
        assert doc["state"] == FOLLOWING
        assert doc["done"] is True
        assert doc["ingest_lag_days"] == 0
        assert doc["last_date"] == FOLLOW_END
        assert doc["event_cursor"] == EventLog(followed_archive).cursor()

    def test_missing_status_reads_none(self, tmp_path):
        assert read_follow_status(str(tmp_path)) is None

    def test_torn_status_reads_none(self, tmp_path):
        (tmp_path / STATUS_FILENAME).write_text('{"state": "foll')
        assert read_follow_status(str(tmp_path)) is None


class TestMetrics:
    def test_live_counters_accumulate(self, tmp_path, live_config):
        directory = str(tmp_path / "metrics")
        seed_archive(directory, live_config)
        metrics = SweepMetrics()
        engine = make_engine(directory, live_config, metrics=metrics)
        engine.run()
        assert metrics.counter("live_days_ingested") == engine_cycles()
        assert metrics.counter("live_events_emitted") == EventLog(
            directory
        ).cursor()
        # One journal fsync per ingested day (no faults: no retries).
        assert metrics.counter("live_journal_fsyncs") == engine_cycles()
        assert metrics.counter("live_ingest_failures") == 0


class TestOptions:
    def test_options_pickle_roundtrip(self):
        import pickle

        options = FollowOptions(
            start=FOLLOW_START, end=FOLLOW_END, cadence_days=2,
            interval_seconds=0.5, stall_after=4, retries=2,
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone.start == options.start
        assert clone.end == options.end
        assert clone.cadence_days == 2
        assert clone.stall_after == 4

    def test_digest_ignores_live_bookkeeping(
        self, followed_archive, reference_run
    ):
        """journal/events/status files never perturb archive identity."""
        digest, _ = reference_run
        assert archive_digest(followed_archive) == digest  # files present
