"""Kill-and-resume chaos for the follow engine (marked ``faults``/``chaos``).

Each scenario interrupts a follow run at a different point of the
shard → events → journal commit order, then resumes with a fresh,
fault-free engine.  Every variant must converge on the byte-identical
archive digest and event log of the uninterrupted reference run, with
the event feed staying exactly ``1..N`` — the crash-safety contract
the journal design promises.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.archive import archive_digest
from repro.errors import LiveError
from repro.faults import CORRUPT, CRASH, IO_ERROR, FaultPlan, FaultSpec
from repro.live import (
    EventLog,
    FOLLOWING,
    LAGGING,
    STALLED,
    FollowJournal,
)

from .conftest import (
    FOLLOW_END,
    FOLLOW_START,
    make_engine,
    seed_archive,
)

pytestmark = pytest.mark.faults

#: The first day of the window that emits events (sensitive detectors).
FIRST_EVENT_DAY = "2022-03-03"


def _event_lines(directory):
    return [event.to_line() for event in EventLog(directory).load()]


def _assert_converged(directory, reference_run):
    digest, lines = reference_run
    assert archive_digest(directory) == digest
    assert _event_lines(directory) == lines
    events = EventLog(directory).load()
    assert [event.seq for event in events] == list(range(1, len(events) + 1))


class TestKillAndResume:
    def test_mid_ingest_interrupt_resumes_byte_identical(
        self, tmp_path, live_config, reference_run
    ):
        """Fault point 1: the day's build dies before the shard lands.

        Matching the date without an attempt suffix dooms every retry,
        so the cycle fails outright; a fresh fault-free engine resumes
        from the journal and converges.
        """
        directory = str(tmp_path / "ingest")
        seed_archive(directory, live_config)
        plan = FaultPlan(
            1, {"live.ingest_day": FaultSpec(CRASH, 1.0, match="2022-02-24")}
        )
        doomed = make_engine(directory, live_config, faults=plan, retries=1)
        doomed.run(max_cycles=5)
        assert doomed.consecutive_failures > 0
        assert doomed.last_checkpoint().date.isoformat() == "2022-02-23"

        make_engine(directory, live_config).run()
        _assert_converged(directory, reference_run)

    def test_post_events_pre_journal_interrupt_resumes(
        self, tmp_path, live_config, reference_run
    ):
        """Fault point 2: death between the event append and the journal
        checkpoint — the window where events exist that no checkpoint
        covers.  Resume must truncate and deterministically re-emit.
        """
        directory = str(tmp_path / "journal")
        seed_archive(directory, live_config)
        clean = make_engine(directory, live_config)
        # Walk cleanly up to the day before the first event-emitting day.
        while clean.next_date().isoformat() != FIRST_EVENT_DAY:
            assert clean.advance() is not None
        base_cursor = clean.last_checkpoint().event_cursor

        plan = FaultPlan(
            1,
            {"live.journal_write": FaultSpec(IO_ERROR, 1.0,
                                             match="follow.journal")},
        )
        doomed = make_engine(directory, live_config, faults=plan, retries=1)
        with pytest.raises(LiveError, match="journal checkpoint"):
            doomed.step()
        # The torn state chaos must absorb: events durable past the
        # last checkpoint, journal unmoved.
        assert EventLog(directory).cursor() > base_cursor
        journal = FollowJournal(directory)
        assert journal.last().event_cursor == base_cursor

        make_engine(directory, live_config).run()
        _assert_converged(directory, reference_run)

    def test_detector_interrupt_resumes(
        self, tmp_path, live_config, reference_run
    ):
        """Fault point 3: detection dies after the shard landed."""
        directory = str(tmp_path / "detector")
        seed_archive(directory, live_config)
        plan = FaultPlan(
            1, {"live.detector": FaultSpec(IO_ERROR, 1.0,
                                           match=FIRST_EVENT_DAY)}
        )
        doomed = make_engine(directory, live_config, faults=plan, retries=1)
        doomed.run(max_cycles=30)
        assert doomed.consecutive_failures > 0
        # The shard itself landed before detection failed.
        import datetime as dt

        archive = doomed._open_archive()
        assert dt.date.fromisoformat(FIRST_EVENT_DAY) in archive.manifest.days

        make_engine(directory, live_config).run()
        _assert_converged(directory, reference_run)

    def test_corrupted_journal_write_self_heals(
        self, tmp_path, live_config, reference_run
    ):
        """A bit-flipped journal write is caught by read-back verify and
        retried — the run completes without any resume at all."""
        directory = str(tmp_path / "corrupt")
        seed_archive(directory, live_config)
        plan = FaultPlan(
            7,
            {"live.journal_write.bytes": FaultSpec(CORRUPT, 1.0,
                                                   max_injections=2)},
        )
        engine = make_engine(directory, live_config, faults=plan)
        engine.run()
        assert plan.injected("live.journal_write.bytes") == 2
        _assert_converged(directory, reference_run)


class TestDegradationLadder:
    def test_ladder_climbs_and_recovers(self, tmp_path, live_config):
        directory = str(tmp_path / "ladder")
        seed_archive(directory, live_config)
        plan = FaultPlan(1, {"live.ingest_day": FaultSpec(CRASH, 1.0)})
        engine = make_engine(
            directory, live_config, faults=plan, retries=0, stall_after=3
        )
        assert engine.state == FOLLOWING

        states, lags = [], []
        for _ in range(4):
            assert engine.advance() is None
            states.append(engine.state)
            lags.append(engine.ingest_lag_days)
        assert states == [LAGGING, LAGGING, STALLED, STALLED]
        assert lags == [1, 2, 3, 4]

        # Healing the fault recovers the ladder on the next cycle.
        engine.faults = None
        engine._builder = None  # builder holds the old plan
        assert engine.advance() is not None
        assert engine.state == FOLLOWING
        assert engine.ingest_lag_days == 0

    def test_failures_never_escape_advance(self, tmp_path, live_config):
        directory = str(tmp_path / "contained")
        seed_archive(directory, live_config)
        plan = FaultPlan(1, {"live.ingest_day": FaultSpec(CRASH, 1.0)})
        engine = make_engine(directory, live_config, faults=plan, retries=0)
        for _ in range(5):
            assert engine.advance() is None  # never raises


@pytest.mark.chaos
class TestSigkill:
    def test_sigkill_mid_follow_resumes_byte_identical(
        self, tmp_path, live_config, reference_run
    ):
        """A real SIGKILL at an arbitrary point of the follow loop.

        The driver subprocess follows with a small per-cycle interval;
        the parent kills it cold partway through the window, then
        resumes in-process and must converge on the reference bytes.
        """
        directory = str(tmp_path / "sigkill")
        seed_archive(directory, live_config)
        driver = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {repr(os.path.join(os.getcwd(), "src"))})
            sys.path.insert(0, {repr(os.getcwd())})
            from repro.scenario import ScenarioSpec
            from tests.live.conftest import LIVE_SCALE, make_engine

            config = (
                ScenarioSpec.resolve("baseline")
                .with_config(scale=LIVE_SCALE, with_pki=False)
                .compile()
            )
            engine = make_engine(
                {directory!r}, config, interval_seconds=0.05
            )
            print("READY", flush=True)
            engine.run()
            """
        )
        process = subprocess.Popen(
            [sys.executable, "-c", driver],
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert process.stdout.readline().strip() == "READY"
            time.sleep(0.4)  # let a few cycles land
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL

        resumed = make_engine(directory, live_config)
        resumed.run()
        assert resumed.done
        _assert_converged(directory, reference_run)
