"""Tests for repro.live.detect: seed-pure day-over-day change detectors."""

from types import SimpleNamespace

from repro.live import (
    CompositionStepDetector,
    IssuanceSpikeDetector,
    ProviderExitDetector,
    SanctionsMigrationDetector,
    default_detectors,
    run_detectors,
)


def summary(
    ns=(60, 20, 20),
    hosting=(50, 25, 25),
    tld=(70, 15, 15),
    sanctioned=(10, 5, 5),
    asn_counts=None,
    listed_count=20,
    measured_count=100,
):
    """A synthetic DaySummary carrying only what detectors read."""
    return SimpleNamespace(
        ns=ns,
        hosting=hosting,
        tld=tld,
        sanctioned=sanctioned,
        asn_counts=asn_counts or {},
        listed_count=listed_count,
        measured_count=measured_count,
    )


class TestProviderExit:
    def test_exit_detected(self):
        before = summary(asn_counts={13335: 40, 197695: 30})
        after = summary(asn_counts={13335: 5, 197695: 31})
        findings = ProviderExitDetector(min_count=8).detect(before, after)
        assert findings == [
            ("provider-exit", {"asn": 13335, "before": 40, "after": 5})
        ]

    def test_small_providers_ignored(self):
        before = summary(asn_counts={64512: 3})
        after = summary(asn_counts={})
        assert ProviderExitDetector(min_count=8).detect(before, after) == []

    def test_stable_provider_quiet(self):
        counts = {13335: 40}
        assert ProviderExitDetector().detect(
            summary(asn_counts=counts), summary(asn_counts=dict(counts))
        ) == []


class TestCompositionStep:
    def test_step_detected_per_axis(self):
        before = summary(ns=(50, 25, 25), hosting=(50, 25, 25))
        after = summary(ns=(60, 20, 20), hosting=(50, 25, 25))
        findings = CompositionStepDetector(threshold=0.05).detect(before, after)
        assert len(findings) == 1
        kind, payload = findings[0]
        assert kind == "composition-step"
        assert payload["axis"] == "ns"
        assert payload["delta"] == 0.1

    def test_drift_below_threshold_quiet(self):
        before = summary(ns=(50, 25, 25))
        after = summary(ns=(51, 24, 25))
        assert CompositionStepDetector(threshold=0.05).detect(
            before, after
        ) == []


class TestIssuanceSpike:
    def test_spike_detected(self):
        findings = IssuanceSpikeDetector(
            spike_fraction=0.1, min_jump=5
        ).detect(summary(tld=(50, 25, 25)), summary(tld=(60, 15, 25)))
        assert findings == [
            ("ru-ca-issuance-spike", {"before": 50, "after": 60, "jump": 10})
        ]

    def test_jump_below_floor_quiet(self):
        detector = IssuanceSpikeDetector(spike_fraction=0.1, min_jump=5)
        assert detector.detect(
            summary(tld=(50, 25, 25)), summary(tld=(53, 22, 25))
        ) == []


class TestSanctionsMigration:
    def test_burst_detected(self):
        findings = SanctionsMigrationDetector(
            min_burst=3, burst_fraction=0.02
        ).detect(
            summary(sanctioned=(10, 5, 5), listed_count=50),
            summary(sanctioned=(15, 2, 3), listed_count=50),
        )
        assert findings == [(
            "sanctions-migration-burst",
            {"before": 10, "after": 15, "burst": 5, "listed": 50},
        )]

    def test_shrinking_quiet(self):
        assert SanctionsMigrationDetector().detect(
            summary(sanctioned=(10, 5, 5)), summary(sanctioned=(8, 7, 5))
        ) == []


class TestRunDetectors:
    def test_first_day_yields_nothing(self):
        assert run_detectors(default_detectors(), None, summary()) == []
        assert run_detectors(default_detectors(), summary(), None) == []

    def test_order_is_detector_then_sorted(self):
        before = summary(
            ns=(40, 30, 30), asn_counts={2: 20, 1: 20}, tld=(40, 30, 30)
        )
        after = summary(
            ns=(60, 20, 20), asn_counts={}, tld=(60, 20, 20)
        )
        detectors = [
            ProviderExitDetector(min_count=8),
            CompositionStepDetector(threshold=0.05),
        ]
        kinds_and_keys = [
            (kind, payload.get("asn"))
            for kind, payload in run_detectors(detectors, before, after)
        ]
        # Provider exits first (ASNs in sorted order), then the step.
        assert kinds_and_keys == [
            ("provider-exit", 1),
            ("provider-exit", 2),
            ("composition-step", None),
        ]

    def test_detection_is_pure(self):
        before = summary(ns=(40, 30, 30), asn_counts={1: 20})
        after = summary(ns=(60, 20, 20), asn_counts={})
        detectors = default_detectors()
        first = run_detectors(detectors, before, after)
        second = run_detectors(default_detectors(), before, after)
        assert first == second
