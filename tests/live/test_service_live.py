"""The live feed over HTTP: /v1/events, SSE, healthz ladder, stale mode.

Tier-1 tests serve a previously-followed archive (the session fixture);
the fault-driven stale-mode and torn-frame tests are marked ``faults``.
"""

from __future__ import annotations

import http.client
import json
import shutil

import pytest

from repro.client import QueryClient
from repro.experiments import ExperimentContext
from repro.faults import CRASH, IO_ERROR, FaultPlan, FaultSpec
from repro.live import GAP_EVENT, EventLog, FollowOptions, SseParser

from tests.service.conftest import ServiceThread

from .conftest import SEED_DAY, sensitive_detectors

CADENCE = 90


def live_context(live_config, archive, faults=None) -> ExperimentContext:
    return ExperimentContext(
        config=live_config, cadence_days=CADENCE, archive=archive,
        faults=faults,
    )


def client_for(service: ServiceThread, **kwargs) -> QueryClient:
    return QueryClient(f"127.0.0.1:{service.port}", timeout=30.0, **kwargs)


class TestEventsEndpoint:
    def test_paging(self, followed_archive, live_config):
        total = EventLog(followed_archive).cursor()
        assert total >= 2
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            status, _, body = svc.get("/v1/events?since=0&limit=1")
            assert status == 200
            page = json.loads(body)
            assert [event["seq"] for event in page["events"]] == [1]
            assert page["more"] is True and page["next"] == 1

            status, _, body = svc.get(f"/v1/events?since={page['next']}")
            rest = json.loads(body)
            assert [event["seq"] for event in rest["events"]] == list(
                range(2, total + 1)
            )
            assert rest["more"] is False
            assert rest["follow"]["done"] is True

    def test_validation(self, followed_archive, live_config):
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            assert svc.get("/v1/events?since=-1")[0] == 400
            assert svc.get("/v1/events?limit=0")[0] == 400
            assert svc.get("/v1/events?since=nope")[0] == 400

    def test_healthz_reports_followed_state(
        self, followed_archive, live_config
    ):
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            payload = json.loads(svc.get("/healthz")[2])
            assert payload["follow"] == "following"
            assert payload["ingest_lag_days"] == 0
            assert payload["follow_detail"]["done"] is True

    def test_metrics_carry_follow_state(self, followed_archive, live_config):
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            payload = json.loads(svc.get("/metrics")[2])
            assert payload["service"]["follow"]["done"] is True


class TestSseStream:
    def test_stream_replays_and_ends_when_done(
        self, followed_archive, live_config
    ):
        total = EventLog(followed_archive).cursor()
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            frames = list(client_for(svc).follow_events())
        assert [frame.seq for frame in frames] == list(range(1, total + 1))
        assert all(frame.event != GAP_EVENT for frame in frames)
        payloads = [frame.json() for frame in frames]
        assert payloads == [
            event.to_dict() for event in EventLog(followed_archive).load()
        ]

    def test_limit_closes_stream(self, followed_archive, live_config):
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            frames = list(client_for(svc).follow_events(limit=2))
        assert [frame.seq for frame in frames] == [1, 2]

    def test_last_event_id_beats_since(self, followed_archive, live_config):
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            connection = http.client.HTTPConnection(
                "127.0.0.1", svc.port, timeout=30
            )
            try:
                connection.request(
                    "GET",
                    "/v1/events/stream?since=0&limit=1",
                    headers={"Last-Event-ID": "2"},
                )
                raw = connection.getresponse()
                assert raw.status == 200
                assert raw.getheader("Content-Type", "").startswith(
                    "text/event-stream"
                )
                parser = SseParser()
                frames = []
                while not frames:
                    chunk = raw.read(256)
                    assert chunk, "stream closed before a frame arrived"
                    frames.extend(parser.feed(chunk))
            finally:
                connection.close()
        # since=0 asked for seq 1; the resume header must win.
        assert frames[0].seq == 3

    def test_reconnect_across_restart_is_gapless(
        self, followed_archive, live_config
    ):
        """Last-Event-ID replay across a *real* server restart."""
        total = EventLog(followed_archive).cursor()
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            first = list(client_for(svc).follow_events(limit=2))
        last_seen = first[-1].seq
        with ServiceThread(live_context(live_config, followed_archive)) as svc:
            rest = list(client_for(svc).follow_events(since=last_seen))
        seqs = [frame.seq for frame in first + rest]
        assert seqs == list(range(1, total + 1))  # gapless, no duplicates

    def test_slow_consumer_gets_explicit_gap(
        self, followed_archive, live_config
    ):
        """A backlog past the bounded buffer drops oldest-first with a
        gap marker; the dropped events stay fetchable via /v1/events."""
        total = EventLog(followed_archive).cursor()
        context = live_context(live_config, followed_archive)
        with ServiceThread(context, sse_buffer=1) as svc:
            frames = list(client_for(svc).follow_events())
            status, _, body = svc.get("/v1/events")
        assert frames[0].event == GAP_EVENT
        gap = frames[0].json()
        assert gap == {
            "dropped": total - 1, "from": 1, "to": total - 1,
        }
        assert [frame.seq for frame in frames] == [total - 1, total]
        # Durability beats the drop: the full log is still a page away.
        assert len(json.loads(body)["events"]) == total


@pytest.mark.faults
class TestTornFrames:
    def test_client_resumes_past_torn_frames(
        self, followed_archive, live_config
    ):
        """Injected live.sse_write faults tear frames mid-write; the
        client reconnects with Last-Event-ID and the assembled feed is
        gapless and duplicate-free."""
        total = EventLog(followed_archive).cursor()
        plan = FaultPlan(
            5,
            {"live.sse_write": FaultSpec(IO_ERROR, 1.0, max_injections=2)},
        )
        context = live_context(live_config, followed_archive, faults=plan)
        with ServiceThread(context) as svc:
            client = client_for(svc)
            frames = [
                frame for frame in client.follow_events()
                if frame.event != GAP_EVENT
            ]
            metrics = json.loads(svc.get("/metrics")[2])
        assert [frame.seq for frame in frames] == list(range(1, total + 1))
        assert client.last_attempts >= 3  # two torn streams, then clean
        counters = metrics["metrics"]["counters"]
        assert counters.get("live_sse_aborted", 0) == 2


@pytest.mark.faults
class TestStaleModeLadder:
    def test_stalled_follow_serves_stale_not_errors(
        self, tmp_path, followed_archive, live_config
    ):
        """Every ingest cycle fails: healthz walks the ladder to
        ``stalled``, queries keep answering 200 with stale markers, and
        there is no 5xx storm."""
        directory = str(tmp_path / "stalling")
        shutil.copytree(followed_archive, directory)
        plan = FaultPlan(3, {"live.ingest_day": FaultSpec(CRASH, 1.0)})
        context = live_context(live_config, directory, faults=plan)
        options = FollowOptions(
            start=SEED_DAY, end="2022-03-26", stall_after=2, retries=0,
            backoff=0.001,
        )
        with ServiceThread(
            context,
            follow=options,
            follow_detectors=sensitive_detectors(),
        ) as svc:
            client = client_for(svc)
            seen_states = set()
            deadline = 30.0
            import time as _time

            stop = _time.monotonic() + deadline
            while _time.monotonic() < stop:
                payload = client.healthz().json()
                seen_states.add(payload["follow"])
                if payload["follow"] == "stalled":
                    break
                _time.sleep(0.05)
            assert "stalled" in seen_states
            assert payload["ingest_lag_days"] >= options.stall_after

            spec = json.dumps(
                {"kind": "records", "date": SEED_DAY, "limit": 3}
            ).encode()
            statuses = []
            stale_seen = 0
            for _ in range(10):
                response = client.request(
                    "POST", "/v1/query", body=spec, idempotent=True
                )
                statuses.append(response.status)
                if response.stale:
                    stale_seen += 1
            assert all(status == 200 for status in statuses)
            assert stale_seen == 10
