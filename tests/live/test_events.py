"""Tests for repro.live.events: the replayable change-event log."""

import os

import pytest

from repro.errors import LiveError
from repro.live import EVENT_LOG_FILENAME, EventLog, LiveEvent


def _event(seq: int, kind: str = "composition-step") -> LiveEvent:
    return LiveEvent(seq, 1710 + seq, kind, {"delta": 0.01, "axis": "ns"})


class TestLiveEvent:
    def test_line_roundtrip(self):
        original = _event(3, "provider-exit")
        parsed = LiveEvent.from_line(original.to_line())
        assert parsed == original
        assert parsed.payload == original.payload

    def test_wire_shape(self):
        doc = _event(2).to_dict()
        assert set(doc) == {"seq", "day", "date", "kind", "payload"}
        assert doc["date"] == _event(2).date.isoformat()

    def test_crc_rejects_tampering(self):
        line = _event(1).to_line()
        tampered = line.replace('"delta":0.01', '"delta":0.02')
        with pytest.raises(LiveError):
            LiveEvent.from_line(tampered)

    def test_sequence_starts_at_one(self):
        with pytest.raises(LiveError):
            LiveEvent(0, 1710, "gap", {})


class TestEventLog:
    def test_missing_file_is_empty(self, tmp_path):
        log = EventLog(str(tmp_path))
        assert log.load() == []
        assert log.cursor() == 0
        assert log.read_since(0) == []

    def test_append_load_roundtrip(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([_event(1), _event(2), _event(3)])
        assert [event.seq for event in log.load()] == [1, 2, 3]
        assert log.cursor() == 3
        assert [event.seq for event in log.read_since(1)] == [2, 3]
        assert [event.seq for event in log.read_since(1, limit=1)] == [2]

    def test_torn_tail_is_dropped(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([_event(1), _event(2)])
        with open(log.path, "a", encoding="utf-8") as handle:
            handle.write(_event(3).to_line()[:20])  # no newline: torn
        assert [event.seq for event in log.load()] == [1, 2]

    def test_gapped_sequence_ends_prefix(self, tmp_path):
        log = EventLog(str(tmp_path))
        with open(log.path, "w", encoding="utf-8") as handle:
            handle.write(_event(1).to_line() + "\n")
            handle.write(_event(3).to_line() + "\n")
        assert [event.seq for event in log.load()] == [1]

    def test_truncate_drops_uncheckpointed_tail(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([_event(1), _event(2), _event(3)])
        assert log.truncate_to(1) == 2
        assert log.cursor() == 1
        assert log.truncate_to(1) == 0  # idempotent

    def test_truncate_rewrites_torn_tail(self, tmp_path):
        """A torn tail must not survive truncation, or a later append
        would land after the garbage and hide everything behind it."""
        log = EventLog(str(tmp_path))
        log.append([_event(1)])
        with open(log.path, "a", encoding="utf-8") as handle:
            handle.write(_event(2).to_line()[:10])
        assert log.truncate_to(1) == 0
        log.append([_event(2)])
        assert [event.seq for event in log.load()] == [1, 2]

    def test_tail_reads_incrementally(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([_event(1)])
        events, offset = log.tail(0)
        assert [event.seq for event in events] == [1]
        assert offset == os.path.getsize(log.path)
        log.append([_event(2)])
        events, offset = log.tail(offset)
        assert [event.seq for event in events] == [2]
        again, same = log.tail(offset)
        assert again == [] and same == offset

    def test_tail_leaves_torn_line_unconsumed(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([_event(1)])
        _, offset = log.tail(0)
        with open(log.path, "ab") as handle:
            handle.write(_event(2).to_line().encode()[:12])
        events, new_offset = log.tail(offset)
        assert events == [] and new_offset == offset

    def test_empty_append_is_noop(self, tmp_path):
        log = EventLog(str(tmp_path))
        log.append([])
        assert not os.path.exists(log.path)
