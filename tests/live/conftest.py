"""Live-mode fixtures: a seeded archive plus a completed follow run.

Everything runs at the service-test scale (1:20000, a few hundred
concurrent domains), where a full daily follow of the three-week test
window takes well under a second.  The detectors use deliberately
sensitive thresholds so the tiny world still emits a handful of events
— the stock thresholds are calibrated for production scales.
"""

from __future__ import annotations

import pytest

from repro.archive import ArchiveBuilder, archive_digest
from repro.live import (
    CompositionStepDetector,
    EventLog,
    FollowEngine,
    FollowOptions,
    IssuanceSpikeDetector,
    ProviderExitDetector,
    SanctionsMigrationDetector,
)
from repro.scenario import ScenarioSpec

LIVE_SCALE = 20000.0

#: The day seeded before following starts (the first delta baseline).
SEED_DAY = "2022-02-20"
#: The follow window: daily across the invasion.
FOLLOW_START = "2022-02-21"
FOLLOW_END = "2022-03-10"


def sensitive_detectors():
    """Thresholds low enough for the 1:20000 world to emit events."""
    return [
        ProviderExitDetector(min_count=2, exit_fraction=0.5),
        CompositionStepDetector(threshold=0.002),
        IssuanceSpikeDetector(spike_fraction=0.01, min_jump=1),
        SanctionsMigrationDetector(min_burst=1, burst_fraction=0.0),
    ]


def seed_archive(directory: str, config) -> None:
    """Build the pre-follow archive: just the seed day."""
    ArchiveBuilder(str(directory), config).build(SEED_DAY, SEED_DAY, 1)


def make_engine(
    directory: str, config, faults=None, metrics=None, **option_overrides
) -> FollowEngine:
    """A follow engine over the standard test window, already resumed."""
    options = FollowOptions(
        start=option_overrides.pop("start", FOLLOW_START),
        end=option_overrides.pop("end", FOLLOW_END),
        backoff=option_overrides.pop("backoff", 0.001),
        **option_overrides,
    )
    engine = FollowEngine(
        str(directory),
        config,
        options,
        detectors=sensitive_detectors(),
        faults=faults,
        metrics=metrics,
    )
    engine.resume()
    return engine


@pytest.fixture(scope="session")
def live_config():
    return (
        ScenarioSpec.resolve("baseline")
        .with_config(scale=LIVE_SCALE, with_pki=False)
        .compile()
    )


@pytest.fixture(scope="session")
def followed_archive(tmp_path_factory, live_config):
    """An archive followed to the end of the window, uninterrupted.

    Holds the day shards, ``events.log``, ``follow.journal``, and a
    ``follow.status.json`` reporting ``done`` — the durable state every
    serving/replay test reads.  Treat as read-only.
    """
    directory = str(tmp_path_factory.mktemp("live") / "followed")
    seed_archive(directory, live_config)
    engine = make_engine(directory, live_config)
    assert engine.run() == engine_cycles()
    assert engine.done
    return directory


def engine_cycles() -> int:
    """Days in the standard follow window (daily cadence)."""
    import datetime as dt

    start = dt.date.fromisoformat(FOLLOW_START)
    end = dt.date.fromisoformat(FOLLOW_END)
    return (end - start).days + 1


@pytest.fixture(scope="session")
def reference_run(followed_archive):
    """(archive digest, event-log lines) of the uninterrupted run.

    Every interrupted/chaos variant must converge to exactly these.
    """
    digest = archive_digest(followed_archive)
    lines = [event.to_line() for event in EventLog(followed_archive).load()]
    assert lines, "the reference window should emit at least one event"
    return digest, lines
