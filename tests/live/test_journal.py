"""Tests for repro.live.journal: CRC-checked crash-safe checkpoints."""

import pytest

from repro.errors import LiveError
from repro.live import Checkpoint, FollowJournal, JOURNAL_FILENAME


def _checkpoint(day: int = 1710, cursor: int = 0) -> Checkpoint:
    return Checkpoint(day, "a" * 64, cursor)


class TestCheckpoint:
    def test_line_roundtrip(self):
        original = _checkpoint(1712, 5)
        parsed = Checkpoint.from_line(original.to_line())
        assert parsed == original
        assert parsed.date == original.date

    def test_crc_rejects_tampering(self):
        line = _checkpoint().to_line()
        tampered = line.replace("aaaa", "aaab", 1)
        with pytest.raises(LiveError):
            Checkpoint.from_line(tampered)

    def test_garbage_rejected(self):
        with pytest.raises(LiveError):
            Checkpoint.from_line("not a journal line at all")

    def test_negative_cursor_rejected(self):
        with pytest.raises(LiveError):
            Checkpoint(1710, "d" * 64, -1)


class TestFollowJournal:
    def test_empty_directory_reads_empty(self, tmp_path):
        journal = FollowJournal(str(tmp_path))
        assert journal.load() == []
        assert journal.last() is None

    def test_append_then_reload(self, tmp_path):
        journal = FollowJournal(str(tmp_path))
        journal.append(_checkpoint(1710, 0))
        journal.append(_checkpoint(1711, 2))
        fresh = FollowJournal(str(tmp_path))
        records = fresh.load()
        assert [record.day for record in records] == [1710, 1711]
        assert fresh.last() == _checkpoint(1711, 2)

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = FollowJournal(str(tmp_path))
        journal.append(_checkpoint(1710, 1))
        path = tmp_path / JOURNAL_FILENAME
        with open(path, "a", encoding="ascii") as handle:
            handle.write("v1 1711 deadbeef")  # no cursor, no CRC: torn
        fresh = FollowJournal(str(tmp_path))
        assert fresh.last() == _checkpoint(1710, 1)

    def test_damaged_line_ends_readable_prefix(self, tmp_path):
        journal = FollowJournal(str(tmp_path))
        journal.append(_checkpoint(1710, 1))
        journal.append(_checkpoint(1711, 2))
        path = tmp_path / JOURNAL_FILENAME
        lines = path.read_text(encoding="ascii").splitlines()
        lines[1] = lines[1].replace("aaaa", "bbbb", 1)
        lines.append(_checkpoint(1712, 3).to_line())
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        # Damage in the middle hides everything after it too: the file
        # is append-only, so later records cannot be trusted either.
        assert FollowJournal(str(tmp_path)).last() == _checkpoint(1710, 1)

    def test_day_regression_raises(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        path.write_text(
            _checkpoint(1712, 1).to_line() + "\n"
            + _checkpoint(1710, 1).to_line() + "\n",
            encoding="ascii",
        )
        with pytest.raises(LiveError, match="not increasing"):
            FollowJournal(str(tmp_path)).load()

    def test_cursor_regression_raises(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        path.write_text(
            _checkpoint(1710, 5).to_line() + "\n"
            + _checkpoint(1711, 2).to_line() + "\n",
            encoding="ascii",
        )
        with pytest.raises(LiveError, match="backwards"):
            FollowJournal(str(tmp_path)).load()

    def test_append_must_advance(self, tmp_path):
        journal = FollowJournal(str(tmp_path))
        journal.append(_checkpoint(1711, 2))
        with pytest.raises(LiveError):
            journal.append(_checkpoint(1711, 3))
        with pytest.raises(LiveError):
            journal.append(_checkpoint(1712, 1))
