"""Tests for repro.live.sse: framing, incremental parsing, tear safety."""

from repro.live import (
    GAP_EVENT,
    LiveEvent,
    SseParser,
    encode_comment,
    encode_event_frame,
    encode_gap_frame,
)


def _event(seq: int = 1) -> LiveEvent:
    return LiveEvent(seq, 1710 + seq, "composition-step", {"axis": "ns"})


class TestEncoding:
    def test_event_frame_layout(self):
        frame = encode_event_frame(_event(7))
        lines = frame.decode().split("\n")
        assert lines[0] == "id: 7"
        assert lines[1] == "event: composition-step"
        assert lines[2].startswith("data: {")
        assert lines[3] == "" and lines[4] == ""  # blank-line terminator

    def test_gap_frame_advances_id_past_drop(self):
        frame = encode_gap_frame(3, 9)
        parsed = SseParser().feed(frame)
        assert len(parsed) == 1
        gap = parsed[0]
        assert gap.event == GAP_EVENT
        assert gap.seq == 9  # resume lands *after* the dropped range
        assert gap.json() == {"dropped": 7, "from": 3, "to": 9}

    def test_comment_round_trips_to_nothing(self):
        assert SseParser().feed(encode_comment("keepalive")) == []


class TestParser:
    def test_roundtrip(self):
        event = _event(4)
        frames = SseParser().feed(encode_event_frame(event))
        assert len(frames) == 1
        assert frames[0].seq == 4
        assert frames[0].event == event.kind
        assert frames[0].json() == event.to_dict()

    def test_arbitrary_chunk_boundaries(self):
        wire = (
            encode_event_frame(_event(1))
            + encode_comment("keepalive")
            + encode_gap_frame(2, 3)
            + encode_event_frame(_event(4))
        )
        for size in (1, 2, 3, 7, len(wire)):
            parser = SseParser()
            frames = []
            for start in range(0, len(wire), size):
                frames.extend(parser.feed(wire[start:start + size]))
            assert [frame.seq for frame in frames] == [1, 3, 4]
            assert not parser.pending

    def test_partial_frame_never_yields(self):
        parser = SseParser()
        frame = encode_event_frame(_event(2))
        assert parser.feed(frame[:-1]) == []  # missing final newline
        assert parser.pending
        assert [f.seq for f in parser.feed(frame[-1:])] == [2]
        assert not parser.pending

    def test_pending_flags_mid_frame_tear(self):
        """The client's reconnect decision hinges on this bit: a tear
        mid-frame must read as pending, a frame-boundary close as not."""
        parser = SseParser()
        frame = encode_event_frame(_event(3))
        parser.feed(frame[: len(frame) // 2])
        assert parser.pending
        parser = SseParser()
        parser.feed(frame)
        assert not parser.pending

    def test_crlf_lines_tolerated(self):
        wire = b"id: 5\r\nevent: gap\r\ndata: {}\r\n\r\n"
        frames = SseParser().feed(wire)
        assert frames[0].seq == 5
        assert frames[0].event == "gap"

    def test_multi_data_lines_join(self):
        frames = SseParser().feed(b"data: a\ndata: b\n\n")
        assert frames[0].data == "a\nb"
