"""Golden-pinned tests for repro.live.report and ``repro report``.

The stub-archive goldens pin the rendered bytes exactly; the
real-archive tests pin stability (same archive → identical output)
without re-pinning detector payloads that other suites already cover.
"""

from types import SimpleNamespace

import datetime as dt

import pytest

from repro.cli import main as cli_main
from repro.errors import LiveError
from repro.live import EventLog, LiveEvent, compile_report, render_report
from repro.timeline import day_index

from .conftest import FOLLOW_END, FOLLOW_START


def _summary(ns, hosting, tld, sanctioned, measured, listed):
    return SimpleNamespace(
        ns=ns, hosting=hosting, tld=tld, sanctioned=sanctioned,
        measured_count=measured, listed_count=listed,
    )


class StubArchive:
    """Just enough archive for compile_report: days + summaries."""

    def __init__(self, summaries):
        self._summaries = {
            dt.date.fromisoformat(date): summary
            for date, summary in summaries.items()
        }
        self.manifest = SimpleNamespace(days=set(self._summaries))

    def load_summary(self, date):
        return self._summaries[date]


@pytest.fixture()
def stub_window(tmp_path):
    archive = StubArchive({
        "2022-02-24": _summary(
            ns=(50, 25, 25), hosting=(40, 30, 30), tld=(80, 10, 10),
            sanctioned=(10, 10, 0), measured=100, listed=40,
        ),
        "2022-03-04": _summary(
            ns=(60, 20, 20), hosting=(40, 30, 30), tld=(90, 5, 5),
            sanctioned=(12, 8, 0), measured=110, listed=40,
        ),
    })
    log = EventLog(str(tmp_path))
    log.append([
        LiveEvent(
            1, day_index("2022-03-04"), "composition-step",
            {"axis": "ns", "delta": 0.1, "before": 0.5, "after": 0.6},
        ),
        LiveEvent(
            2, day_index("2022-03-04"), "provider-exit",
            {"asn": 13335, "before": 40, "after": 5},
        ),
    ])
    return archive, log


GOLDEN_MD = """\
# Live follow report: 2022-02-21 to 2022-03-04

Window phases: pre-conflict to pre-sanctions.

## Coverage

| metric | value |
|---|---|
| archived days in window | 2 |
| first archived day | 2022-02-24 |
| last archived day | 2022-03-04 |
| domains measured (last day) | 110 |
| sanction-list size (last day) | 40 |
| change events | 2 |

## Fully-Russian composition shift

Fraction of domains fully dependent on Russian infrastructure, per axis, first vs last archived day.

| axis | 2022-02-24 | 2022-03-04 | delta |
|---|---|---|---|
| ns | 0.5000 | 0.6000 | +0.1000 |
| hosting | 0.4000 | 0.4000 | +0.0000 |
| tld | 0.8000 | 0.9000 | +0.1000 |
| sanctioned | 0.5000 | 0.6000 | +0.1000 |

## Events by kind

| kind | count |
|---|---|
| composition-step | 1 |
| provider-exit | 1 |

## Event log

| seq | date | kind | payload |
|---|---|---|---|
| 1 | 2022-03-04 | composition-step | `{"after":0.6,"axis":"ns","before":0.5,"delta":0.1}` |
| 2 | 2022-03-04 | provider-exit | `{"after":5,"asn":13335,"before":40}` |

"""

GOLDEN_CSV = (
    "seq,date,kind,payload\n"
    '1,2022-03-04,composition-step,'
    '"{""after"":0.6,""axis"":""ns"",""before"":0.5,""delta"":0.1}"\n'
    '2,2022-03-04,provider-exit,'
    '"{""after"":5,""asn"":13335,""before"":40}"\n'
)


class TestGoldenRender:
    def test_markdown_golden(self, stub_window):
        archive, log = stub_window
        report = compile_report(archive, log, "2022-02-21", "2022-03-04")
        assert render_report(report, "md") == GOLDEN_MD

    def test_csv_golden(self, stub_window):
        archive, log = stub_window
        report = compile_report(archive, log, "2022-02-21", "2022-03-04")
        assert render_report(report, "csv") == GOLDEN_CSV

    def test_window_filters_events_and_days(self, stub_window):
        archive, log = stub_window
        report = compile_report(archive, log, "2022-02-21", "2022-02-28")
        assert [date.isoformat() for date in report.dates] == ["2022-02-24"]
        assert report.events == []
        text = render_report(report, "md")
        assert "No change events detected in this window." in text
        assert "## Fully-Russian composition shift" in text

    def test_empty_window_renders_na(self, tmp_path):
        report = compile_report(
            StubArchive({}), EventLog(str(tmp_path)), "2022-01-01",
            "2022-01-02",
        )
        text = render_report(report, "md")
        assert "| archived days in window | 0 |" in text
        assert "| first archived day | n/a |" in text
        assert "## Fully-Russian composition shift" not in text

    def test_inverted_window_rejected(self, tmp_path):
        with pytest.raises(LiveError, match="empty report window"):
            compile_report(
                StubArchive({}), EventLog(str(tmp_path)), "2022-03-02",
                "2022-03-01",
            )

    def test_unknown_format_rejected(self, stub_window):
        archive, log = stub_window
        report = compile_report(archive, log, "2022-02-21", "2022-03-04")
        with pytest.raises(LiveError, match="unknown report format"):
            render_report(report, "json")


class TestRealArchive:
    def test_report_is_byte_stable(self, followed_archive):
        from repro.archive import MeasurementArchive

        def render():
            archive = MeasurementArchive(followed_archive)
            report = compile_report(
                archive, EventLog(followed_archive), FOLLOW_START, FOLLOW_END
            )
            return render_report(report, "md")

        first, second = render(), render()
        assert first == second
        total = EventLog(followed_archive).cursor()
        assert f"| change events | {total} |" in first

    def test_csv_row_per_event(self, followed_archive):
        from repro.archive import MeasurementArchive

        archive = MeasurementArchive(followed_archive)
        report = compile_report(
            archive, EventLog(followed_archive), FOLLOW_START, FOLLOW_END
        )
        text = render_report(report, "csv")
        lines = text.strip().split("\n")
        assert lines[0] == "seq,date,kind,payload"
        assert len(lines) == len(report.events) + 1


class TestCli:
    def test_cli_matches_api(self, tmp_path, followed_archive):
        from repro.archive import MeasurementArchive

        out = tmp_path / "report.csv"
        code = cli_main([
            "report", "--from", FOLLOW_START, "--to", FOLLOW_END,
            "--archive", followed_archive, "--format", "csv",
            "--output", str(out),
        ])
        assert code == 0
        report = compile_report(
            MeasurementArchive(followed_archive),
            EventLog(followed_archive), FOLLOW_START, FOLLOW_END,
        )
        assert out.read_text() == render_report(report, "csv")

    def test_cli_markdown_to_stdout(self, capsys, followed_archive):
        code = cli_main([
            "report", "--from", FOLLOW_START, "--to", FOLLOW_END,
            "--archive", followed_archive,
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "# Live follow report:" in captured.out

    def test_cli_requires_both_bounds(self, followed_archive):
        assert cli_main([
            "report", "--from", FOLLOW_START, "--archive", followed_archive,
        ]) == 2

    def test_cli_requires_archive(self):
        assert cli_main([
            "report", "--from", FOLLOW_START, "--to", FOLLOW_END,
        ]) == 2
