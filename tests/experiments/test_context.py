"""Tests for repro.experiments.context."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.context import FIG4_PROVIDERS, ExperimentContext
from repro.sim import ConflictScenarioConfig, build_world


class TestConstruction:
    def test_bad_cadence_rejected(self, tiny_world):
        with pytest.raises(AnalysisError):
            ExperimentContext(world=tiny_world, cadence_days=0)

    def test_wraps_existing_world(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=30)
        assert context.world is tiny_world


class TestCaching:
    def test_full_sweep_cached(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        first = context.api.full_sweep()
        second = context.api.full_sweep()
        assert first is second

    def test_recent_series_cached(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        assert context.recent_asn_shares() is context.recent_asn_shares()
        assert (
            context.recent_sanctioned_composition()
            is context.recent_sanctioned_composition()
        )

    def test_all_series_same_length(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        sweep = context.api.full_sweep()
        lengths = {
            len(sweep.ns_composition),
            len(sweep.hosting_composition),
            len(sweep.tld_composition),
            len(sweep.tld_shares),
        }
        assert len(lengths) == 1


class TestDeprecatedShims:
    """full_sweep()/_run_recent() survive as warning shims over the facade."""

    def test_full_sweep_warns_and_delegates(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        with pytest.warns(DeprecationWarning, match="full_sweep"):
            sweep = context.full_sweep()
        assert sweep is context.api.full_sweep()

    def test_run_recent_warns_and_delegates(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        with pytest.warns(DeprecationWarning, match="_run_recent"):
            recent = context._run_recent()
        assert recent is context.api.recent_window()


class TestFig4Asns:
    def test_legend_matches_paper_providers(self, tiny_world):
        context = ExperimentContext(world=tiny_world, cadence_days=60)
        asns = context.fig4_asns()
        assert len(asns) == len(FIG4_PROVIDERS)
        assert 16509 in asns and 47846 in asns and 13335 in asns


class TestPkiGuards:
    def test_monitor_requires_pki(self):
        world = build_world(
            ConflictScenarioConfig(scale=5000.0, with_pki=False)
        )
        context = ExperimentContext(world=world, cadence_days=60)
        with pytest.raises(AnalysisError):
            context.monitor()
        with pytest.raises(AnalysisError):
            context.scans()
