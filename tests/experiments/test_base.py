"""Tests for repro.experiments.base."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.base import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult("figX", "Test artefact", "Figure X, Section Y")
    r.add_series("date", ["2022-01-01", "2022-01-02"])
    r.add_series("value", [1, 2])
    r.add_row(metric="m", value=3)
    r.measured = {"alpha": 1.0}
    r.paper = {"alpha": 1.1}
    return r


class TestResult:
    def test_series_length_guard(self, result):
        with pytest.raises(AnalysisError):
            result.add_series("bad", [1, 2, 3])

    def test_comparison_rows(self, result):
        rows = result.comparison_rows()
        assert rows == [{"metric": "alpha", "measured": 1.0, "paper": 1.1}]

    def test_comparison_handles_missing_paper_value(self, result):
        result.measured["beta"] = 2.0
        rows = {row["metric"]: row for row in result.comparison_rows()}
        assert rows["beta"]["paper"] == "—"

    def test_render_contains_everything(self, result):
        result.sections.append("custom section text")
        text = result.render()
        assert "figX" in text
        assert "Figure X" in text
        assert "alpha" in text
        assert "custom section text" in text


class TestCsvExport:
    def test_writes_all_three_files(self, result, tmp_path):
        written = result.write_csv(tmp_path)
        names = {path.name for path in written}
        assert names == {
            "figX_series.csv",
            "figX_rows.csv",
            "figX_comparison.csv",
        }

    def test_series_csv_shape(self, result, tmp_path):
        result.write_csv(tmp_path)
        lines = (tmp_path / "figX_series.csv").read_text().strip().splitlines()
        assert lines[0] == "date,value"
        assert len(lines) == 3

    def test_comparison_csv_content(self, result, tmp_path):
        result.write_csv(tmp_path)
        text = (tmp_path / "figX_comparison.csv").read_text()
        assert "alpha,1.0,1.1" in text

    def test_empty_result_writes_nothing(self, tmp_path):
        empty = ExperimentResult("e", "Empty", "nowhere")
        assert empty.write_csv(tmp_path) == []

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "dir"
        result.write_csv(target)
        assert target.exists()
