"""Tests for repro.experiments.report."""

import io

from repro.experiments.report import write_markdown_report


class TestReport:
    def test_covers_every_artefact(self, tiny_context):
        text = write_markdown_report(tiny_context)
        for heading in (
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 7", "Figure 8", "Table 1", "Table 2",
            "Russian Trusted Root CA", "Google movement", "headline",
            "market concentration", "General License 25", "dataset summary",
            "per-country hosting shifts",
            "Ablations",
        ):
            assert heading in text, heading

    def test_mentions_scale_and_seed(self, tiny_context):
        text = write_markdown_report(tiny_context)
        assert "1:2500" in text
        assert str(tiny_context.config.seed) in text

    def test_stream_output(self, tiny_context):
        stream = io.StringIO()
        text = write_markdown_report(tiny_context, stream=stream)
        assert stream.getvalue() == text

    def test_markdown_tables_well_formed(self, tiny_context):
        text = write_markdown_report(tiny_context)
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                assert line.count("|") >= 3
