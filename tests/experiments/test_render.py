"""Tests for repro.experiments.render."""

from repro.experiments.render import dot_timeline, fmt_count, fmt_pct, format_table, sparkline


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        widths = {len(line) for line in lines[2:]}
        assert all("  " in line for line in lines[2:])

    def test_non_string_cells(self):
        table = format_table(["n"], [[42], [3.5]])
        assert "42" in table and "3.5" in table


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_length(self):
        assert len(sparkline(range(10))) == 10


class TestDotTimeline:
    def test_dots(self):
        assert dot_timeline([True, False, True]) == "●·●"


class TestNumbers:
    def test_pct(self):
        assert fmt_pct(12.345) == "12.3%"

    def test_count(self):
        assert fmt_count(1234567) == "1,234,567"
