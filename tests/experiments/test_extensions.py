"""Tests for the extension experiments (concentration, GL-25)."""

import pytest

from repro.experiments import EXTENSIONS, run_all, run_experiment


class TestRegistry:
    def test_extension_ids(self):
        assert set(EXTENSIONS) == {"concentration", "gl25", "dataset", "countries"}

    def test_run_all_with_extensions(self, tiny_context):
        results = run_all(tiny_context, include_extensions=True)
        ids = {r.experiment_id for r in results}
        assert {"concentration", "gl25"} <= ids

    def test_run_all_without_extensions(self, tiny_context):
        results = run_all(tiny_context)
        ids = {r.experiment_id for r in results}
        assert "gl25" not in ids


class TestConcentration:
    def test_ca_market_concentrates_further(self, tiny_context):
        result = run_experiment("concentration", tiny_context)
        measured = result.measured
        assert measured["ca_hhi_post_sanctions"] > measured["ca_hhi_pre_conflict"]
        assert measured["ca_hhi_post_sanctions"] > 0.9
        assert measured["ca_leader_post_sanctions"] == "Let's Encrypt"
        assert measured["ca_highly_concentrated"] is True

    def test_hosting_market_stable(self, tiny_context):
        measured = run_experiment("concentration", tiny_context).measured
        assert abs(
            measured["hosting_hhi_end"] - measured["hosting_hhi_start"]
        ) < 0.05
        # Many providers: far from monopoly.
        assert measured["hosting_hhi_start"] < 0.25

    def test_renders(self, tiny_context):
        text = run_experiment("concentration", tiny_context).render()
        assert "HHI" in text or "hhi" in text


class TestGl25:
    def test_no_clear_change(self, tiny_context):
        measured = run_experiment("gl25", tiny_context).measured
        assert measured["clear_change_observed"] is False
        assert measured["max_share_delta_pp"] < 5.0

    def test_rows_cover_continuing_cas(self, tiny_context):
        result = run_experiment("gl25", tiny_context)
        issuers = {row["issuer"] for row in result.rows}
        assert "Let's Encrypt" in issuers


class TestDataset:
    def test_summary_shape(self, tiny_context):
        measured = run_experiment("dataset", tiny_context).measured
        assert measured["study_days"] == 1803
        assert measured["sanctioned_domains"] == 107
        assert measured["ns_asns_fewer_than_apex_asns"] is True

    def test_unique_domains_scale_back_to_paper_magnitude(self, tiny_context):
        measured = run_experiment("dataset", tiny_context).measured
        assert 7_000_000 < measured["unique_domains_scaled_up"] < 18_000_000


class TestCountries:
    def test_flight_to_russia_and_nl(self, tiny_context):
        measured = run_experiment("countries", tiny_context).measured
        assert measured["ru_change_pp"] > 0
        assert measured["nl_change_pp"] > 0
        assert measured["de_change_pp"] < 0
