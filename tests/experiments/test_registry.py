"""Tests for repro.experiments.registry: every experiment runs and renders."""

import pytest

from repro.experiments import EXPERIMENTS, run_all, run_experiment

EXPECTED_IDS = {
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "table1", "table2", "trustedca", "google", "headline",
}


class TestRegistry:
    def test_every_paper_artefact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_unknown_id_raises(self, tiny_context):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_context)


class TestAllExperimentsRun:
    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
    def test_runs_and_renders(self, tiny_context, experiment_id):
        result = run_experiment(experiment_id, tiny_context)
        assert result.experiment_id == experiment_id
        assert result.measured, f"{experiment_id} produced no measurements"
        text = result.render()
        assert experiment_id in text
        assert len(text) > 100

    def test_run_all_covers_registry(self, tiny_context):
        results = run_all(tiny_context)
        assert {r.experiment_id for r in results} == EXPECTED_IDS

    @pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
    def test_paper_comparison_present(self, tiny_context, experiment_id):
        result = run_experiment(experiment_id, tiny_context)
        assert result.paper, f"{experiment_id} lacks paper reference values"
        shared = set(result.measured) & set(result.paper)
        assert shared, f"{experiment_id} has no comparable metrics"
