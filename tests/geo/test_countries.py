"""Tests for repro.geo.countries."""

import pytest

from repro.geo.countries import RU, country_name, is_russian, validate_country


class TestValidation:
    def test_accepts_alpha2(self):
        assert validate_country("NL") == "NL"

    @pytest.mark.parametrize("code", ["ru", "R", "RUS", "R1", ""])
    def test_rejects_malformed(self, code):
        with pytest.raises(ValueError):
            validate_country(code)


class TestHelpers:
    def test_is_russian(self):
        assert is_russian(RU)
        assert not is_russian("US")
        assert not is_russian(None)

    def test_known_name(self):
        assert country_name("SE") == "Sweden"

    def test_unknown_name_falls_back_to_code(self):
        assert country_name("ZZ") == "ZZ"
