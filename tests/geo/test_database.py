"""Tests for repro.geo.database: range DB, bulk lookup, overrides."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeolocationError
from repro.geo.database import GeoDatabase, GeoDatabaseBuilder, GeoRange, with_override
from repro.net.prefix import Prefix


@pytest.fixture
def database():
    return (
        GeoDatabaseBuilder()
        .add_prefix(Prefix.parse("10.0.0.0/16"), "RU")
        .add_prefix(Prefix.parse("10.1.0.0/16"), "US")
        .add_prefix(Prefix.parse("10.3.0.0/16"), "DE")
        .build()
    )


class TestGeoRange:
    def test_inverted_rejected(self):
        with pytest.raises(GeolocationError):
            GeoRange(10, 5, "RU")

    def test_bad_country_rejected(self):
        with pytest.raises(ValueError):
            GeoRange(0, 1, "ru")


class TestLookup:
    def test_hit(self, database):
        assert database.lookup(Prefix.parse("10.0.0.0/16").first + 5) == "RU"

    def test_boundary_inclusive(self, database):
        ru = Prefix.parse("10.0.0.0/16")
        assert database.lookup(ru.first) == "RU"
        assert database.lookup(ru.last) == "RU"

    def test_gap_returns_none(self, database):
        assert database.lookup(Prefix.parse("10.2.0.0/16").first) is None

    def test_before_first_range(self, database):
        assert database.lookup(0) is None

    def test_lookup_many(self, database):
        ru = Prefix.parse("10.0.0.0/16").first
        assert database.lookup_many([ru, 0]) == ["RU", None]

    def test_overlap_rejected(self):
        with pytest.raises(GeolocationError):
            GeoDatabase([GeoRange(0, 10, "RU"), GeoRange(5, 20, "US")])


class TestLookupArray:
    def test_matches_point_lookup(self, database):
        addresses = np.array(
            [
                Prefix.parse("10.0.0.0/16").first,
                Prefix.parse("10.1.0.0/16").first + 7,
                Prefix.parse("10.2.0.0/16").first,  # gap
                Prefix.parse("10.3.0.0/16").last,
                0,
            ],
            dtype=np.int64,
        )
        indices = database.lookup_array(addresses)
        decoded = [database.country_code_for_index(int(i)) for i in indices]
        assert decoded == [database.lookup(int(a)) for a in addresses]

    def test_empty_database(self):
        empty = GeoDatabase([])
        result = empty.lookup_array(np.array([1, 2, 3]))
        assert (result == -1).all()


class TestBuilder:
    def test_merges_adjacent_same_country(self):
        db = (
            GeoDatabaseBuilder()
            .add_range(0, 9, "RU")
            .add_range(10, 19, "RU")
            .build()
        )
        assert len(db) == 1
        assert db.ranges[0].end == 19

    def test_no_merge_across_countries(self):
        db = (
            GeoDatabaseBuilder().add_range(0, 9, "RU").add_range(10, 19, "US").build()
        )
        assert len(db) == 2

    def test_countries_listing(self, database):
        assert database.countries == ["DE", "RU", "US"]


class TestWithOverride:
    def test_override_inside_range(self, database):
        ru = Prefix.parse("10.0.0.0/16")
        patched = with_override(database, ru.first + 10, ru.first + 20, "SE")
        assert patched.lookup(ru.first + 15) == "SE"
        assert patched.lookup(ru.first + 5) == "RU"
        assert patched.lookup(ru.first + 25) == "RU"

    def test_override_whole_range(self, database):
        us = Prefix.parse("10.1.0.0/16")
        patched = with_override(database, us.first, us.last, "RU")
        assert patched.lookup(us.first + 100) == "RU"

    def test_override_gap(self, database):
        gap = Prefix.parse("10.2.0.0/16")
        patched = with_override(database, gap.first, gap.last, "NL")
        assert patched.lookup(gap.first) == "NL"

    def test_inverted_override_rejected(self, database):
        with pytest.raises(GeolocationError):
            with_override(database, 10, 5, "RU")

    def test_adjacent_overrides_remerge(self, database):
        """Two adjacent same-country overrides coalesce into one range."""
        ru = Prefix.parse("10.0.0.0/16")
        patched = with_override(database, ru.first + 10, ru.first + 19, "SE")
        patched = with_override(patched, ru.first + 20, ru.first + 29, "SE")
        se_ranges = [r for r in patched.ranges if r.country == "SE"]
        assert len(se_ranges) == 1
        assert se_ranges[0].start == ru.first + 10
        assert se_ranges[0].end == ru.first + 29
        assert patched.lookup(ru.first + 25) == "SE"
        assert patched.lookup(ru.first + 30) == "RU"

    def test_repeated_overrides_do_not_fragment(self, database):
        """Re-applying the same transfer never grows the database."""
        us = Prefix.parse("10.1.0.0/16")
        patched = database
        sizes = []
        for _ in range(5):
            patched = with_override(patched, us.first, us.last, "NL")
            sizes.append(len(patched))
        assert len(set(sizes)) == 1
        # Same-country merge with a clipped neighbour: overriding back to
        # US re-joins nothing (DE neighbour differs) but stays bounded.
        restored = with_override(patched, us.first, us.last, "US")
        assert len(restored) == len(database)
        for probe in (us.first, us.first + 99, us.last):
            assert restored.lookup(probe) == database.lookup(probe)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=200),
            st.sampled_from(["RU", "US", "DE", "NL"]),
        ),
        max_size=10,
    ),
    st.integers(min_value=0, max_value=1500),
)
def test_lookup_matches_naive(raw, probe):
    """Property: binary-search lookup equals a linear scan."""
    builder = GeoDatabaseBuilder()
    cursor = 0
    ranges = []
    for gap, width, country in raw:
        start = cursor + gap
        end = start + width
        builder.add_range(start, end, country)
        ranges.append((start, end, country))
        cursor = end + 1
    database = builder.build(merge_adjacent=False)
    expected = None
    for start, end, country in ranges:
        if start <= probe <= end:
            expected = country
    assert database.lookup(probe) == expected
