"""Tests for repro.geo.service: date-versioned geolocation with lag."""

import datetime as dt

import pytest

from repro.errors import GeolocationError
from repro.geo.database import GeoDatabaseBuilder
from repro.geo.service import GeoService


def db(country):
    return GeoDatabaseBuilder().add_range(0, 100, country).build()


class TestPublish:
    def test_out_of_order_rejected(self):
        service = GeoService()
        service.publish("2020-01-02", db("RU"))
        with pytest.raises(GeolocationError):
            service.publish("2020-01-01", db("US"))

    def test_empty_service_rejects_queries(self):
        with pytest.raises(GeolocationError):
            GeoService().database_at("2020-01-01")

    def test_negative_lag_rejected(self):
        with pytest.raises(GeolocationError):
            GeoService(lag_days=-1)


class TestContemporaneousLookup:
    def test_picks_latest_effective(self):
        service = GeoService()
        service.publish("2020-01-01", db("RU"))
        service.publish("2020-06-01", db("SE"))
        assert service.lookup("2020-03-01", 50) == "RU"
        assert service.lookup("2020-06-01", 50) == "SE"
        assert service.lookup("2021-01-01", 50) == "SE"

    def test_before_first_snapshot_falls_back(self):
        service = GeoService()
        service.publish("2020-01-01", db("RU"))
        assert service.lookup("2019-01-01", 50) == "RU"

    def test_epoch_dates(self):
        service = GeoService()
        service.publish("2020-01-01", db("RU"))
        service.publish("2020-02-01", db("US"))
        assert service.epoch_dates() == [dt.date(2020, 1, 1), dt.date(2020, 2, 1)]


class TestLag:
    def test_lag_delays_new_snapshot(self):
        service = GeoService(lag_days=14)
        service.publish("2020-01-01", db("RU"))
        service.publish("2020-06-01", db("SE"))
        # On June 5, a 14-day-lagged client still sees the May data.
        assert service.lookup("2020-06-05", 50) == "RU"
        assert service.lookup("2020-06-15", 50) == "SE"

    def test_zero_lag_is_instant(self):
        service = GeoService(lag_days=0)
        service.publish("2020-01-01", db("RU"))
        service.publish("2020-06-01", db("SE"))
        assert service.lookup("2020-06-01", 50) == "SE"
