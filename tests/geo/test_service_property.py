"""Property test: GeoService epoch selection vs a naive reference."""

import datetime as dt

from hypothesis import given, settings, strategies as st

from repro.geo.database import GeoDatabaseBuilder
from repro.geo.service import GeoService

_COUNTRIES = ["RU", "US", "DE", "NL", "SE"]


def _db(country):
    return GeoDatabaseBuilder().add_range(0, 10, country).build()


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),  # publish day offset
            st.sampled_from(_COUNTRIES),
        ),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=-100, max_value=2500),  # query day offset
    st.integers(min_value=0, max_value=30),       # lag
)
def test_database_at_matches_naive(publications, query_offset, lag):
    base = dt.date(2018, 1, 1)
    # Publication days must be strictly increasing.
    days = sorted({offset for offset, _ in publications})
    ordered = [
        (day, country)
        for day, (_, country) in zip(days, publications[: len(days)])
    ]

    service = GeoService(lag_days=lag)
    for day, country in ordered:
        service.publish(base + dt.timedelta(days=day), _db(country))

    query_date = base + dt.timedelta(days=query_offset)
    effective = query_offset - lag
    expected_country = ordered[0][1]  # fallback to earliest
    for day, country in ordered:
        if day <= effective:
            expected_country = country
    assert service.lookup(query_date, 5) == expected_country
