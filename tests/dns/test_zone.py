"""Tests for repro.dns.zone: zone semantics and master-file round trips."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rdata import A, CNAME, NS, SOA, RRType
from repro.dns.rrset import RRset
from repro.dns.zone import Zone
from repro.errors import ZoneError

ORIGIN = DomainName.parse("ru")


@pytest.fixture
def zone():
    z = Zone(ORIGIN, SOA("a.nic.ru", "hostmaster.nic.ru", 1))
    z.add(RRset(DomainName.parse("example.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    z.add(RRset(DomainName.parse("ns1.reg.ru"), RRType.A, [A("10.0.0.1")]))
    z.add(RRset(DomainName.parse("reg.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    return z


class TestBasics:
    def test_soa(self, zone):
        assert zone.soa.serial == 1

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add(RRset(DomainName.parse("example.com"), RRType.A, [A("1.1.1.1")]))

    def test_get_exact(self, zone):
        assert zone.get(DomainName.parse("ns1.reg.ru"), RRType.A) is not None
        assert zone.get(DomainName.parse("missing.ru"), RRType.A) is None

    def test_add_merges(self, zone):
        name = DomainName.parse("ns1.reg.ru")
        zone.add(RRset(name, RRType.A, [A("10.0.0.2")]))
        assert len(zone.get(name, RRType.A)) == 2

    def test_remove_rrset(self, zone):
        name = DomainName.parse("ns1.reg.ru")
        zone.remove(name, RRType.A)
        assert zone.get(name, RRType.A) is None

    def test_cannot_remove_soa(self, zone):
        with pytest.raises(ZoneError):
            zone.remove(ORIGIN, RRType.SOA)

    def test_cname_exclusivity(self, zone):
        name = DomainName.parse("alias.ru")
        zone.add(RRset(name, RRType.CNAME, [CNAME("example.ru")]))
        with pytest.raises(ZoneError):
            zone.add(RRset(name, RRType.A, [A("1.1.1.1")]))

    def test_data_then_cname_rejected(self, zone):
        name = DomainName.parse("host.ru")
        zone.add(RRset(name, RRType.A, [A("1.1.1.1")]))
        with pytest.raises(ZoneError):
            zone.add(RRset(name, RRType.CNAME, [CNAME("example.ru")]))

    def test_bump_serial(self, zone):
        zone.bump_serial()
        assert zone.soa.serial == 2


class TestDelegation:
    def test_delegation_for_name_under_cut(self, zone):
        cut = zone.delegation_for(DomainName.parse("www.example.ru"))
        assert cut is not None
        assert cut.name == DomainName.parse("example.ru")

    def test_delegation_for_cut_itself(self, zone):
        cut = zone.delegation_for(DomainName.parse("example.ru"))
        assert cut is not None

    def test_no_delegation_at_origin(self, zone):
        assert zone.delegation_for(ORIGIN) is None

    def test_apex_ns_not_a_cut(self):
        z = Zone(ORIGIN, SOA("a.nic.ru", "h.nic.ru", 1))
        z.add(RRset(ORIGIN, RRType.NS, [NS("a.nic.ru")]))
        assert z.delegation_for(DomainName.parse("x.ru")) is None

    def test_delegations_listing(self, zone):
        names = zone.names_delegated()
        assert DomainName.parse("example.ru") in names
        assert DomainName.parse("reg.ru") in names

    def test_glue_for(self, zone):
        cut = zone.delegation_for(DomainName.parse("www.reg.ru"))
        glue = zone.glue_for(cut)
        assert len(glue) == 1
        assert glue[0].name == DomainName.parse("ns1.reg.ru")

    def test_glue_skips_out_of_zone_targets(self, zone):
        name = DomainName.parse("foreign.ru")
        zone.add(RRset(name, RRType.NS, [NS("ns.example.com")]))
        cut = zone.delegation_for(DomainName.parse("www.foreign.ru"))
        assert zone.glue_for(cut) == []


class TestTextRoundtrip:
    def test_roundtrip(self, zone):
        text = zone.to_text()
        parsed = Zone.from_text(text)
        assert parsed.origin == zone.origin
        assert sorted(map(str, parsed.node_names())) == sorted(
            map(str, zone.node_names())
        )
        assert parsed.soa == zone.soa

    def test_missing_origin_rejected(self):
        with pytest.raises(ZoneError):
            Zone.from_text("$TTL 300\n")

    def test_missing_soa_rejected(self):
        with pytest.raises(ZoneError):
            Zone.from_text("$ORIGIN ru.\nexample.ru.\t60\tIN\tA\t1.2.3.4\n")

    def test_comments_ignored(self, zone):
        text = zone.to_text() + "; trailing comment\n"
        assert Zone.from_text(text).origin == ORIGIN

    def test_unknown_class_rejected(self, zone):
        text = zone.to_text().replace("\tIN\t", "\tCH\t", 1)
        with pytest.raises(ZoneError):
            Zone.from_text(text)
