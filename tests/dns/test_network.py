"""Tests for repro.dns.network: the simulated switchboard."""

import pytest

from repro.dns.message import Question, Rcode
from repro.dns.name import DomainName
from repro.dns.network import NetworkUnreachable, SimulatedNetwork
from repro.dns.rdata import A, SOA, RRType
from repro.dns.rrset import RRset
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net.ip import parse_ipv4


@pytest.fixture
def network():
    zone = Zone(DomainName.parse("example.ru"), SOA("ns1.example.ru", "h.example.ru", 1))
    zone.add(
        RRset(DomainName.parse("example.ru"), RRType.A, [A("10.0.0.1")])
    )
    server = AuthoritativeServer("test")
    server.attach_zone(zone)
    net = SimulatedNetwork()
    net.attach(parse_ipv4("10.0.0.1"), server)
    return net


QUESTION = Question(DomainName.parse("example.ru"), RRType.A)


class TestRouting:
    def test_query_reaches_server(self, network):
        response = network.query(parse_ipv4("10.0.0.1"), QUESTION)
        assert response.rcode is Rcode.NOERROR

    def test_unbound_address_unreachable(self, network):
        with pytest.raises(NetworkUnreachable):
            network.query(parse_ipv4("10.9.9.9"), QUESTION)

    def test_query_counter(self, network):
        before = network.queries_sent
        network.query(parse_ipv4("10.0.0.1"), QUESTION)
        assert network.queries_sent == before + 1

    def test_detach(self, network):
        network.detach(parse_ipv4("10.0.0.1"))
        with pytest.raises(NetworkUnreachable):
            network.query(parse_ipv4("10.0.0.1"), QUESTION)

    def test_addresses_listing(self, network):
        assert network.addresses() == [parse_ipv4("10.0.0.1")]


class TestOutages:
    def test_down_address_unreachable(self, network):
        network.set_down(parse_ipv4("10.0.0.1"))
        assert network.is_down(parse_ipv4("10.0.0.1"))
        with pytest.raises(NetworkUnreachable):
            network.query(parse_ipv4("10.0.0.1"), QUESTION)

    def test_recovery(self, network):
        address = parse_ipv4("10.0.0.1")
        network.set_down(address)
        network.set_down(address, down=False)
        assert network.query(address, QUESTION).rcode is Rcode.NOERROR

    def test_server_still_bound_while_down(self, network):
        address = parse_ipv4("10.0.0.1")
        network.set_down(address)
        assert network.server_at(address) is not None
