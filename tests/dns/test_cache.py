"""Tests for repro.dns.cache: TTL semantics on the day clock."""

from repro.dns.cache import ResolverCache
from repro.dns.message import Rcode
from repro.dns.name import DomainName
from repro.dns.rdata import A, RRType
from repro.dns.rrset import RRset
from repro.timeline import DayClock

NAME = DomainName.parse("example.ru")


def make_cache():
    clock = DayClock("2022-01-01")
    return clock, ResolverCache(clock)


class TestPositive:
    def test_hit(self):
        _, cache = make_cache()
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        entry = cache.get(NAME, RRType.A)
        assert entry is not None and not entry.is_negative

    def test_expiry_by_clock(self):
        clock, cache = make_cache()
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        clock.tick(2)
        assert cache.get(NAME, RRType.A) is None

    def test_sub_day_ttl_lives_within_day(self):
        clock, cache = make_cache()
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=300))
        assert cache.get(NAME, RRType.A) is not None
        clock.tick(1)
        assert cache.get(NAME, RRType.A) is None


class TestNegative:
    def test_nxdomain_cached(self):
        _, cache = make_cache()
        cache.put_negative(NAME, RRType.A, Rcode.NXDOMAIN)
        entry = cache.get(NAME, RRType.A)
        assert entry.is_negative and entry.rcode is Rcode.NXDOMAIN

    def test_nodata_cached(self):
        _, cache = make_cache()
        cache.put_negative(NAME, RRType.NS, Rcode.NOERROR)
        assert cache.get(NAME, RRType.NS).is_negative


class TestStats:
    def test_hit_miss_accounting(self):
        _, cache = make_cache()
        assert cache.get(NAME, RRType.A) is None
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        cache.get(NAME, RRType.A)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_flush(self):
        _, cache = make_cache()
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        cache.flush()
        assert len(cache) == 0

    def test_flush_resets_counters(self):
        """Regression: counters must not accumulate across measurement days."""
        _, cache = make_cache()
        cache.get(NAME, RRType.A)  # miss
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        cache.get(NAME, RRType.A)  # hit
        closed = cache.flush()
        assert (closed.hits, closed.misses) == (1, 1)
        assert closed.hit_rate == 0.5
        assert (cache.hits, cache.misses) == (0, 0)

    def test_per_day_rates_independent(self):
        """Each day's hit rate reflects that day alone."""
        _, cache = make_cache()
        # Day 1: one miss, three hits -> 75%.
        cache.get(NAME, RRType.A)
        cache.put_positive(RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=86400))
        for _ in range(3):
            cache.get(NAME, RRType.A)
        cache.flush()
        # Day 2: a single miss -> 0%, not dragged up by day 1.
        cache.get(NAME, RRType.A)
        cache.flush()
        rates = [day.hit_rate for day in cache.day_stats]
        assert rates == [0.75, 0.0]

    def test_stats_snapshot_without_flush(self):
        _, cache = make_cache()
        assert cache.stats().total == 0
        cache.get(NAME, RRType.A)
        snap = cache.stats()
        assert (snap.hits, snap.misses) == (0, 1)
        assert cache.misses == 1  # snapshot does not reset
