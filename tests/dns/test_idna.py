"""Tests for repro.dns.idna: punycode (RFC 3492) and IDNA labels."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.idna import (
    decode_label,
    encode_label,
    punycode_decode,
    punycode_encode,
    to_ascii,
    to_unicode,
)
from repro.errors import PunycodeError

# RFC 3492 section 7.1 published test vectors (subset).
RFC3492_VECTORS = [
    # (unicode, punycode)
    ("ليهمابتكلموشعربي؟", "egbpdaj6bu4bxfgehfvwxn"),
    ("他们为什么不说中文", "ihqwcrb4cv8a8dqg056pqjye"),
    ("Pročprostěnemluvíčesky", "Proprostnemluvesky-uyb24dma41a"),
    ("למההםפשוטלאמדבריםעברית", "4dbcagdahymbxekheh6e0a7fei0b"),
    ("почемужеонинеговорятпорусски", "b1abfaaepdrnnbgefbadotcwatmq2g4l"),
    ("PorquénopuedensimplementehablarenEspañol", "PorqunopuedensimplementehablarenEspaol-fmd56a"),
    ("3年B組金八先生", "3B-ww4c5e180e575a65lsy2b"),
    ("安室奈美恵-with-SUPER-MONKEYS", "-with-SUPER-MONKEYS-pc58ag80a8qai00g7n9n"),
    ("MajiでKoiする5秒前", "MajiKoi5-783gue6qz075azm5e"),
    ("パフィーdeルンバ", "de-jg4avhby1noc0d"),
    ("そのスピードで", "d9juau41awczczp"),
    ("-> $1.00 <-", "-> $1.00 <--"),
]


class TestRfc3492Vectors:
    @pytest.mark.parametrize("unicode_text,encoded", RFC3492_VECTORS)
    def test_encode(self, unicode_text, encoded):
        assert punycode_encode(unicode_text) == encoded

    @pytest.mark.parametrize("unicode_text,encoded", RFC3492_VECTORS)
    def test_decode(self, unicode_text, encoded):
        assert punycode_decode(encoded) == unicode_text


class TestRussianFederationTld:
    def test_rf_tld(self):
        assert to_ascii("рф") == "xn--p1ai"
        assert to_unicode("xn--p1ai") == "рф"

    def test_matches_stdlib_idna_codec(self):
        for name in ("рф", "президент.рф", "пример.рф"):
            assert to_ascii(name) == name.encode("idna").decode("ascii")

    def test_case_folding(self):
        assert to_ascii("РФ") == "xn--p1ai"


class TestLabels:
    def test_ascii_label_passthrough_lowercased(self):
        assert encode_label("ExAmPle") == "example"

    def test_empty_label_rejected(self):
        with pytest.raises(PunycodeError):
            encode_label("")

    def test_decode_non_ace_label(self):
        assert decode_label("plain") == "plain"

    def test_overlong_alabel_rejected(self):
        with pytest.raises(PunycodeError):
            encode_label("ж" * 60)


class TestDottedNames:
    def test_mixed_labels(self):
        assert to_ascii("пример.ru") == "xn--e1afmkfd.ru"

    def test_trailing_dot_preserved(self):
        assert to_ascii("пример.рф.") == "xn--e1afmkfd.xn--p1ai."

    def test_empty_string(self):
        assert to_ascii("") == ""

    def test_unicode_roundtrip(self):
        name = "пример.рф"
        assert to_unicode(to_ascii(name)) == name


class TestDecodeErrors:
    def test_non_ascii_input_rejected(self):
        with pytest.raises(PunycodeError):
            punycode_decode("фыва")

    def test_bad_digit_rejected(self):
        with pytest.raises(PunycodeError):
            punycode_decode("abc!")

    def test_truncated_rejected(self):
        valid = punycode_encode("привет")
        with pytest.raises(PunycodeError):
            punycode_decode(valid[:-1] + "99999")


@given(st.text(alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FFF), max_size=30))
def test_punycode_roundtrip(text):
    """Property: decode(encode(x)) == x for arbitrary BMP text."""
    assert punycode_decode(punycode_encode(text)) == text


@given(
    st.text(
        alphabet=st.characters(min_codepoint=0x430, max_codepoint=0x44F),
        min_size=1,
        max_size=12,
    )
)
def test_cyrillic_matches_stdlib_idna(label):
    """Property: our encoder agrees with CPython's idna codec on Cyrillic."""
    ours = encode_label(label)
    stdlib = label.encode("idna").decode("ascii")
    assert ours == stdlib


@given(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x4FF),
        min_size=1,
        max_size=15,
    )
)
def test_label_roundtrip_lowercase(label):
    """Property: lowercase labels survive the A-label round trip."""
    try:
        encoded = encode_label(label)
    except PunycodeError:
        return  # overlong A-label: rejection is acceptable
    assert decode_label(encoded) == label
    assert all(ord(ch) < 0x80 for ch in encoded)
