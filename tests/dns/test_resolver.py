"""Tests for repro.dns.resolver: the iterative walk."""

import pytest

from repro.dns.message import Rcode
from repro.dns.name import ROOT, DomainName
from repro.dns.network import SimulatedNetwork
from repro.dns.rdata import A, CNAME, NS, SOA, RRType
from repro.dns.resolver import IterativeResolver
from repro.dns.rrset import RRset
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.errors import ServfailError
from repro.net.ip import parse_ipv4


def name(text):
    return DomainName.parse(text)


ROOT_IP = parse_ipv4("198.41.0.4")
RU_TLD_IP = parse_ipv4("198.41.1.1")
COM_TLD_IP = parse_ipv4("198.41.1.2")
REGRU_NS_IP = parse_ipv4("20.0.0.10")
CF_NS_IP = parse_ipv4("20.1.0.10")
APEX_IP = parse_ipv4("20.0.128.50")


@pytest.fixture
def internet():
    """Root -> {ru, com}; example.ru on reg.ru NS; glueless cloudflare.com."""
    network = SimulatedNetwork()

    root_zone = Zone(ROOT, SOA("a.root.invalid", "n.invalid", 1))
    root_zone.add(RRset(name("ru"), RRType.NS, [NS("a.nic.ru")]))
    root_zone.add(RRset(name("a.nic.ru"), RRType.A, [A(RU_TLD_IP)]))
    root_zone.add(RRset(name("com"), RRType.NS, [NS("a.gtld.com")]))
    root_zone.add(RRset(name("a.gtld.com"), RRType.A, [A(COM_TLD_IP)]))
    root_server = AuthoritativeServer("root")
    root_server.attach_zone(root_zone)
    network.attach(ROOT_IP, root_server)

    ru_zone = Zone(name("ru"), SOA("a.nic.ru", "h.nic.ru", 1))
    ru_zone.add(RRset(name("reg.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    ru_zone.add(RRset(name("ns1.reg.ru"), RRType.A, [A(REGRU_NS_IP)]))  # glue
    ru_zone.add(RRset(name("example.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    # A glueless delegation to an out-of-TLD name server:
    ru_zone.add(
        RRset(name("foreign.ru"), RRType.NS, [NS("alice.ns.cloudflare.com")])
    )
    ru_server = AuthoritativeServer("tld:ru")
    ru_server.attach_zone(ru_zone)
    network.attach(RU_TLD_IP, ru_server)

    com_zone = Zone(name("com"), SOA("a.gtld.com", "h.gtld.com", 1))
    com_zone.add(
        RRset(name("cloudflare.com"), RRType.NS, [NS("alice.ns.cloudflare.com")])
    )
    com_zone.add(RRset(name("alice.ns.cloudflare.com"), RRType.A, [A(CF_NS_IP)]))
    com_server = AuthoritativeServer("tld:com")
    com_server.attach_zone(com_zone)
    network.attach(COM_TLD_IP, com_server)

    regru_server = AuthoritativeServer("ns:reg.ru")
    infra = Zone(name("reg.ru"), SOA("ns1.reg.ru", "h.reg.ru", 1))
    infra.add(RRset(name("ns1.reg.ru"), RRType.A, [A(REGRU_NS_IP)]))
    regru_server.attach_zone(infra)
    example = Zone(name("example.ru"), SOA("ns1.reg.ru", "h.example.ru", 1))
    example.add(RRset(name("example.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    example.add(RRset(name("example.ru"), RRType.A, [A(APEX_IP)]))
    example.add(RRset(name("www.example.ru"), RRType.CNAME, [CNAME("example.ru")]))
    regru_server.attach_zone(example)
    network.attach(REGRU_NS_IP, regru_server)

    cf_server = AuthoritativeServer("ns:cloudflare")
    cf_infra = Zone(name("cloudflare.com"), SOA("alice.ns.cloudflare.com", "h.cf.com", 1))
    cf_infra.add(RRset(name("alice.ns.cloudflare.com"), RRType.A, [A(CF_NS_IP)]))
    cf_server.attach_zone(cf_infra)
    foreign = Zone(name("foreign.ru"), SOA("alice.ns.cloudflare.com", "h.f.ru", 1))
    foreign.add(
        RRset(name("foreign.ru"), RRType.NS, [NS("alice.ns.cloudflare.com")])
    )
    foreign.add(RRset(name("foreign.ru"), RRType.A, [A("20.1.128.9")]))
    cf_server.attach_zone(foreign)
    network.attach(CF_NS_IP, cf_server)

    return network


@pytest.fixture
def resolver(internet):
    return IterativeResolver(internet, [ROOT_IP])


class TestWalk:
    def test_apex_a(self, resolver):
        result = resolver.resolve(name("example.ru"), RRType.A)
        assert result.ok
        assert result.addresses() == [APEX_IP]

    def test_ns_lookup(self, resolver):
        result = resolver.resolve(name("example.ru"), RRType.NS)
        assert result.ns_targets() == [name("ns1.reg.ru")]

    def test_nxdomain(self, resolver):
        result = resolver.resolve(name("nosuch.example.ru"), RRType.A)
        assert result.rcode is Rcode.NXDOMAIN

    def test_cname_chase(self, resolver):
        result = resolver.resolve(name("www.example.ru"), RRType.A)
        assert result.ok
        assert result.addresses() == [APEX_IP]
        assert result.cname_chain == [name("example.ru")]

    def test_glueless_out_of_bailiwick_ns(self, resolver):
        result = resolver.resolve(name("foreign.ru"), RRType.A)
        assert result.ok
        assert result.addresses() == [parse_ipv4("20.1.128.9")]

    def test_nodata(self, resolver):
        result = resolver.resolve(name("example.ru"), RRType.TXT)
        assert result.rcode is Rcode.NOERROR
        assert result.rrset is None


class TestCacheBehaviour:
    def test_second_query_uses_cache(self, internet, resolver):
        resolver.resolve(name("example.ru"), RRType.A)
        queries_after_first = internet.queries_sent
        result = resolver.resolve(name("example.ru"), RRType.A)
        assert result.ok
        assert internet.queries_sent == queries_after_first

    def test_sibling_skips_root(self, internet, resolver):
        resolver.resolve(name("example.ru"), RRType.A)
        before = internet.queries_sent
        resolver.resolve(name("reg.ru"), RRType.NS)
        # Walk starts from the cached .ru cut, not the root.
        assert internet.queries_sent - before <= 2

    def test_negative_cache(self, internet, resolver):
        resolver.resolve(name("nosuch.example.ru"), RRType.A)
        before = internet.queries_sent
        result = resolver.resolve(name("nosuch.example.ru"), RRType.A)
        assert result.rcode is Rcode.NXDOMAIN
        assert internet.queries_sent == before


class TestFailures:
    def test_all_roots_down(self, internet):
        internet.set_down(ROOT_IP)
        resolver = IterativeResolver(internet, [ROOT_IP])
        with pytest.raises(ServfailError):
            resolver.resolve(name("example.ru"), RRType.A)

    def test_failover_to_second_root(self, internet):
        second_root = parse_ipv4("198.41.0.8")
        internet.attach(second_root, internet.server_at(ROOT_IP))
        internet.set_down(ROOT_IP)
        resolver = IterativeResolver(internet, [ROOT_IP, second_root])
        assert resolver.resolve(name("example.ru"), RRType.A).ok

    def test_authoritative_down(self, internet, resolver):
        internet.set_down(REGRU_NS_IP)
        with pytest.raises(ServfailError):
            resolver.resolve(name("example.ru"), RRType.A)

    def test_no_roots_rejected(self, internet):
        with pytest.raises(Exception):
            IterativeResolver(internet, [])


class TestCnameLoop:
    def test_loop_detected(self, internet, resolver):
        regru = internet.server_at(REGRU_NS_IP)
        zone = regru.zone_for(name("example.ru"))
        zone.add(RRset(name("l1.example.ru"), RRType.CNAME, [CNAME("l2.example.ru")]))
        zone.add(RRset(name("l2.example.ru"), RRType.CNAME, [CNAME("l1.example.ru")]))
        with pytest.raises(ServfailError):
            resolver.resolve(name("l1.example.ru"), RRType.A)
