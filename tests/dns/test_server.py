"""Tests for repro.dns.server: authoritative answer logic."""

import pytest

from repro.dns.message import Question, Rcode
from repro.dns.name import DomainName
from repro.dns.rdata import A, CNAME, NS, SOA, RRType
from repro.dns.rrset import RRset
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.errors import ZoneError


def name(text):
    return DomainName.parse(text)


@pytest.fixture
def server():
    zone = Zone(name("ru"), SOA("a.nic.ru", "h.nic.ru", 1))
    zone.add(RRset(name("ru"), RRType.NS, [NS("a.nic.ru")]))
    zone.add(RRset(name("example.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    zone.add(RRset(name("ns1.reg.ru"), RRType.A, [A("10.0.0.1")]))
    zone.add(RRset(name("reg.ru"), RRType.NS, [NS("ns1.reg.ru")]))
    zone.add(RRset(name("direct.ru"), RRType.A, [A("10.0.0.9")]))
    zone.add(RRset(name("alias.ru"), RRType.CNAME, [CNAME("direct.ru")]))
    srv = AuthoritativeServer("tld:ru")
    srv.attach_zone(zone)
    return srv


class TestAnswers:
    def test_authoritative_answer(self, server):
        response = server.query(Question(name("direct.ru"), RRType.A))
        assert response.rcode is Rcode.NOERROR
        assert response.aa
        assert response.answer_rrset().rdatas[0] == A("10.0.0.9")

    def test_nodata(self, server):
        response = server.query(Question(name("direct.ru"), RRType.NS))
        assert response.rcode is Rcode.NOERROR
        assert response.is_nodata

    def test_nxdomain(self, server):
        response = server.query(Question(name("missing.ru"), RRType.A))
        assert response.rcode is Rcode.NXDOMAIN

    def test_empty_nonterminal_is_noerror(self, server):
        # reg.ru exists via ns1.reg.ru glue below... use an enclosing name:
        zone = server.zones[0]
        zone.add(RRset(name("a.b.ru"), RRType.A, [A("10.1.1.1")]))
        response = server.query(Question(name("b.ru"), RRType.A))
        assert response.rcode is Rcode.NOERROR
        assert not response.answers

    def test_refused_out_of_zone(self, server):
        response = server.query(Question(name("example.com"), RRType.A))
        assert response.rcode is Rcode.REFUSED

    def test_cname_returned_not_chased(self, server):
        response = server.query(Question(name("alias.ru"), RRType.A))
        assert response.rcode is Rcode.NOERROR
        rrset = response.answers[0]
        assert rrset.rtype is RRType.CNAME

    def test_explicit_cname_query(self, server):
        response = server.query(Question(name("alias.ru"), RRType.CNAME))
        assert response.answer_rrset().rtype is RRType.CNAME


class TestReferrals:
    def test_referral_with_glue(self, server):
        response = server.query(Question(name("www.reg.ru"), RRType.A))
        assert response.is_referral
        assert not response.aa
        assert response.authorities[0].name == name("reg.ru")
        assert response.additionals[0].name == name("ns1.reg.ru")

    def test_referral_for_cut_ns_query(self, server):
        response = server.query(Question(name("example.ru"), RRType.NS))
        assert response.is_referral

    def test_apex_ns_is_authoritative(self, server):
        response = server.query(Question(name("ru"), RRType.NS))
        assert response.rcode is Rcode.NOERROR
        assert response.aa
        assert response.answer_rrset() is not None


class TestZoneManagement:
    def test_most_specific_zone_wins(self):
        parent = Zone(name("ru"), SOA("a.nic.ru", "h.nic.ru", 1))
        child = Zone(name("example.ru"), SOA("ns1.reg.ru", "h.reg.ru", 1))
        child.add(RRset(name("example.ru"), RRType.A, [A("10.2.2.2")]))
        server = AuthoritativeServer("both")
        server.attach_zone(parent)
        server.attach_zone(child)
        assert server.zone_for(name("www.example.ru")) is child
        assert server.zone_for(name("other.ru")) is parent

    def test_detach(self, server):
        server.detach_zone(name("ru"))
        response = server.query(Question(name("direct.ru"), RRType.A))
        assert response.rcode is Rcode.REFUSED

    def test_validate_rejects_parent_and_delegated_child(self):
        parent = Zone(name("ru"), SOA("a.nic.ru", "h.nic.ru", 1))
        parent.add(RRset(name("example.ru"), RRType.NS, [NS("ns1.reg.ru")]))
        child = Zone(name("example.ru"), SOA("ns1.reg.ru", "h.reg.ru", 1))
        server = AuthoritativeServer("conflicted")
        server.attach_zone(parent)
        server.attach_zone(child)
        with pytest.raises(ZoneError):
            server.validate()

    def test_validate_accepts_disjoint_zones(self, server):
        other = Zone(name("example.com"), SOA("ns.example.com", "h.example.com", 1))
        server.attach_zone(other)
        server.validate()
