"""Property tests: zone master-file round trips for arbitrary zones."""

from hypothesis import given, settings, strategies as st

from repro.dns.name import DomainName
from repro.dns.rdata import A, NS, SOA, TXT, RRType
from repro.dns.rrset import RRset
from repro.dns.zone import Zone

_LABEL = st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True)
_TTL = st.sampled_from([60, 300, 3600, 86400])


@st.composite
def zones(draw):
    origin = DomainName((draw(_LABEL), "ru"))
    zone = Zone(origin, SOA(f"ns1.{origin}", f"hostmaster.{origin}", draw(st.integers(0, 10**6))))
    used = set()
    for _ in range(draw(st.integers(0, 8))):
        label = draw(_LABEL)
        name = origin.child(label)
        kind = draw(st.sampled_from(["a", "ns", "txt"]))
        key = (name, kind)
        if key in used:
            continue
        used.add(key)
        ttl = draw(_TTL)
        if kind == "a":
            addresses = draw(
                st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=3, unique=True)
            )
            zone.add(RRset(name, RRType.A, [A(a) for a in addresses], ttl))
        elif kind == "ns":
            targets = draw(
                st.lists(_LABEL, min_size=1, max_size=3, unique=True)
            )
            zone.add(
                RRset(name, RRType.NS, [NS(f"{t}.nsfarm.ru") for t in targets], ttl)
            )
        else:
            zone.add(RRset(name, RRType.TXT, [TXT(draw(st.text(
                alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
                max_size=30,
            )))], ttl))
    return zone


@settings(max_examples=50, deadline=None)
@given(zones())
def test_zone_text_roundtrip(zone):
    """Property: from_text(to_text(zone)) reproduces every RRset."""
    parsed = Zone.from_text(zone.to_text())
    assert parsed.origin == zone.origin
    assert parsed.soa == zone.soa
    original = {(str(r.name), r.rtype, r.ttl): set(r.rdatas) for r in zone.rrsets()}
    reparsed = {(str(r.name), r.rtype, r.ttl): set(r.rdatas) for r in parsed.rrsets()}
    assert original == reparsed


@settings(max_examples=50, deadline=None)
@given(zones())
def test_zone_roundtrip_is_stable(zone):
    """Property: a second round trip is byte-identical (canonical form)."""
    once = Zone.from_text(zone.to_text()).to_text()
    twice = Zone.from_text(once).to_text()
    assert once == twice
