"""Tests for repro.dns.rrset."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rdata import A, CNAME, NS, RRType
from repro.dns.rrset import RRset
from repro.errors import ZoneError

NAME = DomainName.parse("example.ru")


class TestConstruction:
    def test_basic(self):
        rrset = RRset(NAME, RRType.A, [A("1.2.3.4"), A("1.2.3.5")], ttl=300)
        assert len(rrset) == 2
        assert rrset.ttl == 300

    def test_empty_rejected(self):
        with pytest.raises(ZoneError):
            RRset(NAME, RRType.A, [])

    def test_type_mismatch_rejected(self):
        with pytest.raises(ZoneError):
            RRset(NAME, RRType.A, [NS("ns1.reg.ru")])

    def test_duplicate_rejected(self):
        with pytest.raises(ZoneError):
            RRset(NAME, RRType.A, [A("1.2.3.4"), A("1.2.3.4")])

    def test_cname_singleton(self):
        with pytest.raises(ZoneError):
            RRset(NAME, RRType.CNAME, [CNAME("a.ru"), CNAME("b.ru")])

    def test_negative_ttl_rejected(self):
        with pytest.raises(ZoneError):
            RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=-1)


class TestBehaviour:
    def test_equality_ignores_rdata_order(self):
        a = RRset(NAME, RRType.A, [A("1.2.3.4"), A("1.2.3.5")])
        b = RRset(NAME, RRType.A, [A("1.2.3.5"), A("1.2.3.4")])
        assert a == b

    def test_merged_with(self):
        base = RRset(NAME, RRType.A, [A("1.2.3.4")])
        merged = base.merged_with([A("1.2.3.5")])
        assert len(merged) == 2
        assert len(base) == 1  # original untouched

    def test_merged_with_duplicate_rejected(self):
        base = RRset(NAME, RRType.A, [A("1.2.3.4")])
        with pytest.raises(ZoneError):
            base.merged_with([A("1.2.3.4")])

    def test_to_text_lines(self):
        rrset = RRset(NAME, RRType.A, [A("1.2.3.4")], ttl=60)
        lines = rrset.to_text_lines()
        assert lines == ["example.ru.\t60\tIN\tA\t1.2.3.4"]

    def test_iteration_preserves_insertion_order(self):
        rrset = RRset(NAME, RRType.A, [A("9.9.9.9"), A("1.1.1.1")])
        assert [r.to_text() for r in rrset] == ["9.9.9.9", "1.1.1.1"]
