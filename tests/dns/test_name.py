"""Tests for repro.dns.name: DomainName semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import ROOT, DomainName
from repro.errors import InvalidDomainName


class TestParse:
    def test_basic(self):
        name = DomainName.parse("www.example.ru")
        assert name.labels == ("www", "example", "ru")

    def test_case_insensitive(self):
        assert DomainName.parse("WWW.Example.RU") == DomainName.parse("www.example.ru")

    def test_unicode_equals_alabel(self):
        assert DomainName.parse("Пример.рф") == DomainName.parse(
            "xn--e1afmkfd.xn--p1ai"
        )

    def test_trailing_dot(self):
        assert DomainName.parse("example.ru.") == DomainName.parse("example.ru")

    def test_root(self):
        assert DomainName.parse(".") is ROOT
        assert ROOT.is_root

    def test_empty_label_rejected(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse("a..ru")

    def test_hyphen_edges_rejected(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse("-bad.ru")

    def test_overlong_label_rejected(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse("a" * 64 + ".ru")

    def test_overlong_name_rejected(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse(".".join(["abcdefgh"] * 32))

    def test_illegal_character_rejected(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse("sp ace.ru")


class TestStructure:
    def test_tld(self):
        assert DomainName.parse("example.ru").tld == "ru"
        assert ROOT.tld is None

    def test_parent(self):
        assert DomainName.parse("www.example.ru").parent == DomainName.parse(
            "example.ru"
        )

    def test_root_has_no_parent(self):
        with pytest.raises(InvalidDomainName):
            _ = ROOT.parent

    def test_child(self):
        assert DomainName.parse("example.ru").child("www") == DomainName.parse(
            "www.example.ru"
        )

    def test_is_subdomain_of(self):
        name = DomainName.parse("www.example.ru")
        assert name.is_subdomain_of(DomainName.parse("example.ru"))
        assert name.is_subdomain_of(name)
        assert name.is_subdomain_of(ROOT)
        assert not DomainName.parse("example.ru").is_subdomain_of(name)
        assert not DomainName.parse("badexample.ru").is_subdomain_of(
            DomainName.parse("example.ru")
        )

    def test_relativize(self):
        name = DomainName.parse("a.b.example.ru")
        assert name.relativize(DomainName.parse("example.ru")) == ("a", "b")

    def test_relativize_rejects_unrelated(self):
        with pytest.raises(InvalidDomainName):
            DomainName.parse("a.com").relativize(DomainName.parse("example.ru"))

    def test_ancestors(self):
        name = DomainName.parse("a.b.ru")
        ancestors = list(name.ancestors())
        assert ancestors == [
            DomainName.parse("a.b.ru"),
            DomainName.parse("b.ru"),
            DomainName.parse("ru"),
            ROOT,
        ]

    def test_to_unicode(self):
        assert DomainName.parse("xn--e1afmkfd.xn--p1ai").to_unicode() == "пример.рф"

    def test_str_root(self):
        assert str(ROOT) == "."

    def test_canonical_ordering(self):
        names = sorted(
            [
                DomainName.parse("b.ru"),
                DomainName.parse("a.com"),
                DomainName.parse("a.ru"),
            ]
        )
        assert [str(n) for n in names] == ["a.com", "a.ru", "b.ru"]

    def test_immutable(self):
        name = DomainName.parse("example.ru")
        with pytest.raises(AttributeError):
            name._labels = ()

    def test_hashable(self):
        assert len({DomainName.parse("a.ru"), DomainName.parse("A.RU")}) == 1


_LABEL = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)


@given(st.lists(_LABEL, min_size=1, max_size=5))
def test_parse_str_roundtrip(labels):
    """Property: str() and parse() are inverses."""
    name = DomainName(labels)
    assert DomainName.parse(str(name)) == name
