"""Tests for repro.dns.message."""

from repro.dns.message import Message, Question, Rcode
from repro.dns.name import DomainName
from repro.dns.rdata import A, NS, RRType
from repro.dns.rrset import RRset

NAME = DomainName.parse("example.ru")
QUESTION = Question(NAME, RRType.A)


class TestQuestion:
    def test_equality_and_hash(self):
        assert Question(NAME, RRType.A) == QUESTION
        assert Question(NAME, RRType.NS) != QUESTION
        assert len({Question(NAME, RRType.A), QUESTION}) == 1


class TestMessageShapes:
    def test_answer(self):
        message = Message(
            QUESTION,
            answers=[RRset(NAME, RRType.A, [A("1.2.3.4")])],
            aa=True,
        )
        assert message.answer_rrset() is not None
        assert not message.is_referral
        assert not message.is_nodata

    def test_referral(self):
        message = Message(
            QUESTION,
            authorities=[RRset(NAME, RRType.NS, [NS("ns1.reg.ru")])],
        )
        assert message.is_referral
        assert not message.is_nodata
        assert message.answer_rrset() is None

    def test_nodata(self):
        message = Message(QUESTION)
        assert message.is_nodata
        assert not message.is_referral

    def test_nxdomain_is_not_referral(self):
        message = Message(
            QUESTION,
            rcode=Rcode.NXDOMAIN,
            authorities=[RRset(NAME, RRType.NS, [NS("ns1.reg.ru")])],
        )
        assert not message.is_referral

    def test_answer_rrset_filters_by_qtype(self):
        message = Message(
            QUESTION,
            answers=[RRset(NAME, RRType.NS, [NS("ns1.reg.ru")])],
        )
        assert message.answer_rrset() is None

    def test_rcode_values(self):
        assert Rcode.NOERROR.value == 0
        assert Rcode.SERVFAIL.value == 2
        assert Rcode.NXDOMAIN.value == 3
        assert Rcode.REFUSED.value == 5
