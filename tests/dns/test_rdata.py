"""Tests for repro.dns.rdata: record data types and parsing."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rdata import A, CNAME, NS, SOA, TXT, RRType, parse_rdata
from repro.errors import ZoneError


class TestA:
    def test_from_string(self):
        assert A("1.2.3.4").address == 0x01020304

    def test_from_int(self):
        assert A(0x01020304).to_text() == "1.2.3.4"

    def test_bad_address(self):
        with pytest.raises(Exception):
            A("999.1.1.1")

    def test_equality(self):
        assert A("1.2.3.4") == A(0x01020304)
        assert A("1.2.3.4") != A("1.2.3.5")


class TestNS:
    def test_target(self):
        assert NS("ns1.reg.ru").target == DomainName.parse("ns1.reg.ru")

    def test_to_text_has_trailing_dot(self):
        assert NS("ns1.reg.ru").to_text() == "ns1.reg.ru."

    def test_accepts_domainname(self):
        target = DomainName.parse("ns1.reg.ru")
        assert NS(target).target is target


class TestSOA:
    def test_fields(self):
        soa = SOA("ns1.reg.ru", "hostmaster.reg.ru", 42)
        assert soa.serial == 42
        assert soa.minimum == 3600

    def test_negative_serial_rejected(self):
        with pytest.raises(ZoneError):
            SOA("a.ru", "b.ru", -1)

    def test_to_text_field_count(self):
        soa = SOA("ns1.reg.ru", "hostmaster.reg.ru", 1)
        assert len(soa.to_text().split()) == 7


class TestTXT:
    def test_quoting(self):
        assert TXT('say "hi"').to_text() == '"say \\"hi\\""'

    def test_equality(self):
        assert TXT("x") == TXT("x")


class TestParseRdata:
    def test_a(self):
        assert parse_rdata(RRType.A, "1.2.3.4") == A("1.2.3.4")

    def test_ns(self):
        assert parse_rdata(RRType.NS, "ns1.reg.ru.") == NS("ns1.reg.ru")

    def test_cname(self):
        assert parse_rdata(RRType.CNAME, "www.example.ru.") == CNAME("www.example.ru")

    def test_soa_roundtrip(self):
        soa = SOA("ns1.reg.ru", "hostmaster.reg.ru", 7, 1, 2, 3, 4)
        parsed = parse_rdata(RRType.SOA, soa.to_text())
        assert parsed == soa

    def test_soa_wrong_fields(self):
        with pytest.raises(ZoneError):
            parse_rdata(RRType.SOA, "a. b. 1 2")

    def test_txt_roundtrip(self):
        txt = TXT('v=spf1 "quoted" -all')
        assert parse_rdata(RRType.TXT, txt.to_text()) == txt

    def test_rtype_values_match_iana(self):
        assert RRType.A.value == 1
        assert RRType.NS.value == 2
        assert RRType.CNAME.value == 5
        assert RRType.SOA.value == 6
        assert RRType.TXT.value == 16
