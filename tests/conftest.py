"""Shared fixtures: small worlds and contexts reused across the suite."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec

#: Tiny scale for unit-ish integration: ~2k concurrent domains.
TINY_SCALE = 2500.0
#: Small scale for calibration checks: ~10k concurrent domains.
SMALL_SCALE = 500.0


def baseline_spec(scale: float, with_pki: bool = True) -> ScenarioSpec:
    """The baseline scenario at a test scale (the canonical config path)."""
    return ScenarioSpec.resolve("baseline").with_config(
        scale=scale, with_pki=with_pki
    )


@pytest.fixture(scope="session")
def tiny_world():
    """A conflict world without PKI, ~2k domains (fast)."""
    return baseline_spec(TINY_SCALE, with_pki=False).build()


@pytest.fixture(scope="session")
def tiny_context():
    """Full experiment context (with PKI) at tiny scale, 2-week cadence."""
    return ExperimentContext(
        scenario=baseline_spec(TINY_SCALE),
        cadence_days=14,
    )


@pytest.fixture(scope="session")
def small_context():
    """Experiment context at ~10k domains, weekly cadence (calibration)."""
    return ExperimentContext(
        scenario=baseline_spec(SMALL_SCALE),
        cadence_days=7,
    )
