"""Tests for repro.timeline: study dates, day indexing, phases, clock."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro import timeline
from repro.errors import TimelineError


class TestConstants:
    def test_study_period_is_1803_days(self):
        assert timeline.STUDY_DAYS == 1803

    def test_study_bounds(self):
        assert timeline.STUDY_START == dt.date(2017, 6, 18)
        assert timeline.STUDY_END == dt.date(2022, 5, 25)

    def test_conflict_inside_study(self):
        assert timeline.STUDY_START < timeline.CONFLICT_START < timeline.STUDY_END

    def test_sanctions_after_conflict(self):
        assert timeline.SANCTIONS_EFFECTIVE > timeline.CONFLICT_START

    def test_cert_window_inside_study(self):
        assert timeline.CERT_WINDOW_START >= timeline.STUDY_START
        assert timeline.CERT_WINDOW_END <= timeline.STUDY_END


class TestAsDate:
    def test_passthrough(self):
        date = dt.date(2020, 1, 1)
        assert timeline.as_date(date) is date

    def test_iso_string(self):
        assert timeline.as_date("2022-02-24") == timeline.CONFLICT_START

    def test_day_index_int(self):
        assert timeline.as_date(0) == timeline.STUDY_START

    def test_bad_string(self):
        with pytest.raises(TimelineError):
            timeline.as_date("not-a-date")

    def test_bad_type(self):
        with pytest.raises(TimelineError):
            timeline.as_date(3.14)


class TestDayIndex:
    def test_day_zero(self):
        assert timeline.day_index(timeline.STUDY_START) == 0

    def test_last_day(self):
        assert timeline.day_index(timeline.STUDY_END) == timeline.STUDY_DAYS - 1

    def test_negative_allowed(self):
        assert timeline.day_index(dt.date(2017, 6, 17)) == -1

    @given(st.integers(min_value=-5000, max_value=5000))
    def test_roundtrip(self, index):
        assert timeline.day_index(timeline.from_day_index(index)) == index


class TestIterDays:
    def test_inclusive_bounds(self):
        days = list(timeline.iter_days("2022-01-01", "2022-01-03"))
        assert days == [dt.date(2022, 1, 1), dt.date(2022, 1, 2), dt.date(2022, 1, 3)]

    def test_step(self):
        days = list(timeline.iter_days("2022-01-01", "2022-01-10", step=7))
        assert days == [dt.date(2022, 1, 1), dt.date(2022, 1, 8)]

    def test_full_study_count(self):
        assert len(timeline.date_range()) == timeline.STUDY_DAYS

    def test_empty_range_rejected(self):
        with pytest.raises(TimelineError):
            list(timeline.iter_days("2022-01-02", "2022-01-01"))

    def test_zero_step_rejected(self):
        with pytest.raises(TimelineError):
            list(timeline.iter_days("2022-01-01", "2022-01-02", step=0))


class TestPhases:
    def test_day_before_conflict(self):
        assert timeline.phase_of("2022-02-23") is timeline.Phase.PRE_CONFLICT

    def test_conflict_day_is_pre_sanctions(self):
        assert timeline.phase_of("2022-02-24") is timeline.Phase.PRE_SANCTIONS

    def test_sanctions_boundary_inclusive(self):
        assert timeline.phase_of("2022-03-26") is timeline.Phase.PRE_SANCTIONS

    def test_post_sanctions(self):
        assert timeline.phase_of("2022-03-27") is timeline.Phase.POST_SANCTIONS

    @given(st.integers(min_value=0, max_value=timeline.STUDY_DAYS - 1))
    def test_every_study_day_has_exactly_one_phase(self, index):
        phase = timeline.phase_of(index)
        assert phase in timeline.Phase


class TestDayClock:
    def test_starts_at_study_start(self):
        assert timeline.DayClock().date == timeline.STUDY_START

    def test_advance(self):
        clock = timeline.DayClock()
        clock.advance_to("2020-01-01")
        assert clock.date == dt.date(2020, 1, 1)

    def test_tick(self):
        clock = timeline.DayClock("2020-01-01")
        clock.tick(3)
        assert clock.date == dt.date(2020, 1, 4)

    def test_no_backwards(self):
        clock = timeline.DayClock("2020-01-02")
        with pytest.raises(TimelineError):
            clock.advance_to("2020-01-01")

    def test_no_negative_tick(self):
        with pytest.raises(TimelineError):
            timeline.DayClock().tick(-1)
