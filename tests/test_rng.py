"""Tests for repro.rng: deterministic, independent random streams."""

from hypothesis import given, strategies as st

from repro.rng import derive_rng, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", "b") == stable_hash("a", "b")

    def test_label_separator_prevents_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    @given(st.lists(st.text(), min_size=1, max_size=4))
    def test_in_64_bit_range(self, labels):
        value = stable_hash(*labels)
        assert 0 <= value < 2**64


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "x").random(5)
        assert (a == b).all()

    def test_different_paths_differ(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "y").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not (a == b).all()

    def test_nested_labels_independent(self):
        a = derive_rng(42, "pki", "issuance").random(3)
        b = derive_rng(42, "pki").random(3)
        assert not (a == b).all()

    def test_derive_seed_is_stable_across_calls(self):
        assert derive_seed(7, "registry") == derive_seed(7, "registry")
