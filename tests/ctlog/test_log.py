"""Tests for repro.ctlog.log: SCTs, STHs, entries, proofs."""

import datetime as dt

import pytest

from repro.ctlog.log import CtLog
from repro.ctlog.merkle import MerkleTree
from repro.errors import CtLogError
from repro.pki.ca import CertificateAuthority


@pytest.fixture
def ca():
    return CertificateAuthority("le", "Let's Encrypt", "US")


@pytest.fixture
def log():
    return CtLog("argon2022")


class TestSubmission:
    def test_sct(self, log, ca):
        cert = ca.issue(["example.ru"], "2022-01-01")
        sct = log.add_chain(cert, "2022-01-01")
        assert sct.log_id == "argon2022"
        assert sct.leaf_index == 0
        assert sct.timestamp == dt.date(2022, 1, 1)

    def test_idempotent(self, log, ca):
        cert = ca.issue(["example.ru"], "2022-01-01")
        first = log.add_chain(cert, "2022-01-01")
        second = log.add_chain(cert, "2022-02-01")
        assert second.leaf_index == first.leaf_index
        assert second.timestamp == first.timestamp
        assert len(log) == 1

    def test_contains(self, log, ca):
        cert = ca.issue(["example.ru"], "2022-01-01")
        assert not log.contains(cert)
        log.add_chain(cert, "2022-01-01")
        assert log.contains(cert)


class TestSth:
    def test_current(self, log, ca):
        for day in (1, 2, 3):
            log.add_chain(ca.issue([f"d{day}.ru"], f"2022-01-0{day}"), f"2022-01-0{day}")
        sth = log.get_sth()
        assert sth.tree_size == 3

    def test_as_of_date(self, log, ca):
        for day in (1, 2, 3):
            log.add_chain(ca.issue([f"d{day}.ru"], f"2022-01-0{day}"), f"2022-01-0{day}")
        sth = log.get_sth(at="2022-01-02")
        assert sth.tree_size == 2
        assert sth.root_hash == log.tree.root(2)


class TestEntries:
    def test_get_entries(self, log, ca):
        certs = [ca.issue([f"d{i}.ru"], "2022-01-01") for i in range(5)]
        for cert in certs:
            log.add_chain(cert, "2022-01-01")
        entries = log.get_entries(1, 3)
        assert [e.index for e in entries] == [1, 2, 3]
        assert entries[0].certificate is certs[1]

    def test_bad_range(self, log, ca):
        log.add_chain(ca.issue(["a.ru"], "2022-01-01"), "2022-01-01")
        with pytest.raises(CtLogError):
            log.get_entries(0, 5)
        with pytest.raises(CtLogError):
            log.get_entries(2, 1)


class TestProofs:
    def test_inclusion_proof_verifies(self, log, ca):
        certs = [ca.issue([f"d{i}.ru"], "2022-01-01") for i in range(9)]
        for cert in certs:
            log.add_chain(cert, "2022-01-01")
        target = certs[4]
        proof = log.inclusion_proof_for(target)
        sth = log.get_sth()
        leaf = log.tree.leaf(4)
        assert MerkleTree.verify_inclusion(leaf, 4, sth.tree_size, proof, sth.root_hash)

    def test_proof_for_missing_cert_rejected(self, log, ca):
        with pytest.raises(CtLogError):
            log.inclusion_proof_for(ca.issue(["a.ru"], "2022-01-01"))
