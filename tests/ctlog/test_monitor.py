"""Tests for repro.ctlog.monitor."""

import datetime as dt

import pytest

from repro.ctlog.log import CtLog
from repro.ctlog.monitor import CtMonitor
from repro.pki.ca import CertificateAuthority


@pytest.fixture
def setup():
    ca = CertificateAuthority("le", "Let's Encrypt", "US")
    logs = [CtLog("argon"), CtLog("xenon")]
    matcher = lambda cert: cert.secures_tld(("ru", "xn--p1ai"))
    monitor = CtMonitor(logs, matcher)
    return ca, logs, monitor


class TestMatching:
    def test_only_matching_certs_retained(self, setup):
        ca, logs, monitor = setup
        logs[0].add_chain(ca.issue(["example.ru"], "2022-01-01"), "2022-01-01")
        logs[0].add_chain(ca.issue(["example.com"], "2022-01-01"), "2022-01-01")
        logs[1].add_chain(ca.issue(["пример.рф"], "2022-01-02"), "2022-01-02")
        assert monitor.poll() == 2
        assert len(monitor.store) == 2

    def test_incremental_poll(self, setup):
        ca, logs, monitor = setup
        logs[0].add_chain(ca.issue(["a.ru"], "2022-01-01"), "2022-01-01")
        assert monitor.poll() == 1
        assert monitor.poll() == 0
        logs[0].add_chain(ca.issue(["b.ru"], "2022-01-02"), "2022-01-02")
        assert monitor.poll() == 1

    def test_entries_on(self, setup):
        ca, logs, monitor = setup
        logs[0].add_chain(ca.issue(["a.ru"], "2022-01-01"), "2022-01-01")
        logs[0].add_chain(ca.issue(["b.ru"], "2022-01-02"), "2022-01-02")
        monitor.poll()
        assert len(monitor.entries_on(dt.date(2022, 1, 1))) == 1

    def test_daily_issuer_matrix(self, setup):
        ca, logs, monitor = setup
        logs[0].add_chain(ca.issue(["a.ru"], "2022-01-01"), "2022-01-01")
        logs[0].add_chain(ca.issue(["b.ru"], "2022-01-01"), "2022-01-01")
        monitor.poll()
        matrix = monitor.daily_issuer_matrix()
        assert matrix["Let's Encrypt"][dt.date(2022, 1, 1)] == 2

    def test_default_matcher_accepts_all(self):
        ca = CertificateAuthority("le", "Let's Encrypt", "US")
        log = CtLog("argon")
        log.add_chain(ca.issue(["example.com"], "2022-01-01"), "2022-01-01")
        monitor = CtMonitor([log])
        assert monitor.poll() == 1
