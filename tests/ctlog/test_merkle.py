"""Tests for repro.ctlog.merkle: RFC 6962 trees and proofs."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctlog.merkle import EMPTY_ROOT, MerkleTree, leaf_hash, node_hash
from repro.errors import ProofError


def tree_with(count):
    tree = MerkleTree()
    for index in range(count):
        tree.append(f"entry-{index}".encode())
    return tree


class TestHashing:
    def test_empty_root(self):
        assert MerkleTree().root() == EMPTY_ROOT
        assert EMPTY_ROOT == hashlib.sha256(b"").digest()

    def test_single_leaf_root(self):
        tree = MerkleTree()
        tree.append(b"x")
        assert tree.root() == leaf_hash(b"x")

    def test_two_leaf_root(self):
        tree = MerkleTree()
        tree.append(b"a")
        tree.append(b"b")
        assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))

    def test_domain_separation(self):
        # Leaf and node prefixes differ (second-preimage resistance).
        assert leaf_hash(b"ab") != node_hash(b"a", b"b")

    def test_root_of_prefix(self):
        tree = tree_with(7)
        prefix_root = tree.root(4)
        other = tree_with(4)
        assert prefix_root == other.root()

    def test_root_size_out_of_range(self):
        with pytest.raises(ProofError):
            tree_with(3).root(4)


class TestInclusionProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 33])
    def test_every_leaf_verifies(self, size):
        tree = tree_with(size)
        root = tree.root()
        for index in range(size):
            proof = tree.inclusion_proof(index)
            assert MerkleTree.verify_inclusion(
                tree.leaf(index), index, size, proof, root
            )

    def test_wrong_leaf_fails(self):
        tree = tree_with(8)
        proof = tree.inclusion_proof(3)
        assert not MerkleTree.verify_inclusion(
            leaf_hash(b"bogus"), 3, 8, proof, tree.root()
        )

    def test_wrong_index_fails(self):
        tree = tree_with(8)
        proof = tree.inclusion_proof(3)
        assert not MerkleTree.verify_inclusion(
            tree.leaf(3), 4, 8, proof, tree.root()
        )

    def test_tampered_proof_fails(self):
        tree = tree_with(8)
        proof = tree.inclusion_proof(3)
        proof[0] = leaf_hash(b"tamper")
        assert not MerkleTree.verify_inclusion(
            tree.leaf(3), 3, 8, proof, tree.root()
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ProofError):
            tree_with(4).inclusion_proof(4)


class TestConsistencyProofs:
    @pytest.mark.parametrize("old,new", [(1, 2), (2, 3), (3, 7), (4, 8), (6, 13), (7, 7)])
    def test_valid_consistency(self, old, new):
        tree = tree_with(new)
        proof = tree.consistency_proof(old)
        assert MerkleTree.verify_consistency(
            old, new, tree.root(old), tree.root(new), proof
        )

    def test_forked_tree_proof_fails_against_honest_root(self):
        tree = tree_with(6)
        fork = tree_with(4)
        fork.append(b"DIFFERENT")
        fork.append(b"entry-5")
        assert fork.root() != tree.root()
        # A proof generated from the forked log cannot link the honest
        # old root to the honest new root.
        proof = fork.consistency_proof(4)
        assert not MerkleTree.verify_consistency(
            4, 6, tree.root(4), tree.root(6), proof
        )

    def test_equal_sizes_empty_proof(self):
        tree = tree_with(5)
        assert MerkleTree.verify_consistency(5, 5, tree.root(), tree.root(), [])
        assert not MerkleTree.verify_consistency(
            5, 5, tree.root(), leaf_hash(b"x"), []
        )

    def test_zero_old_size(self):
        tree = tree_with(5)
        assert MerkleTree.verify_consistency(0, 5, EMPTY_ROOT, tree.root(), [])

    def test_bad_range_rejected(self):
        with pytest.raises(ProofError):
            tree_with(3).consistency_proof(0)


class TestAppendOnly:
    def test_roots_change_on_append(self):
        tree = MerkleTree()
        roots = set()
        for index in range(10):
            tree.append(f"{index}".encode())
            roots.add(tree.root())
        assert len(roots) == 10

    def test_old_roots_stable_under_append(self):
        tree = tree_with(5)
        root5 = tree.root()
        tree.append(b"more")
        assert tree.root(5) == root5


@settings(max_examples=60)
@given(st.integers(min_value=1, max_value=64), st.data())
def test_inclusion_property(size, data):
    """Property: generated proofs verify; verification is size-exact."""
    tree = tree_with(size)
    index = data.draw(st.integers(min_value=0, max_value=size - 1))
    proof = tree.inclusion_proof(index)
    assert MerkleTree.verify_inclusion(tree.leaf(index), index, size, proof, tree.root())


@settings(max_examples=60)
@given(st.integers(min_value=1, max_value=64), st.data())
def test_consistency_property(new_size, data):
    """Property: consistency proofs verify for every prefix size."""
    tree = tree_with(new_size)
    old_size = data.draw(st.integers(min_value=1, max_value=new_size))
    proof = tree.consistency_proof(old_size)
    assert MerkleTree.verify_consistency(
        old_size, new_size, tree.root(old_size), tree.root(), proof
    )
