"""Bounded-memory regression tests for the streaming build path.

Two independent measurements, because they catch different regressions:

* **tracemalloc** (always runs): encoding a large synthetic day through
  the streaming writer must allocate a small fraction of what the
  whole-day encoder allocates — the chunked path's transients scale
  with ``chunk_domains``, the one-shot path's with the day.  A change
  that quietly materialises the whole day inside the streaming writer
  fails this immediately, at any machine's RSS.
* **ru_maxrss** (skipped without the ``resource`` module): a real
  subprocess archive build with ``chunk_domains`` set must stay under a
  generous absolute ceiling, pinning the end-to-end peak including
  numpy, the world, and the interpreter itself.

The RSS sampling helpers themselves are covered here too, since every
memory number the bench ladder reports flows through them.
"""

import os
import subprocess
import sys
import textwrap
import tracemalloc

import numpy as np
import pytest

from repro.archive.shard import DayShardRecord, encode_shard
from repro.archive.stream import DayStream, write_shard_stream
from repro.archive.summary import DaySummary
from repro.measurement.metrics import SweepMetrics, current_rss_bytes

#: Synthetic-day size: big enough that whole-day transients dwarf the
#: chunk bound, small enough to encode twice in a few seconds.
DAY_DOMAINS = 80_000
CHUNK = 2_000


def synthetic_stream(count: int = DAY_DOMAINS) -> DayStream:
    """A lazy day of ``count`` generated domains (nothing materialised)."""
    import datetime as dt

    summary = DaySummary(
        dt.date(2022, 3, 4), 1720, count,
        (count, 0, 0), (count, 0, 0), (count, 0, 0),
        {"ru": count}, {197695: count}, (0, 0, 0), 0,
    )
    return DayStream(
        dt.date(2022, 3, 4),
        1720,
        count,
        np.arange(count, dtype=np.int64),
        np.zeros(count, dtype=np.int32),
        np.zeros(count, dtype=np.int32),
        {0: (("ns1.stream.ru", "ns2.stream.ru"), (1101, 1102))},
        summary,
        lambda position: f"domain-{position:07d}.example.ru",
        lambda position: (position, position + 7),
    )


def materialised_record(count: int = DAY_DOMAINS) -> DayShardRecord:
    """The same synthetic day as a whole-day record (everything in RAM)."""
    stream = synthetic_stream(count)
    record = DayShardRecord(
        date=stream.date,
        epoch_start_day=stream.epoch_start_day,
        population_size=stream.population_size,
        measured=stream.measured,
        dns_ids=stream.dns_ids,
        hosting_ids=stream.hosting_ids,
        dns_plan_ns=stream.dns_plan_ns,
        domains=[f"domain-{i:07d}.example.ru" for i in range(count)],
        apex=[(i, i + 7) for i in range(count)],
    )
    record.summary = stream.summary
    return record


class TestStreamingAllocations:
    def test_streaming_encode_allocates_a_fraction(self, tmp_path):
        record = materialised_record()
        tracemalloc.start()
        encode_shard(record)
        _, whole_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        stream = synthetic_stream()
        tracemalloc.start()
        write_shard_stream(
            str(tmp_path / "streamed.shard"), stream, chunk_domains=CHUNK
        )
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # The one-shot encoder holds the whole uncompressed payload (and
        # its compressed copy); the streaming writer's transients are
        # bounded by the chunk.  A 3x margin keeps the assertion far
        # from allocator noise while still failing on any regression
        # that rematerialises the day.
        assert streamed_peak * 3 < whole_peak, (
            f"streaming peak {streamed_peak:,}B vs whole-day {whole_peak:,}B"
        )

    def test_streamed_bytes_still_identical_at_scale(self, tmp_path):
        from repro.archive.shard import write_shard

        write_shard(str(tmp_path / "whole.shard"), materialised_record())
        write_shard_stream(
            str(tmp_path / "streamed.shard"),
            synthetic_stream(),
            chunk_domains=CHUNK,
        )
        assert (tmp_path / "streamed.shard").read_bytes() == (
            tmp_path / "whole.shard"
        ).read_bytes()


class TestRssSampling:
    """The helpers every bench memory number flows through."""

    def test_current_rss_positive_on_supported_platforms(self):
        pytest.importorskip("resource")
        assert current_rss_bytes() > 0

    def test_metrics_retain_peak(self):
        metrics = SweepMetrics()
        assert metrics.peak_rss_bytes == 0
        first = metrics.sample_rss()
        second = metrics.sample_rss()
        assert metrics.peak_rss_bytes == max(first, second)
        payload = metrics.summary()["memory"]
        assert payload["peak_rss_bytes"] == metrics.peak_rss_bytes
        assert payload["rss_samples"] == 2


class TestSubprocessCeiling:
    """End-to-end: a chunked build stays under an absolute RSS budget."""

    #: Generous ceiling for a 3-day 1:2500-scale build (~75 MiB observed
    #: at 1:250; tiny scale sits far below).  Catches only order-of-
    #: magnitude regressions, by design — the tracemalloc test above is
    #: the sharp one.
    CEILING_MIB = 512

    def test_chunked_build_stays_under_ceiling(self, tmp_path):
        pytest.importorskip("resource")
        script = textwrap.dedent(
            f"""
            import resource, sys
            from repro.archive import ArchiveBuilder
            from repro.sim import ConflictScenarioConfig

            config = ConflictScenarioConfig(scale=2500.0, with_pki=False)
            builder = ArchiveBuilder(
                {str(tmp_path / "arch")!r}, config, chunk_domains=2000
            )
            report = builder.build("2022-02-24", "2022-02-26")
            assert len(report.written) == 3
            peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            scale = 1024 if sys.platform.startswith("linux") else 1
            print(peak_kib * scale)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        peak_bytes = int(result.stdout.strip().splitlines()[-1])
        assert peak_bytes < self.CEILING_MIB * 1024 * 1024, (
            f"build peaked at {peak_bytes / 2**20:.1f} MiB"
        )
