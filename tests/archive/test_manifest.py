"""Tests for repro.archive.manifest: fingerprint, persistence, refusal."""

import datetime as dt
import json

import pytest

from repro.archive.manifest import (
    MANIFEST_NAME,
    SCHEMA_VERSION,
    DayEntry,
    Manifest,
    scenario_fingerprint,
)
from repro.errors import ArchiveError
from repro.sim import ConflictScenarioConfig

COLLECTOR = {"outage_dates": ["2021-03-22"], "outage_coverage": 0.55, "seed": 7}


def manifest(config=None):
    config = config or ConflictScenarioConfig(scale=5000.0, with_pki=False)
    return Manifest(scenario_fingerprint(config), COLLECTOR, 1234)


class TestFingerprint:
    def test_fields(self):
        config = ConflictScenarioConfig(scale=5000.0, with_pki=False)
        fingerprint = scenario_fingerprint(config)
        assert fingerprint == {
            "scale": config.scale,
            "seed": config.seed,
            "geo_lag_days": config.geo_lag_days,
            "netnod_mode": config.netnod_mode,
            "sanctioned_domain_count": config.sanctioned_domain_count,
        }

    def test_with_pki_not_part_of_identity(self):
        """Sweeps never read the PKI bundle, so the flag must not split archives."""
        assert scenario_fingerprint(
            ConflictScenarioConfig(scale=5000.0, with_pki=False)
        ) == scenario_fingerprint(ConflictScenarioConfig(scale=5000.0, with_pki=True))

    def test_check_scenario_accepts_match(self):
        manifest().check_scenario(ConflictScenarioConfig(scale=5000.0, with_pki=False))

    def test_check_scenario_names_mismatched_fields(self):
        with pytest.raises(ArchiveError, match="scale"):
            manifest().check_scenario(
                ConflictScenarioConfig(scale=2500.0, with_pki=False)
            )
        with pytest.raises(ArchiveError, match="seed"):
            manifest().check_scenario(
                ConflictScenarioConfig(scale=5000.0, seed=99, with_pki=False)
            )


class TestCoverage:
    def test_add_and_query(self):
        m = manifest()
        day = dt.date(2022, 3, 4)
        m.add_day(DayEntry(day, "2022-03-04.shard", 100, 7, 0xDEAD))
        assert m.covered_dates() == [day]
        assert m.missing_dates([day, dt.date(2022, 3, 5)]) == [dt.date(2022, 3, 5)]
        assert m.total_bytes() == 100
        assert m.total_records() == 7

    def test_add_day_overwrites(self):
        m = manifest()
        day = dt.date(2022, 3, 4)
        m.add_day(DayEntry(day, "2022-03-04.shard", 100, 7, 1))
        m.add_day(DayEntry(day, "2022-03-04.shard", 120, 8, 2))
        assert m.total_bytes() == 120
        assert m.days[day].crc32 == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        m = manifest()
        m.add_day(DayEntry(dt.date(2022, 3, 4), "2022-03-04.shard", 100, 7, 0xDEAD))
        m.save(str(tmp_path))
        loaded = Manifest.load(str(tmp_path))
        assert loaded.scenario == m.scenario
        assert loaded.collector == m.collector
        assert loaded.population_size == m.population_size
        assert loaded.covered_dates() == m.covered_dates()
        entry = loaded.days[dt.date(2022, 3, 4)]
        assert (entry.file, entry.bytes, entry.records, entry.crc32) == (
            "2022-03-04.shard", 100, 7, 0xDEAD,
        )

    def test_save_bytes_deterministic(self, tmp_path):
        m = manifest()
        m.add_day(DayEntry(dt.date(2022, 3, 4), "2022-03-04.shard", 100, 7, 3))
        m.save(str(tmp_path))
        first = (tmp_path / MANIFEST_NAME).read_bytes()
        m.save(str(tmp_path))
        assert (tmp_path / MANIFEST_NAME).read_bytes() == first

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArchiveError, match="no archive manifest"):
            Manifest.load(str(tmp_path))

    def test_invalid_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ArchiveError, match="not valid JSON"):
            Manifest.load(str(tmp_path))

    def test_foreign_format_refused(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(ArchiveError, match="not a measurement-archive"):
            Manifest.load(str(tmp_path))

    def test_future_schema_version_refused(self, tmp_path):
        m = manifest()
        path = m.save(str(tmp_path))
        raw = json.loads(open(path, encoding="utf-8").read())
        raw["schema_version"] = SCHEMA_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        with pytest.raises(ArchiveError, match="schema version"):
            Manifest.load(str(tmp_path))

    def test_malformed_days_refused(self, tmp_path):
        m = manifest()
        path = m.save(str(tmp_path))
        raw = json.loads(open(path, encoding="utf-8").read())
        raw["days"] = {"2022-03-04": {"file": "x.shard"}}  # missing fields
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        with pytest.raises(ArchiveError, match="malformed"):
            Manifest.load(str(tmp_path))
