"""Archive fixtures: one built archive plus matched live/archive contexts.

Everything here runs at the sweep-test scale (1:5000, ~1.1k concurrent
domains) so the session pays for exactly one standard archive build and
one live reference sweep.
"""

from __future__ import annotations

import pytest

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec

#: Cadence shared by the archive build and both contexts.
CADENCE = 60


@pytest.fixture(scope="session")
def archive_config():
    return ScenarioSpec.resolve("baseline").with_config(
        scale=5000.0, with_pki=False
    ).compile()


@pytest.fixture(scope="session")
def built_archive(tmp_path_factory, archive_config):
    """A standard-plan archive (full study at CADENCE + conflict window daily)."""
    directory = tmp_path_factory.mktemp("archive") / "std"
    ArchiveBuilder(str(directory), archive_config).build_standard(CADENCE)
    return str(directory)


@pytest.fixture(scope="session")
def live_context(archive_config):
    """The simulated reference every archive-backed result must match."""
    return ExperimentContext(config=archive_config, cadence_days=CADENCE)


@pytest.fixture(scope="session")
def archive_context(archive_config, built_archive):
    return ExperimentContext(
        config=archive_config, cadence_days=CADENCE, archive=built_archive
    )
