"""Parallel shard reads must be bit-identical to serial reads.

:meth:`MeasurementArchive.load_range` / :meth:`load_summaries` with
``readers > 1`` fetch and decode uncached shards through a bounded
thread pool.  The suite proves the three properties the serving layer
depends on:

* **bit-identity** — every figure the kernel serves (fig1, headline,
  fig4, fig5) and every raw record/summary range is byte-identical to a
  serial read;
* **bounded concurrency** — never more than ``readers`` shard reads in
  flight, and genuinely more than one when the pool is wider;
* **fault behaviour** — a corrupted shard discovered mid-parallel-read
  is quarantined and healed (config present) instead of hanging the
  pool, transient IO faults retry in-path, and hard failures surface as
  the same classified errors the serial path raises.
"""

import datetime as dt
import shutil
import threading
import time

import pytest

from repro.archive import ArchiveBuilder, MeasurementArchive
from repro.archive.store import QUARANTINE_SUFFIX
from repro.errors import ArchiveError, RecoveryError
from repro.experiments import ExperimentContext
from repro.faults import FaultPlan, FaultSpec

#: Must match tests/archive/conftest.py's session fixtures.
CADENCE = 60

EXPERIMENTS = ("fig1", "headline", "fig4", "fig5")

#: A daily-covered window inside the standard plan's conflict sweep.
WINDOW_START = dt.date(2022, 2, 22)
WINDOW_END = dt.date(2022, 3, 14)


@pytest.fixture()
def parallel_context(archive_config, built_archive):
    """An archive-backed context reading through a 4-wide pool."""
    return ExperimentContext(
        config=archive_config,
        cadence_days=CADENCE,
        archive=built_archive,
        archive_readers=4,
    )


class TestBitIdentity:
    """Parallel query output == serial query output, byte for byte."""

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_experiments_identical(
        self, experiment, archive_context, parallel_context
    ):
        spec = {"kind": "experiment", "experiment": experiment}
        assert parallel_context.api.query_json(spec) == (
            archive_context.api.query_json(spec)
        )

    def test_load_range_identical(self, built_archive):
        serial = MeasurementArchive(built_archive, cache_shards=64)
        parallel = MeasurementArchive(built_archive, cache_shards=64, readers=4)
        assert parallel.load_range(WINDOW_START, WINDOW_END) == (
            serial.load_range(WINDOW_START, WINDOW_END)
        )

    def test_load_summaries_identical(self, built_archive):
        serial = MeasurementArchive(built_archive)
        parallel = MeasurementArchive(built_archive, readers=4)
        assert parallel.load_summaries(WINDOW_START, WINDOW_END) == (
            serial.load_summaries(WINDOW_START, WINDOW_END)
        )

    def test_sweep_yields_in_date_order(self, archive_config, built_archive):
        context = ExperimentContext(
            config=archive_config,
            cadence_days=CADENCE,
            archive=built_archive,
            archive_readers=3,
        )
        dates = [
            snapshot.date
            for snapshot in context.collector.sweep(WINDOW_START, WINDOW_END)
        ]
        expected, day = [], WINDOW_START
        while day <= WINDOW_END:
            expected.append(day)
            day += dt.timedelta(days=1)
        assert dates == expected

    def test_explicit_readers_override(self, built_archive):
        archive = MeasurementArchive(built_archive, cache_shards=64)
        assert archive.readers == 1
        parallel = archive.load_range(WINDOW_START, WINDOW_END, readers=4)
        serial = MeasurementArchive(built_archive, cache_shards=64).load_range(
            WINDOW_START, WINDOW_END
        )
        assert parallel == serial


class TestBoundedConcurrency:
    def _tracked_archive(self, directory, readers):
        archive = MeasurementArchive(directory, cache_shards=64, readers=readers)
        lock = threading.Lock()
        state = {"in_flight": 0, "peak": 0, "reads": 0}
        original = archive._read_day

        def tracked(date_obj, entry):
            with lock:
                state["in_flight"] += 1
                state["reads"] += 1
                state["peak"] = max(state["peak"], state["in_flight"])
            try:
                time.sleep(0.002)  # widen the overlap window
                return original(date_obj, entry)
            finally:
                with lock:
                    state["in_flight"] -= 1

        archive._read_day = tracked
        return archive, state

    def test_pool_never_exceeds_readers(self, built_archive):
        archive, state = self._tracked_archive(built_archive, readers=3)
        archive.load_range(WINDOW_START, WINDOW_END)
        assert state["reads"] == (WINDOW_END - WINDOW_START).days + 1
        assert 1 <= state["peak"] <= 3

    def test_pool_actually_overlaps(self, built_archive):
        archive, state = self._tracked_archive(built_archive, readers=4)
        archive.load_range(WINDOW_START, WINDOW_END)
        assert state["peak"] >= 2

    def test_serial_reader_stays_serial(self, built_archive):
        archive, state = self._tracked_archive(built_archive, readers=1)
        archive.load_range(WINDOW_START, WINDOW_END)
        assert state["peak"] == 1

    def test_cached_days_skip_the_pool(self, built_archive):
        archive, state = self._tracked_archive(built_archive, readers=4)
        archive.load_range(WINDOW_START, WINDOW_END)
        first = state["reads"]
        archive.load_range(WINDOW_START, WINDOW_END)
        assert state["reads"] == first  # everything came from the LRU


class TestFaultBehaviour:
    @pytest.fixture()
    def damaged_archive(self, tmp_path, built_archive):
        """A copy of the built archive with one shard corrupted on disk."""
        copy = tmp_path / "damaged"
        shutil.copytree(built_archive, copy)
        victim = copy / "2022-03-01.shard"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        return str(copy)

    def test_corrupt_shard_heals_mid_parallel_read(
        self, damaged_archive, built_archive, archive_config, tmp_path
    ):
        archive = MeasurementArchive(
            damaged_archive, cache_shards=64, readers=4, config=archive_config
        )
        records = archive.load_range(WINDOW_START, WINDOW_END)
        # The damaged file was renamed aside, never deleted...
        quarantined = tmp_path / "damaged" / ("2022-03-01.shard" + QUARANTINE_SUFFIX)
        assert quarantined.exists()
        # ...and the healed range is identical to an undamaged read.
        clean = MeasurementArchive(built_archive, cache_shards=64)
        assert records == clean.load_range(WINDOW_START, WINDOW_END)

    def test_corrupt_shard_without_config_raises(self, damaged_archive):
        archive = MeasurementArchive(damaged_archive, cache_shards=64, readers=4)
        with pytest.raises(ArchiveError):
            archive.load_range(WINDOW_START, WINDOW_END)

    def test_transient_io_faults_retry_in_path(self, built_archive):
        faults = FaultPlan(
            11, {"shard.read": FaultSpec("io-error", match="#0")}
        )
        serial = MeasurementArchive(built_archive, cache_shards=64)
        parallel = MeasurementArchive(
            built_archive, cache_shards=64, readers=4, faults=faults
        )
        # Every first read attempt fails; the per-attempt retry key
        # re-rolls, so the range read succeeds without healing.
        records = parallel.load_range(WINDOW_START, WINDOW_END)
        assert records == serial.load_range(WINDOW_START, WINDOW_END)
        assert faults.injected("shard.read") > 0

    def test_exhausted_retries_surface_not_hang(self, built_archive):
        # Target one shard's every attempt: retries exhaust and the
        # classified RecoveryError propagates out of the pool.
        faults = FaultPlan(
            11,
            {"shard.read": FaultSpec("io-error", match="2022-03-01.shard")},
        )
        archive = MeasurementArchive(
            built_archive, cache_shards=64, readers=4, faults=faults
        )
        with pytest.raises(RecoveryError):
            archive.load_range(WINDOW_START, WINDOW_END)
