"""Property-based fuzz tests for the shard codec and container format.

Two layers (both tier-1, both fully deterministic):

* hypothesis round-trips over the codec primitives, run with
  ``derandomize=True`` so CI never sees a flaky example;
* seeded mutation fuzz over a canonical shard file — every truncation,
  single-bit flip, and splice must surface as :class:`ArchiveError`
  (the classified subclasses included), never as a crash, a hang, or a
  silently different decode.  The format's header-covering CRC is what
  makes the every-single-bit guarantee possible.
"""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.archive.codec import (
    read_delta_run,
    read_int32_array,
    read_string,
    read_svarint,
    read_uvarint,
    unzigzag,
    write_delta_run,
    write_int32_array,
    write_string,
    write_svarint,
    write_uvarint,
    zigzag,
)
from repro.archive.shard import DayShardRecord, read_shard, write_shard
from repro.archive.summary import DaySummary
from repro.errors import ArchiveError
from repro.rng import derive_rng

FUZZ = settings(derandomize=True, deadline=None)

#: The codec's documented domains: zigzag assumes 64-bit signed values,
#: and column elements are int32 (indices, plan ids, packed addresses).
uint64s = st.integers(min_value=0, max_value=2**64 - 1)
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestRoundTrips:
    @FUZZ
    @given(uint64s)
    def test_uvarint(self, value):
        buffer = bytearray()
        write_uvarint(buffer, value)
        decoded, offset = read_uvarint(memoryview(bytes(buffer)), 0)
        assert decoded == value and offset == len(buffer)

    @FUZZ
    @given(int64s)
    def test_zigzag(self, value):
        assert unzigzag(zigzag(value)) == value

    @FUZZ
    @given(int64s)
    def test_svarint(self, value):
        buffer = bytearray()
        write_svarint(buffer, value)
        decoded, offset = read_svarint(memoryview(bytes(buffer)), 0)
        assert decoded == value and offset == len(buffer)

    @FUZZ
    @given(st.lists(int32s, max_size=64))
    def test_delta_run(self, values):
        buffer = bytearray()
        write_delta_run(buffer, values)
        decoded, offset = read_delta_run(memoryview(bytes(buffer)), 0)
        assert decoded == values and offset == len(buffer)

    @FUZZ
    @given(st.lists(int32s, max_size=64))
    def test_int32_array(self, values):
        buffer = bytearray()
        write_int32_array(buffer, values)
        decoded, offset = read_int32_array(memoryview(bytes(buffer)), 0)
        assert decoded == values and offset == len(buffer)

    @FUZZ
    @given(st.text(max_size=64))
    def test_string(self, text):
        buffer = bytearray()
        write_string(buffer, text)
        decoded, offset = read_string(memoryview(bytes(buffer)), 0)
        assert decoded == text and offset == len(buffer)

    @FUZZ
    @given(st.lists(st.tuples(int64s, st.text(max_size=16)), max_size=16))
    def test_interleaved_fields(self, pairs):
        buffer = bytearray()
        for number, text in pairs:
            write_svarint(buffer, number)
            write_string(buffer, text)
        view = memoryview(bytes(buffer))
        offset = 0
        for number, text in pairs:
            decoded, offset = read_svarint(view, offset)
            assert decoded == number
            decoded, offset = read_string(view, offset)
            assert decoded == text
        assert offset == len(view)

    def test_int32_range_enforced(self):
        with pytest.raises(ArchiveError, match="out of range"):
            write_int32_array(bytearray(), [2**31])


class TestPrimitiveMutationSafety:
    """Random bytes through the readers: ArchiveError or a value, only."""

    READERS = (read_uvarint, read_svarint, read_delta_run,
               read_int32_array, read_string)

    @FUZZ
    @given(st.binary(max_size=128))
    def test_readers_never_crash(self, blob):
        view = memoryview(blob)
        for reader in self.READERS:
            try:
                _, offset = reader(view, 0)
                assert 0 <= offset <= len(view)
            except ArchiveError:
                pass


def canonical_record():
    """A small hand-built day record (mirrors tests/archive/test_shard.py)."""
    record = DayShardRecord(
        date=dt.date(2022, 3, 4),
        epoch_start_day=1720,
        population_size=12,
        measured=[1, 4, 7],
        dns_ids=[2, 5, 2],
        hosting_ids=[3, 3, 9],
        dns_plan_ns={
            2: (("ns1.reg.ru", "ns2.reg.ru"), (101, 102)),
            5: (("alice.ns.cloudflare.com",), (250,)),
        },
        domains=["alpha.ru", "xn--e1afmkfd.xn--p1ai", "gamma.ru"],
        apex=[(3232235777,), (), (167772161, 167772162)],
    )
    record.summary = DaySummary(
        dt.date(2022, 3, 4), 1720, 3,
        (1, 1, 1), (2, 0, 1), (3, 0, 0),
        {"ru": 2, "xn--p1ai": 1}, {13335: 1, 197695: 2}, (1, 0, 0), 4,
    )
    return record


@pytest.fixture(scope="module")
def shard_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "canonical.shard"
    write_shard(str(path), canonical_record())
    return path.read_bytes()


def read_mutated(tmp_path, blob, name="mutated.shard"):
    path = tmp_path / name
    path.write_bytes(blob)
    return read_shard(str(path))


class TestShardMutationFuzz:
    """Exhaustive/seeded mutations of a real shard file.

    Every mutated file must either raise :class:`ArchiveError` or (for
    the identity mutation only) decode to the canonical record — never
    crash with another exception type and never decode differently.
    """

    def test_canonical_round_trips(self, tmp_path, shard_bytes):
        record = read_mutated(tmp_path, shard_bytes)
        assert record == canonical_record()

    def test_every_truncation_refused(self, tmp_path, shard_bytes):
        for length in range(len(shard_bytes)):
            with pytest.raises(ArchiveError):
                read_mutated(tmp_path, shard_bytes[:length])

    def test_every_byte_flip_detected_or_harmless(self, tmp_path, shard_bytes):
        # One deterministically-chosen bit per byte position covers the
        # whole file, header included (v2's CRC spans the header).  A
        # flip in the deflate stream's padding bits can leave the
        # decompressed payload byte-identical — zlib does not checksum
        # padding — so the enforceable guarantee is: ArchiveError, or a
        # decode equal to the canonical record.  Never a different one.
        rng = derive_rng(20220304, "fuzz", "bitflip")
        survivors = 0
        for position in range(len(shard_bytes)):
            mutated = bytearray(shard_bytes)
            mutated[position] ^= 1 << int(rng.integers(8))
            assert bytes(mutated) != shard_bytes
            try:
                record = read_mutated(tmp_path, bytes(mutated))
            except ArchiveError:
                continue
            assert record == canonical_record()
            survivors += 1
        # Padding is a handful of bits per deflate stream (v3 has two:
        # summary + columns); essentially the whole file must be
        # covered by some integrity check.
        assert survivors <= 4

    def test_every_header_bit_flip_refused(self, tmp_path, shard_bytes):
        for position in range(40):  # the packed v3 header
            for bit in range(8):
                mutated = bytearray(shard_bytes)
                mutated[position] ^= 1 << bit
                with pytest.raises(ArchiveError):
                    read_mutated(tmp_path, bytes(mutated))

    def test_trailing_garbage_refused(self, tmp_path, shard_bytes):
        # zlib.decompress would silently ignore trailing bytes; the
        # reader must not (a splice could otherwise hide real damage).
        rng = derive_rng(20220304, "fuzz", "splice")
        for extra in (1, 7, 64):
            garbage = bytes(rng.integers(0, 256, size=extra, dtype="uint8"))
            with pytest.raises(ArchiveError):
                read_mutated(tmp_path, shard_bytes + garbage)

    def test_random_insertions_refused(self, tmp_path, shard_bytes):
        rng = derive_rng(20220304, "fuzz", "insert")
        for _ in range(64):
            position = int(rng.integers(len(shard_bytes) + 1))
            payload = bytes(rng.integers(0, 256, size=3, dtype="uint8"))
            mutated = shard_bytes[:position] + payload + shard_bytes[position:]
            with pytest.raises(ArchiveError):
                read_mutated(tmp_path, mutated)

    def test_cross_splice_refused(self, tmp_path, shard_bytes):
        # Overwrite a window with bytes from elsewhere in the file.
        rng = derive_rng(20220304, "fuzz", "crossover")
        for _ in range(64):
            size = int(rng.integers(1, 16))
            src = int(rng.integers(len(shard_bytes) - size))
            dst = int(rng.integers(len(shard_bytes) - size))
            mutated = bytearray(shard_bytes)
            mutated[dst:dst + size] = shard_bytes[src:src + size]
            if bytes(mutated) == shard_bytes:
                continue
            with pytest.raises(ArchiveError):
                read_mutated(tmp_path, bytes(mutated))
