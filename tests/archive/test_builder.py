"""Tests for repro.archive.builder: incremental, resumable, parallel builds."""

import datetime as dt
import hashlib
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.archive import ArchiveBuilder, standard_plan_dates
from repro.archive.builder import RECENT_DAILY_START, _segments, shard_filename
from repro.archive.manifest import Manifest
from repro.errors import ArchiveError
from repro.sim import ConflictScenarioConfig
from repro.timeline import STUDY_END, STUDY_START

START = dt.date(2022, 2, 20)
MID = dt.date(2022, 2, 25)
END = dt.date(2022, 3, 3)


def archive_digest(directory) -> str:
    """SHA-256 over every file (name + bytes) in an archive directory."""
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode("utf-8"))
        digest.update(pathlib.Path(directory, name).read_bytes())
    return digest.hexdigest()


class TestPlanHelpers:
    def test_standard_plan_bounds(self):
        dates = standard_plan_dates(60)
        assert dates[0] == STUDY_START
        assert dates[-1] == STUDY_END
        # The conflict window is covered daily regardless of cadence.
        day = RECENT_DAILY_START
        while day <= STUDY_END:
            assert day in dates
            day += dt.timedelta(days=1)

    def test_standard_plan_bad_cadence(self):
        with pytest.raises(ArchiveError):
            standard_plan_dates(0)

    def test_segments_split_on_stride_change(self):
        dates = [
            dt.date(2022, 1, 1),
            dt.date(2022, 1, 8),
            dt.date(2022, 1, 15),
            dt.date(2022, 2, 1),
            dt.date(2022, 2, 2),
            dt.date(2022, 2, 3),
        ]
        runs = _segments(dates)
        assert (dt.date(2022, 1, 1), dt.date(2022, 1, 15), 7) in runs
        assert (dt.date(2022, 2, 1), dt.date(2022, 2, 3), 1) in runs
        covered = set()
        for run_start, run_end, stride in runs:
            day = run_start
            while day <= run_end:
                covered.add(day)
                day += dt.timedelta(days=stride)
        assert covered == set(dates)

    def test_segments_single_date(self):
        assert _segments([dt.date(2022, 1, 1)]) == [
            (dt.date(2022, 1, 1), dt.date(2022, 1, 1), 1)
        ]


class TestIncrementalBuild:
    def test_build_then_noop(self, tmp_path, archive_config):
        builder = ArchiveBuilder(str(tmp_path / "arch"), archive_config)
        report = builder.build(START, END)
        wanted = (END - START).days + 1
        assert len(report.written) == wanted
        assert report.skipped == []
        assert report.bytes_written > 0
        again = builder.build(START, END)
        assert again.written == []
        assert len(again.skipped) == wanted
        assert again.bytes_written == 0

    def test_extension_writes_only_missing(self, tmp_path, archive_config):
        directory = str(tmp_path / "arch")
        ArchiveBuilder(directory, archive_config).build(START, MID)
        report = ArchiveBuilder(directory, archive_config).build(START, END)
        assert report.written == [
            MID + dt.timedelta(days=offset)
            for offset in range(1, (END - MID).days + 1)
        ]
        manifest = Manifest.load(directory)
        assert len(manifest.covered_dates()) == (END - START).days + 1

    def test_shard_files_match_manifest(self, tmp_path, archive_config):
        directory = tmp_path / "arch"
        ArchiveBuilder(str(directory), archive_config).build(START, MID)
        manifest = Manifest.load(str(directory))
        for date, entry in manifest.days.items():
            assert entry.file == shard_filename(date)
            assert (directory / entry.file).stat().st_size == entry.bytes


class TestResumeByteIdentity:
    """Interrupted-then-continued builds converge on identical bytes."""

    def test_two_phase_build_equals_single_build(self, tmp_path, archive_config):
        single = str(tmp_path / "single")
        ArchiveBuilder(single, archive_config).build(START, END)
        resumed = str(tmp_path / "resumed")
        ArchiveBuilder(resumed, archive_config).build(START, MID)
        ArchiveBuilder(resumed, archive_config).build(START, END)
        assert archive_digest(resumed) == archive_digest(single)

    def test_orphan_shard_is_adopted(self, tmp_path, archive_config):
        """A written-but-unregistered shard (mid-segment kill) is rebuilt over."""
        single = str(tmp_path / "single")
        ArchiveBuilder(single, archive_config).build(START, END)
        torn = str(tmp_path / "torn")
        ArchiveBuilder(torn, archive_config).build(START, END)
        # Forget the last day in the manifest but leave its shard file on
        # disk — exactly what dying between write_shard and manifest.save
        # leaves behind.
        manifest = Manifest.load(torn)
        del manifest.days[END]
        manifest.save(torn)
        ArchiveBuilder(torn, archive_config).build(START, END)
        assert archive_digest(torn) == archive_digest(single)

    def test_parallel_build_equals_serial(self, tmp_path, archive_config):
        serial = str(tmp_path / "serial")
        ArchiveBuilder(serial, archive_config).build(START, END)
        parallel = str(tmp_path / "parallel")
        ArchiveBuilder(
            parallel, archive_config, workers=2, chunk_days=3
        ).build(START, END)
        assert archive_digest(parallel) == archive_digest(serial)


class TestKillAndResume:
    """A hard kill at a chunk_days boundary resumes without loss or dupes.

    The scenario the ``chunk_days``/resume interaction must survive: the
    parent flushes the manifest only after a whole segment, so a build
    killed after N days (a chunk boundary, with more chunks to go) leaves
    N complete shard files the manifest never recorded.  The resume must
    adopt those orphans (no re-sweep, no duplicate days), sweep exactly
    the remainder, and converge on bytes identical to an uninterrupted
    build.
    """

    def test_resume_after_kill_at_chunk_boundary(self, tmp_path, archive_config):
        single = str(tmp_path / "single")
        ArchiveBuilder(single, archive_config).build(START, END)

        killed = str(tmp_path / "killed")
        script = textwrap.dedent(
            f"""
            import datetime as dt
            import os
            import repro.archive.builder as builder_mod
            from repro.archive import ArchiveBuilder
            from repro.sim import ConflictScenarioConfig

            state = {{"days": 0}}
            original = builder_mod.ArchiveShardReducer.reduce_day

            def dying(self, snapshot):
                info = original(self, snapshot)
                state["days"] += 1
                if state["days"] == 4:  # chunk_days=2: a chunk boundary
                    os._exit(17)
                return info

            builder_mod.ArchiveShardReducer.reduce_day = dying
            config = ConflictScenarioConfig(scale=5000.0, with_pki=False)
            ArchiveBuilder({killed!r}, config, chunk_days=2).build(
                dt.date({START.year}, {START.month}, {START.day}),
                dt.date({END.year}, {END.month}, {END.day}),
            )
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "..", "src"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 17, result.stderr
        # The kill left complete-but-unregistered shards behind: the
        # parent died before its first segment-boundary manifest flush.
        on_disk = [
            name for name in os.listdir(killed) if name.endswith(".shard")
        ]
        assert len(on_disk) == 4
        assert not os.path.exists(os.path.join(killed, "manifest.json"))

        report = ArchiveBuilder(killed, archive_config).build(START, END)
        # Orphans were adopted (verified, registered), not re-swept...
        assert report.adopted
        assert not set(report.adopted) & set(report.written)
        assert not set(report.adopted) & set(report.skipped)
        # ...the manifest covers every wanted day exactly once...
        wanted = {
            START + dt.timedelta(days=offset)
            for offset in range((END - START).days + 1)
        }
        assert set(Manifest.load(killed).covered_dates()) == wanted
        # ...and the bytes converge on the uninterrupted build.
        assert archive_digest(killed) == archive_digest(single)

    def test_adoption_refuses_wrong_population(self, tmp_path, archive_config):
        """A foreign shard at the right path is rebuilt over, not adopted."""
        import shutil

        from repro.sim import ConflictScenarioConfig

        directory = str(tmp_path / "arch")
        builder = ArchiveBuilder(directory, archive_config)
        builder.build(START, START)
        # Drop the day from the manifest and replace its shard with one
        # from a different-scale scenario (valid CRC, wrong population).
        foreign_dir = str(tmp_path / "foreign")
        foreign = ArchiveBuilder(
            foreign_dir, ConflictScenarioConfig(scale=20000.0, with_pki=False)
        )
        foreign.build(START, START)
        manifest = Manifest.load(directory)
        del manifest.days[START]
        manifest.save(directory)
        shutil.copy(
            os.path.join(foreign_dir, shard_filename(START)),
            os.path.join(directory, shard_filename(START)),
        )
        report = ArchiveBuilder(directory, archive_config).build(START, START)
        assert report.adopted == []
        assert report.written == [START]
        entry = Manifest.load(directory).days[START]
        reference = ArchiveBuilder(
            str(tmp_path / "ref"), archive_config
        ).build(START, START)
        assert entry.bytes == reference.bytes_written


class TestRefusals:
    def test_scenario_mismatch_refused(self, tmp_path, archive_config):
        directory = str(tmp_path / "arch")
        ArchiveBuilder(directory, archive_config).build(START, MID)
        other = ConflictScenarioConfig(scale=2500.0, with_pki=False)
        with pytest.raises(ArchiveError, match="different scenario"):
            ArchiveBuilder(directory, other).build(START, END)

    def test_collector_params_mismatch_refused(self, tmp_path, archive_config):
        directory = str(tmp_path / "arch")
        ArchiveBuilder(directory, archive_config).build(START, MID)
        with pytest.raises(ArchiveError, match="outage parameters"):
            ArchiveBuilder(directory, archive_config, collector_seed=8).build(
                START, END
            )

    def test_bad_ranges_rejected(self, tmp_path, archive_config):
        builder = ArchiveBuilder(str(tmp_path / "arch"), archive_config)
        with pytest.raises(ArchiveError):
            builder.build(END, START)
        with pytest.raises(ArchiveError):
            builder.build(START, END, step=0)
        with pytest.raises(ArchiveError):
            builder.build_standard(cadence_days=0)
