"""Tests for repro.archive.shard: round-trips, corruption, materialisation."""

import datetime as dt
import struct
import zlib

import pytest

from repro.archive.shard import (
    SHARD_MAGIC,
    SHARD_VERSION,
    DayShardRecord,
    read_shard,
    read_summary,
    write_shard,
)
from repro.archive.summary import DaySummary
from repro.dns.name import DomainName
from repro.errors import ArchiveError
from repro.measurement.fast import FastCollector

_HEADER = struct.Struct("<8sHHIIIQ")


def record(**overrides):
    """A small hand-built day shard (includes a punycode .рф domain)."""
    defaults = dict(
        date=dt.date(2022, 3, 4),
        epoch_start_day=1720,
        population_size=10,
        measured=[1, 4, 7],
        dns_ids=[2, 2, 5],
        hosting_ids=[3, 1, 3],
        dns_plan_ns={
            2: (("ns1.reg.ru", "ns2.reg.ru"), (101, 102)),
            5: (("alice.ns.cloudflare.com",), (250,)),
        },
        domains=["a.ru", "b.ru", "xn--e1afmkfd.xn--p1ai"],
        apex=[(11,), (12, 13), ()],
    )
    defaults.update(overrides)
    built = DayShardRecord(**defaults)
    built.summary = DaySummary(
        built.date, built.epoch_start_day, len(built.measured),
        (1, 1, 1), (2, 1, 0), (3, 0, 0),
        {"ru": 2, "xn--p1ai": 1}, {13335: 1, 197695: 2}, (0, 1, 0), 2,
    )
    return built


class TestRecordValidation:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ArchiveError, match="dns_ids"):
            record(dns_ids=[2, 2])

    def test_missing_plan_rejected(self):
        with pytest.raises(ArchiveError, match="dns plans missing"):
            record(dns_ids=[2, 2, 9])

    def test_equality_is_content_based(self):
        assert record() == record()
        assert record() != record(hosting_ids=[3, 1, 4])


class TestRoundTrip:
    def test_write_read_equal(self, tmp_path):
        original = record()
        path = str(tmp_path / "day.shard")
        file_bytes, crc = write_shard(path, original)
        assert file_bytes == (tmp_path / "day.shard").stat().st_size
        loaded = read_shard(path, expected_crc=crc)
        assert loaded == original
        assert loaded.key() == original.key()

    def test_bytes_deterministic(self, tmp_path):
        write_shard(str(tmp_path / "a.shard"), record())
        write_shard(str(tmp_path / "b.shard"), record())
        assert (tmp_path / "a.shard").read_bytes() == (
            tmp_path / "b.shard"
        ).read_bytes()

    def test_no_temp_files_left(self, tmp_path):
        write_shard(str(tmp_path / "day.shard"), record())
        assert [p.name for p in tmp_path.iterdir()] == ["day.shard"]

    def test_punycode_domain_survives(self, tmp_path):
        path = str(tmp_path / "day.shard")
        write_shard(path, record())
        loaded = read_shard(path)
        measurement = loaded.measurement_for(7)
        assert measurement.domain == DomainName.parse("пример.рф")
        assert str(measurement.domain) == "xn--e1afmkfd.xn--p1ai"
        assert measurement.domain_index == 7
        assert measurement.ns_names == ("alice.ns.cloudflare.com",)
        assert measurement.apex_addresses == ()

    def test_measurement_columns(self, tmp_path):
        path = str(tmp_path / "day.shard")
        write_shard(path, record())
        loaded = read_shard(path)
        first = loaded.measurement_at(0)
        assert first.domain == DomainName.parse("a.ru")
        assert first.ns_names == ("ns1.reg.ru", "ns2.reg.ru")
        assert first.ns_addresses == (101, 102)
        assert first.apex_addresses == (11,)
        assert len(list(loaded.measurements())) == 3
        with pytest.raises(ArchiveError, match="not measured"):
            loaded.measurement_for(2)


class TestSummaryBlock:
    """Format v3's pre-aggregated summary block and the v2 fallback."""

    def test_summary_round_trips(self, tmp_path):
        original = record()
        path = str(tmp_path / "day.shard")
        _, crc = write_shard(path, original)
        assert read_shard(path, expected_crc=crc).summary == original.summary

    def test_partial_read_returns_summary(self, tmp_path):
        original = record()
        path = str(tmp_path / "day.shard")
        file_bytes, crc = write_shard(path, original)
        summary, bytes_read = read_summary(path, expected_crc=crc)
        assert summary == original.summary
        # The whole point: the per-domain columns are never read.
        assert bytes_read < file_bytes

    def test_v2_still_writable_and_readable(self, tmp_path):
        original = record()
        path = str(tmp_path / "day.shard")
        _, crc = write_shard(path, original, version=2)
        loaded = read_shard(path, expected_crc=crc)
        assert loaded == original
        assert loaded.summary is None

    def test_v2_partial_read_has_no_summary(self, tmp_path):
        path = str(tmp_path / "day.shard")
        _, crc = write_shard(path, record(), version=2)
        summary, _ = read_summary(path, expected_crc=crc)
        assert summary is None

    def test_v3_requires_summary(self, tmp_path):
        bare = record()
        bare.summary = None
        with pytest.raises(ArchiveError, match="requires a DaySummary"):
            write_shard(str(tmp_path / "day.shard"), bare)

    def test_partial_read_checks_manifest_crc(self, tmp_path):
        path = str(tmp_path / "day.shard")
        _, crc = write_shard(path, record())
        with pytest.raises(ArchiveError, match="does not match the manifest"):
            read_summary(path, expected_crc=crc ^ 1)

    def test_corrupt_summary_block_detected(self, tmp_path):
        path = tmp_path / "day.shard"
        _, crc = write_shard(str(path), record())
        blob = bytearray(path.read_bytes())
        blob[45] ^= 0xFF  # inside the compressed summary block
        path.write_bytes(bytes(blob))
        with pytest.raises(ArchiveError):
            read_summary(str(path), expected_crc=crc)
        with pytest.raises(ArchiveError):
            read_shard(str(path), expected_crc=crc)


class TestCorruption:
    def test_flipped_payload_byte_detected(self, tmp_path):
        path = tmp_path / "day.shard"
        write_shard(str(path), record())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArchiveError):
            read_shard(str(path))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "day.shard"
        write_shard(str(path), record())
        path.write_bytes(path.read_bytes()[: _HEADER.size - 2])
        with pytest.raises(ArchiveError, match="shorter than its header"):
            read_shard(str(path))

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "day.shard"
        write_shard(str(path), record())
        blob = bytearray(path.read_bytes())
        blob[:8] = b"NOTASHRD"
        path.write_bytes(bytes(blob))
        with pytest.raises(ArchiveError, match="bad magic"):
            read_shard(str(path))

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "day.shard"
        write_shard(str(path), record())
        blob = bytearray(path.read_bytes())
        _, _, flags, ordinal, count, crc, length = _HEADER.unpack_from(blob)
        blob[: _HEADER.size] = _HEADER.pack(
            SHARD_MAGIC, SHARD_VERSION + 1, flags, ordinal, count, crc, length
        )
        path.write_bytes(bytes(blob))
        with pytest.raises(ArchiveError, match="format version"):
            read_shard(str(path))

    def test_manifest_crc_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "day.shard")
        _, crc = write_shard(path, record())
        with pytest.raises(ArchiveError, match="does not match the manifest"):
            read_shard(path, expected_crc=crc ^ 1)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArchiveError, match="cannot read shard"):
            read_shard(str(tmp_path / "absent.shard"))


class TestFromSnapshot:
    """Columnarising a live snapshot must reproduce its measurements."""

    def test_snapshot_roundtrip(self, tmp_path, tiny_world):
        from repro.archive.kernel import summarize_snapshot

        snapshot = FastCollector(tiny_world).collect("2022-03-04")
        built = DayShardRecord.from_snapshot(snapshot)
        built.summary = summarize_snapshot(snapshot)
        path = str(tmp_path / "day.shard")
        write_shard(path, built)
        loaded = read_shard(path)
        assert loaded == built
        assert loaded.population_size == len(tiny_world.population)
        assert loaded.epoch_start_day == snapshot.epoch.start_day
        for domain_index in loaded.measured[:20]:
            assert loaded.measurement_for(domain_index) == (
                snapshot.measurement_for(domain_index)
            )

    def test_caches_are_reused(self, tiny_world):
        apex_cache, plan_cache = {}, {}
        first = DayShardRecord.from_snapshot(
            FastCollector(tiny_world).collect("2022-03-04"), apex_cache, plan_cache
        )
        assert apex_cache and plan_cache
        again = DayShardRecord.from_snapshot(
            FastCollector(tiny_world).collect("2022-03-04"), apex_cache, plan_cache
        )
        assert again == first
