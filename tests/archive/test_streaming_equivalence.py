"""Streaming shard builds must be byte-identical to whole-day builds.

The claim under test is the tentpole invariant of the bounded-memory
build path: for any day and any chunk size, ``write_shard_stream`` over
a :class:`DayStream` produces the same file — every byte, both CRCs —
as ``write_shard`` over the materialised :class:`DayShardRecord`, and
the chunked :func:`summarize_snapshot` produces the same
:class:`DaySummary` as the one-shot aggregation.  Three layers:

* property-based (hypothesis, derandomised): random synthetic
  populations — ``.рф``/punycode domains included — streamed at random
  chunk sizes against the one-shot writer;
* real snapshots: live collector days (an outage day included) through
  ``DayStream.from_snapshot`` at several chunk sizes;
* end-to-end: a full ``ArchiveBuilder`` run with ``chunk_domains`` set
  against a plain build — identical manifests and shard CRCs, proven
  over the whole directory digest.
"""

import datetime as dt
import hashlib
import os
import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.archive import ArchiveBuilder
from repro.archive.kernel import summarize_snapshot
from repro.archive.manifest import Manifest
from repro.archive.shard import DayShardRecord, read_shard, write_shard
from repro.archive.stream import DayStream, write_shard_stream
from repro.archive.summary import DaySummary
from repro.errors import ArchiveError
from repro.measurement.fast import FastCollector

FUZZ = settings(
    derandomize=True,
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

#: Chunk sizes that cross every interesting boundary: single-domain,
#: prime mid-size, larger-than-any-test-day.
CHUNK_SIZES = (1, 7, 500, 10**9)


def archive_digest(directory) -> str:
    """SHA-256 over every file (name + bytes) in an archive directory."""
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode("utf-8"))
        digest.update(pathlib.Path(directory, name).read_bytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Synthetic day records (hypothesis)
# ----------------------------------------------------------------------

_ascii_labels = st.text(alphabet="abcdefgh", min_size=1, max_size=8)
#: Cyrillic labels rendered the way the registry stores them: punycode.
_punycode_labels = st.text(alphabet="абвгдежз", min_size=1, max_size=6).map(
    lambda word: "xn--" + word.encode("punycode").decode("ascii")
)
_domains = st.tuples(
    _ascii_labels | _punycode_labels,
    st.sampled_from(["ru", "su", "xn--p1ai"]),
).map(lambda parts: f"{parts[0]}.{parts[1]}")

_apex_runs = st.frozensets(
    st.integers(min_value=0, max_value=2**20), max_size=4
).map(lambda addresses: tuple(sorted(addresses)))


@st.composite
def day_records(draw):
    """A valid, summary-bearing DayShardRecord with random content."""
    count = draw(st.integers(min_value=0, max_value=24))
    population_size = count + draw(st.integers(min_value=1, max_value=12))
    measured = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=population_size - 1),
                min_size=count,
                max_size=count,
            )
        )
    )
    plan_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=5), min_size=count, max_size=count
        )
    )
    plan_table = {
        plan_id: (
            (f"ns{plan_id}.reg.ru", f"ns{plan_id}.reg.com"),
            (1000 + plan_id, 2000 + plan_id),
        )
        for plan_id in set(plan_ids)
    }
    record = DayShardRecord(
        date=dt.date(2022, 2, 1) + dt.timedelta(
            days=draw(st.integers(min_value=0, max_value=120))
        ),
        epoch_start_day=draw(st.integers(min_value=0, max_value=3000)),
        population_size=population_size,
        measured=measured,
        dns_ids=plan_ids,
        hosting_ids=draw(
            st.lists(
                st.integers(min_value=0, max_value=9),
                min_size=count,
                max_size=count,
            )
        ),
        dns_plan_ns=plan_table,
        domains=draw(
            st.lists(_domains, min_size=count, max_size=count)
        ),
        apex=draw(st.lists(_apex_runs, min_size=count, max_size=count)),
    )
    record.summary = DaySummary(
        record.date, record.epoch_start_day, count,
        (count, 0, 0), (0, count, 0), (0, 0, count),
        {"ru": count}, {197695: count}, (0, 0, 0), 0,
    )
    return record


def fixed_record() -> DayShardRecord:
    """A small deterministic record for the non-property cases."""
    record = DayShardRecord(
        date=dt.date(2022, 3, 4),
        epoch_start_day=1720,
        population_size=10,
        measured=[1, 4, 7],
        dns_ids=[2, 2, 5],
        hosting_ids=[3, 1, 3],
        dns_plan_ns={
            2: (("ns1.reg.ru", "ns2.reg.ru"), (101, 102)),
            5: (("alice.ns.cloudflare.com",), (250,)),
        },
        domains=["a.ru", "b.ru", "xn--e1afmkfd.xn--p1ai"],
        apex=[(11,), (12, 13), ()],
    )
    record.summary = DaySummary(
        record.date, record.epoch_start_day, 3,
        (1, 1, 1), (2, 1, 0), (3, 0, 0),
        {"ru": 2, "xn--p1ai": 1}, {13335: 1, 197695: 2}, (0, 1, 0), 2,
    )
    return record


class TestSyntheticStreams:
    """Property: streamed bytes == one-shot bytes, any chunk size."""

    @FUZZ
    @given(record=day_records(), chunk=st.integers(min_value=1, max_value=64))
    def test_streamed_bytes_identical(self, record, chunk):
        with tempfile.TemporaryDirectory() as scratch:
            whole = os.path.join(scratch, "whole.shard")
            streamed = os.path.join(scratch, "streamed.shard")
            whole_result = write_shard(whole, record)
            stream_result = write_shard_stream(
                streamed, DayStream.from_record(record), chunk_domains=chunk
            )
            assert stream_result == whole_result
            assert (
                pathlib.Path(streamed).read_bytes()
                == pathlib.Path(whole).read_bytes()
            )

    @FUZZ
    @given(record=day_records(), chunk=st.integers(min_value=1, max_value=64))
    def test_streamed_file_round_trips(self, record, chunk):
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, "day.shard")
            _, crc = write_shard_stream(
                path, DayStream.from_record(record), chunk_domains=chunk
            )
            loaded = read_shard(path, expected_crc=crc)
            assert loaded == record
            assert loaded.summary == record.summary

    def test_stream_requires_summary(self):
        record = fixed_record()
        record.summary = None
        with pytest.raises(ArchiveError, match="requires a DaySummary"):
            DayStream.from_record(record)

    def test_bad_chunk_size_rejected(self, tmp_path):
        record = fixed_record()
        stream = DayStream.from_record(record)
        with pytest.raises(ArchiveError, match="chunk_domains"):
            write_shard_stream(
                str(tmp_path / "day.shard"), stream, chunk_domains=0
            )

    def test_default_chunk_size_identical(self, tmp_path):
        record = fixed_record()
        write_shard(str(tmp_path / "whole.shard"), record)
        write_shard_stream(
            str(tmp_path / "streamed.shard"), DayStream.from_record(record)
        )
        assert (tmp_path / "streamed.shard").read_bytes() == (
            tmp_path / "whole.shard"
        ).read_bytes()

    def test_no_temp_files_left(self, tmp_path):
        record = fixed_record()
        write_shard_stream(
            str(tmp_path / "day.shard"), DayStream.from_record(record)
        )
        assert [p.name for p in tmp_path.iterdir()] == ["day.shard"]


# ----------------------------------------------------------------------
# Real snapshots
# ----------------------------------------------------------------------

#: A routine conflict-window day plus an outage day (reduced coverage).
SNAPSHOT_DATES = ("2022-03-04", "2021-03-22")


class TestChunkedSummaries:
    """Chunked aggregation == one-shot aggregation, exactly."""

    @pytest.mark.parametrize("date", SNAPSHOT_DATES)
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_summary_identical(self, tiny_world, date, chunk):
        snapshot = FastCollector(tiny_world).collect(date)
        assert summarize_snapshot(snapshot, chunk_domains=chunk) == (
            summarize_snapshot(snapshot)
        )

    def test_bad_chunk_rejected(self, tiny_world):
        snapshot = FastCollector(tiny_world).collect("2022-03-04")
        with pytest.raises(ArchiveError, match="chunk_domains"):
            summarize_snapshot(snapshot, chunk_domains=0)


class TestSnapshotStreams:
    """DayStream.from_snapshot streams real days byte-identically."""

    @pytest.mark.parametrize("date", SNAPSHOT_DATES)
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_streamed_snapshot_identical(self, tiny_world, tmp_path, date, chunk):
        snapshot = FastCollector(tiny_world).collect(date)
        record = DayShardRecord.from_snapshot(snapshot)
        record.summary = summarize_snapshot(snapshot)
        whole = tmp_path / "whole.shard"
        streamed = tmp_path / "streamed.shard"
        whole_result = write_shard(str(whole), record)
        stream = DayStream.from_snapshot(snapshot, chunk_domains=chunk)
        stream_result = write_shard_stream(
            str(streamed), stream, chunk_domains=chunk
        )
        assert stream_result == whole_result
        assert streamed.read_bytes() == whole.read_bytes()

    def test_stream_caches_are_shared(self, tiny_world):
        """from_snapshot reuses the reducer's apex/plan caches."""
        apex_cache, plan_cache = {}, {}
        snapshot = FastCollector(tiny_world).collect("2022-03-04")
        stream = DayStream.from_snapshot(snapshot, apex_cache, plan_cache)
        stream.apex_chunk(0, len(stream))
        assert apex_cache and plan_cache


# ----------------------------------------------------------------------
# End-to-end builder equivalence
# ----------------------------------------------------------------------

START = dt.date(2022, 2, 20)
END = dt.date(2022, 3, 3)


class TestBuilderEquivalence:
    """Archives built with chunk_domains match plain builds exactly."""

    @pytest.fixture(scope="class")
    def equivalent_archives(self, tmp_path_factory, archive_config):
        base = tmp_path_factory.mktemp("stream-equiv")
        whole = str(base / "whole")
        streamed = str(base / "streamed")
        ArchiveBuilder(whole, archive_config).build(START, END)
        ArchiveBuilder(
            streamed, archive_config, chunk_domains=500
        ).build(START, END)
        return whole, streamed

    def test_directory_digest_identical(self, equivalent_archives):
        whole, streamed = equivalent_archives
        assert archive_digest(streamed) == archive_digest(whole)

    def test_manifest_crcs_identical(self, equivalent_archives):
        whole, streamed = equivalent_archives
        whole_manifest = Manifest.load(whole)
        stream_manifest = Manifest.load(streamed)
        assert set(stream_manifest.days) == set(whole_manifest.days)
        for date, entry in whole_manifest.days.items():
            other = stream_manifest.days[date]
            assert (other.crc32, other.bytes, other.records) == (
                entry.crc32, entry.bytes, entry.records
            )

    def test_streamed_archive_reads_identically(self, equivalent_archives):
        from repro.archive import MeasurementArchive

        whole, streamed = equivalent_archives
        whole_archive = MeasurementArchive(whole)
        stream_archive = MeasurementArchive(streamed)
        assert stream_archive.load_range(START, END) == (
            whole_archive.load_range(START, END)
        )
        assert stream_archive.load_summaries(START, END) == (
            whole_archive.load_summaries(START, END)
        )
