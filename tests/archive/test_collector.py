"""Archive-backed experiments must be bit-identical to live simulation."""

import datetime
import shutil

import pytest

from repro.archive import ArchiveCollector, MeasurementArchive
from repro.errors import AnalysisError, ArchiveError
from repro.experiments import ExperimentContext, run_experiment
from repro.measurement.fast import DEFAULT_OUTAGE_DATES


def sweep_series_equal(a, b):
    """Assert two SweepSeries are bit-identical."""
    for attr in ("ns_composition", "hosting_composition", "tld_composition"):
        pa, pb = getattr(a, attr).points(), getattr(b, attr).points()
        assert len(pa) == len(pb)
        for x, y in zip(pa, pb):
            assert (x.date, x.full, x.part, x.non) == (
                y.date, y.full, y.part, y.non,
            )
    sa, sb = list(a.tld_shares), list(b.tld_shares)
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert (x.date, x.total, x.counts) == (y.date, y.total, y.counts)


class TestBitIdenticalResults:
    """The acceptance bar: replayed figures render byte-for-byte the same."""

    @pytest.mark.parametrize("experiment_id", ["fig1", "headline", "fig4", "fig5"])
    def test_renders_identical(self, experiment_id, live_context, archive_context):
        live = run_experiment(experiment_id, live_context)
        archived = run_experiment(experiment_id, archive_context)
        assert archived.render() == live.render()
        assert archived.measured == live.measured

    def test_full_sweep_series_identical(self, live_context, archive_context):
        sweep_series_equal(live_context.api.full_sweep(), archive_context.api.full_sweep())

    def test_recent_window_identical(self, live_context, archive_context):
        live = list(live_context.recent_asn_shares())
        archived = list(archive_context.recent_asn_shares())
        assert len(live) == len(archived)
        for x, y in zip(live, archived):
            assert (x.date, x.total, x.counts) == (y.date, y.total, y.counts)
        assert (
            live_context.recent_listed_counts()
            == archive_context.recent_listed_counts()
        )

    def test_measurements_identical(self, live_context, archive_context):
        """Per-domain records materialised from shard columns match the world."""
        live = live_context.collector.collect("2022-03-04")
        archived = archive_context.collector.collect("2022-03-04")
        assert list(archived.measured) == list(live.measured)
        for domain_index in list(archived.measured)[:25]:
            assert archived.measurement_for(domain_index) == (
                live.measurement_for(domain_index)
            )


class TestCollectorInterface:
    def test_outage_params_come_from_manifest(self, archive_context):
        collector = archive_context.collector
        assert isinstance(collector, ArchiveCollector)
        assert collector.outage_dates == DEFAULT_OUTAGE_DATES
        assert collector.seed == 7

    def test_records_interface(self, archive_context):
        records = archive_context.collector.records("2022-03-04")
        assert records
        sample = records[0]
        assert sample.domain_index is not None
        assert sample.ns_names == tuple(sorted(sample.ns_names))

    def test_metrics_wired(self, archive_config, built_archive):
        context = ExperimentContext(
            config=archive_config, cadence_days=60, archive=built_archive
        )
        context.api.full_sweep()
        assert context.metrics.get_phase("archive_read") is not None
        summary = context.metrics.summary()
        # Coarse sweeps run on the summary kernel (partial shard reads).
        assert "archive_summaries" in summary["caches"]
        assert summary["phases"]["archive_read"]["bytes"] > 0
        # Domain-level access still goes through the shard LRU.
        context.collector.records("2022-03-04")
        assert "archive_shards" in context.metrics.summary()["caches"]

    def test_archive_instance_accepted(self, archive_config, built_archive):
        archive = MeasurementArchive(built_archive)
        context = ExperimentContext(
            config=archive_config, cadence_days=60, archive=archive
        )
        assert context.archive is archive
        # The context attaches its own metrics to an unmetered archive.
        assert archive.metrics is context.metrics


class TestRefusals:
    def test_uncovered_date_refused(self, archive_config, built_archive):
        """A finer cadence than the archive was built for must not silently thin."""
        context = ExperimentContext(
            config=archive_config, cadence_days=7, archive=built_archive
        )
        with pytest.raises(ArchiveError, match="does not cover"):
            context.api.full_sweep()

    def test_scenario_mismatch_refused_at_open(self, built_archive):
        from repro.scenario import ScenarioSpec

        mismatched = ScenarioSpec.resolve("baseline").with_config(
            scale=2500.0, with_pki=False
        )
        with pytest.raises(ArchiveError, match="different scenario"):
            ExperimentContext(scenario=mismatched, archive=built_archive)

    def test_world_and_archive_both_refused(self, tiny_world, built_archive):
        with pytest.raises(AnalysisError, match="not both"):
            ExperimentContext(world=tiny_world, archive=built_archive)

    def test_population_mismatch_refused(self, tiny_world, built_archive):
        with pytest.raises(ArchiveError, match="does not match the world"):
            ArchiveCollector(MeasurementArchive(built_archive), tiny_world)


class TestVerify:
    def test_clean_archive_verifies(self, built_archive):
        assert MeasurementArchive(built_archive).verify() == []

    def test_corruption_and_orphans_reported(self, tmp_path, built_archive):
        copy = tmp_path / "copy"
        shutil.copytree(built_archive, copy)
        archive = MeasurementArchive(str(copy))
        entry = archive.manifest.days[archive.manifest.covered_dates()[0]]
        shard_path = copy / entry.file
        blob = bytearray(shard_path.read_bytes())
        blob[-1] ^= 0xFF
        shard_path.write_bytes(bytes(blob))
        (copy / "2031-01-01.shard").write_bytes(b"stray")
        problems = MeasurementArchive(str(copy)).verify()
        assert any(entry.file in problem for problem in problems)
        assert any("not listed in the manifest" in problem for problem in problems)

    def test_missing_shard_reported(self, tmp_path, built_archive):
        copy = tmp_path / "copy"
        shutil.copytree(built_archive, copy)
        archive = MeasurementArchive(str(copy))
        entry = archive.manifest.days[archive.manifest.covered_dates()[-1]]
        (copy / entry.file).unlink()
        problems = archive.verify()
        assert any("missing" in problem for problem in problems)


class TestLoadRange:
    """Range reads share the day-shard LRU with single-day reads."""

    def test_range_matches_per_day_loads(self, built_archive):
        archive = MeasurementArchive(built_archive)
        records = archive.load_range("2022-02-24", "2022-02-26")
        assert len(records) == 3
        for offset, record in enumerate(records):
            day = datetime.date(2022, 2, 24 + offset)
            assert record is archive.load_day(day)

    def test_range_step_skips_days(self, built_archive):
        archive = MeasurementArchive(built_archive)
        records = archive.load_range("2022-02-24", "2022-03-02", step=3)
        assert len(records) == 3

    def test_inverted_range_rejected(self, built_archive):
        archive = MeasurementArchive(built_archive)
        with pytest.raises(ArchiveError, match="inverted range"):
            archive.load_range("2022-03-05", "2022-03-01")
        with pytest.raises(ArchiveError, match="step"):
            archive.load_range("2022-03-01", "2022-03-05", step=0)

    def test_uncovered_day_raises(self, built_archive):
        archive = MeasurementArchive(built_archive)
        with pytest.raises(ArchiveError, match="does not cover"):
            archive.load_range("2031-01-01", "2031-01-02")

    def test_concurrent_readers_share_cache(self, built_archive):
        from concurrent.futures import ThreadPoolExecutor

        from repro.measurement.metrics import SweepMetrics

        metrics = SweepMetrics()
        archive = MeasurementArchive(built_archive, metrics=metrics)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(
                    lambda _: archive.load_range("2022-02-24", "2022-02-26"),
                    range(4),
                )
            )
        assert all(result == results[0] for result in results)
        counters = metrics.summary()["caches"]["archive_shards"]
        # 3 distinct days were read from disk exactly once each.
        assert counters["misses"] == 3
        assert counters["hits"] == 9
