"""The columnar kernel must be bit-identical to the record path.

The record-object path (scatter shard columns, rebuild the world, run
the day reducers) is the oracle; the kernel path (per-shard summaries,
no world) must produce byte-for-byte identical query output for every
figure and series it serves — across scales, TLD filters, and the
format-v2 fallback.
"""

import os
import shutil

import numpy as np
import pytest

from repro.archive import (
    ArchiveBuilder,
    MeasurementArchive,
    summarize_snapshot,
)
from repro.archive.shard import encode_shard, read_shard
from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec

#: Must match tests/archive/conftest.py's session fixtures.
CADENCE = 60

EXPERIMENTS = ("fig1", "headline", "fig4", "fig5")
SERIES = (
    "ns_composition",
    "hosting_composition",
    "tld_composition",
    "tld_shares",
    "asn_shares",
    "sanctioned_composition",
    "listed_counts",
)


def downgrade_to_v2(directory: str) -> int:
    """Rewrite every shard of an archive as format v2, fixing the manifest.

    Returns the number of shards rewritten.  This is how the fallback
    tests manufacture a legacy archive from a current build.
    """
    archive = MeasurementArchive(directory)
    rewritten = 0
    for date in archive.manifest.covered_dates():
        entry = archive.manifest.days[date]
        path = os.path.join(directory, entry.file)
        record = read_shard(path, expected_crc=entry.crc32)
        blob, crc = encode_shard(record, version=2)
        with open(path, "wb") as handle:
            handle.write(blob)
        entry.bytes = len(blob)
        entry.crc32 = crc
        rewritten += 1
    archive.manifest.save(directory)
    return rewritten


class TestKernelBitIdentity:
    """Query output through the kernel == query output live, byte for byte."""

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_experiments_identical(self, experiment, live_context, archive_context):
        spec = {"kind": "experiment", "experiment": experiment}
        assert archive_context.api.query_json(spec) == (
            live_context.api.query_json(spec)
        )

    @pytest.mark.parametrize("name", SERIES)
    def test_series_identical(self, name, live_context, archive_context):
        spec = {"kind": "series", "series": name}
        assert archive_context.api.query_json(spec) == (
            live_context.api.query_json(spec)
        )

    def test_headline_identical(self, live_context, archive_context):
        spec = {"kind": "headline"}
        assert archive_context.api.query_json(spec) == (
            live_context.api.query_json(spec)
        )

    @pytest.mark.parametrize("tld", ["ru", "xn--p1ai", "рф"])
    def test_records_tld_filters_identical(self, tld, live_context, archive_context):
        """Domain-level queries (record path) agree under every TLD filter."""
        spec = {"kind": "records", "date": "2022-03-04", "tld": tld, "limit": 25}
        assert archive_context.api.query_json(spec) == (
            live_context.api.query_json(spec)
        )

    def test_stored_summary_matches_recomputation(self, archive_context):
        """A shard's stored summary == summarising its snapshot today."""
        kernel = archive_context.collector.kernel
        stored = kernel.day_summary("2022-03-04")
        recomputed = summarize_snapshot(
            archive_context.collector.collect("2022-03-04")
        )
        assert stored == recomputed


class TestAcrossScales:
    """The equivalence holds at a second population scale."""

    @pytest.fixture(scope="class")
    def small_config(self):
        return ScenarioSpec.resolve("baseline").with_config(
            scale=20000.0, with_pki=False
        ).compile()

    @pytest.fixture(scope="class")
    def small_archive(self, tmp_path_factory, small_config):
        directory = tmp_path_factory.mktemp("kernel-scale") / "arch"
        ArchiveBuilder(str(directory), small_config).build_standard(90)
        return str(directory)

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_experiments_identical(self, experiment, small_config, small_archive):
        live = ExperimentContext(config=small_config, cadence_days=90)
        archived = ExperimentContext(
            config=small_config, cadence_days=90, archive=small_archive
        )
        spec = {"kind": "experiment", "experiment": experiment}
        assert archived.api.query_json(spec) == live.api.query_json(spec)


class TestLazyWorld:
    """Summary-served queries never build the world or decode columns."""

    def test_coarse_queries_leave_world_unbuilt(self, archive_config, built_archive):
        context = ExperimentContext(
            config=archive_config, cadence_days=CADENCE, archive=built_archive
        )
        for experiment in EXPERIMENTS:
            context.api.query({"kind": "experiment", "experiment": experiment})
        for name in SERIES:
            context.api.query({"kind": "series", "series": name})
        context.api.query({"kind": "headline"})
        assert context._world is None
        # Not a single shard's domain-level columns were decoded either.
        assert not context.archive._cache

    def test_records_query_builds_world_on_demand(
        self, archive_config, built_archive
    ):
        context = ExperimentContext(
            config=archive_config, cadence_days=CADENCE, archive=built_archive
        )
        context.api.query({"kind": "records", "date": "2022-03-04", "limit": 1})
        assert context._world is not None


class TestV2Fallback:
    """Legacy (v2) archives stay fully queryable, summaries computed on the fly."""

    @pytest.fixture(scope="class")
    def v2_archive(self, tmp_path_factory, built_archive):
        copy = str(tmp_path_factory.mktemp("kernel-v2") / "arch")
        shutil.copytree(built_archive, copy)
        assert downgrade_to_v2(copy) > 0
        return copy

    def test_v2_archive_verifies_clean(self, v2_archive):
        assert MeasurementArchive(v2_archive).verify() == []

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_v2_experiments_identical(
        self, experiment, archive_config, v2_archive, live_context
    ):
        context = ExperimentContext(
            config=archive_config, cadence_days=CADENCE, archive=v2_archive
        )
        spec = {"kind": "experiment", "experiment": experiment}
        assert context.api.query_json(spec) == live_context.api.query_json(spec)

    def test_v2_summary_computed_on_fly_matches_stored(
        self, archive_config, v2_archive, built_archive
    ):
        v2_context = ExperimentContext(
            config=archive_config, cadence_days=CADENCE, archive=v2_archive
        )
        assert v2_context.archive.load_summary("2022-03-04") is None
        computed = v2_context.collector.kernel.day_summary("2022-03-04")
        stored = MeasurementArchive(built_archive).load_summary("2022-03-04")
        assert stored is not None
        assert computed == stored


class TestPlanZeroSentinel:
    """Unmeasured domains must never alias plan id 0."""

    def test_unmeasured_positions_hold_sentinel(self, archive_context):
        snapshot = archive_context.collector.collect("2022-03-04")
        unmeasured = np.ones(len(snapshot.dns_ids), dtype=bool)
        unmeasured[snapshot.measured] = False
        assert unmeasured.any()  # the population outgrows any one day
        assert (snapshot.dns_ids[unmeasured] == -1).all()
        assert (snapshot.hosting_ids[unmeasured] == -1).all()

    def test_unmeasured_never_counted_as_plan_zero(
        self, live_context, archive_context
    ):
        archived = archive_context.collector.collect("2022-03-04")
        live = live_context.collector.collect("2022-03-04")
        # Plan id 0 is genuinely in use on this day...
        assert (archived.dns_ids[archived.measured] == 0).any()
        # ...and the measured-subset histograms agree exactly.
        assert np.array_equal(
            np.bincount(archived.dns_ids[archived.measured]),
            np.bincount(live.dns_ids[live.measured]),
        )

    def test_full_array_aggregation_is_loud(self, archive_context):
        """Indexing outside ``measured`` fails fast instead of counting 0."""
        snapshot = archive_context.collector.collect("2022-03-04")
        with pytest.raises(ValueError):
            np.bincount(snapshot.dns_ids)


class TestZeroCopyReadPath:
    """Columns decode once, at their final dtype, and are never re-copied."""

    def test_columns_decoded_at_final_dtype(self, built_archive):
        archive = MeasurementArchive(built_archive)
        record = archive.load_day("2022-03-04")
        assert record.measured.dtype == np.int64
        assert record.dns_ids.dtype == np.int32
        assert record.hosting_ids.dtype == np.int32
        # The plan-id columns alias the shard payload buffer (read-only
        # views): decoding them allocated nothing.
        assert not record.dns_ids.flags.writeable
        assert not record.hosting_ids.flags.writeable

    def test_snapshot_reuses_shard_columns(self, archive_context):
        collector = archive_context.collector
        snapshot = collector.collect("2022-03-04")
        record = collector.archive.load_day("2022-03-04")
        assert snapshot.shard is record
        # ``measured`` is handed through without any per-query copy;
        # the only per-snapshot allocations are the scatter buffers.
        assert snapshot.measured is record.measured

    def test_repeat_collects_share_one_decode(self, archive_context):
        collector = archive_context.collector
        first = collector.collect("2022-03-04")
        second = collector.collect("2022-03-04")
        assert first.shard is second.shard
        assert first.measured is second.measured
