"""Exit-code and message pins for ``repro archive verify``/``repair``.

Each corruption class has a contractual exit code and a stable
``[kind]`` tag on stderr (documented in docs/archive.md); these tests
pin them so scripts and CI jobs can branch on them safely.
"""

import json
import os
import shutil

import pytest

from repro.cli import main

#: Small world (1:2500), PKI skipped — matches tests/test_cli.py.
ARGS = ["--scale", "2500", "--no-pki"]
RANGE = ["--start", "2022-03-01", "--end", "2022-03-03", "--step", "1"]


@pytest.fixture(scope="module")
def base_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-exitcodes") / "base"
    assert main(ARGS + ["archive", "build", str(directory)] + RANGE) == 0
    return directory


@pytest.fixture()
def archive_copy(base_archive, tmp_path):
    target = tmp_path / "copy"
    shutil.copytree(base_archive, target)
    return target


def corrupt_payload(directory, day="2022-03-02"):
    path = directory / f"{day}.shard"
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0x20
    path.write_bytes(bytes(blob))
    return path


class TestVerifyExitCodes:
    def test_clean_archive_exits_zero(self, base_archive, capsys):
        assert main(ARGS + ["archive", "verify", str(base_archive)]) == 0
        assert "archive ok" in capsys.readouterr().out

    def test_bit_flip_tagged_corrupt(self, archive_copy, capsys):
        corrupt_payload(archive_copy)
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 1
        err = capsys.readouterr().err
        assert "[corrupt]" in err
        assert "1 problem(s) found" in err

    def test_truncation_tagged(self, archive_copy, capsys):
        path = archive_copy / "2022-03-02.shard"
        path.write_bytes(path.read_bytes()[:-7])
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 1
        err = capsys.readouterr().err
        assert "[truncated]" in err
        assert "manifest says" in err

    def test_missing_shard_tagged(self, archive_copy, capsys):
        os.unlink(archive_copy / "2022-03-02.shard")
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 1
        err = capsys.readouterr().err
        assert "[missing-shard]" in err
        assert "2022-03-02.shard is missing" in err

    def test_stale_manifest_crc_tagged(self, archive_copy, capsys):
        manifest_path = archive_copy / "manifest.json"
        raw = json.loads(manifest_path.read_text())
        raw["days"]["2022-03-02"]["crc32"] ^= 1
        manifest_path.write_text(json.dumps(raw, indent=2, sort_keys=True) + "\n")
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 1
        err = capsys.readouterr().err
        assert "[stale-manifest-crc]" in err
        assert "does not match the manifest" in err

    def test_orphan_tagged(self, archive_copy, capsys):
        (archive_copy / "2022-03-09.shard").write_bytes(b"stray")
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 1
        assert "[orphan]" in capsys.readouterr().err

    def test_no_manifest_exits_four(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(ARGS + ["archive", "verify", str(empty)]) == 4
        assert "no archive manifest" in capsys.readouterr().err


class TestRepairExitCodes:
    def test_repair_restores_and_exits_zero(self, base_archive, archive_copy, capsys):
        damaged = corrupt_payload(archive_copy)
        assert main(ARGS + ["archive", "repair", str(archive_copy)]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 file(s), rebuilt 1 day(s)" in out
        assert damaged.read_bytes() == (
            base_archive / damaged.name
        ).read_bytes()
        assert os.path.exists(str(damaged) + ".quarantined")
        assert main(ARGS + ["archive", "verify", str(archive_copy)]) == 0

    def test_scenario_mismatch_exits_three(self, archive_copy, capsys):
        code = main(
            ["--scale", "5000", "--no-pki", "archive", "repair", str(archive_copy)]
        )
        assert code == 3
        assert "different scenario" in capsys.readouterr().err

    def test_no_manifest_exits_four(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(ARGS + ["archive", "repair", str(empty)]) == 4


class TestBuildExitCodes:
    def test_scenario_mismatch_exits_three(self, archive_copy, capsys):
        code = main(
            ["--scale", "5000", "--no-pki", "archive", "build", str(archive_copy)]
            + RANGE
        )
        assert code == 3
        assert "different scenario" in capsys.readouterr().err

    def test_profile_json_includes_recovery_counters(
        self, archive_copy, tmp_path, capsys
    ):
        out_path = tmp_path / "metrics.json"
        code = main(
            ARGS
            + ["archive", "build", str(archive_copy), "--profile-json", str(out_path)]
            + RANGE
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert set(payload) == {
            "phases", "caches", "recovery", "endpoints", "counters", "memory",
        }


class TestStreamingBuildFlags:
    """--chunk-domains / --max-rss-mb: identical bytes, advisory only."""

    def directory_bytes(self, directory):
        return {
            name: (directory / name).read_bytes()
            for name in sorted(os.listdir(directory))
        }

    def test_chunked_build_bytes_identical(self, base_archive, tmp_path):
        streamed = tmp_path / "streamed"
        code = main(
            ARGS
            + ["archive", "build", str(streamed), "--chunk-domains", "500"]
            + RANGE
        )
        assert code == 0
        assert self.directory_bytes(streamed) == self.directory_bytes(
            base_archive
        )

    def test_rss_ceiling_is_advisory(self, tmp_path, capsys):
        directory = tmp_path / "arch"
        code = main(
            ARGS
            + [
                "archive", "build", str(directory),
                "--chunk-domains", "500", "--max-rss-mb", "1",
            ]
            + RANGE
        )
        # The ceiling warns on stderr but never changes the exit code.
        assert code == 0
        captured = capsys.readouterr()
        assert "--max-rss-mb ceiling" in captured.err
        assert "archived 3 days" in captured.out

    def test_generous_ceiling_stays_quiet(self, tmp_path, capsys):
        directory = tmp_path / "arch"
        code = main(
            ARGS
            + [
                "archive", "build", str(directory),
                "--chunk-domains", "500", "--max-rss-mb", "100000",
            ]
            + RANGE
        )
        assert code == 0
        assert "--max-rss-mb" not in capsys.readouterr().err

    def test_bad_chunk_domains_rejected(self, tmp_path, capsys):
        code = main(
            ARGS
            + ["archive", "build", str(tmp_path / "arch"), "--chunk-domains", "0"]
            + RANGE
        )
        assert code == 2
        assert "--chunk-domains" in capsys.readouterr().err
