"""Tests for repro.archive.codec: varints, zigzag, delta runs, strings."""

import zlib

import pytest

from repro.archive.codec import (
    crc32_combine,
    read_delta_run,
    read_int32_array,
    read_string,
    read_svarint,
    read_uvarint,
    unzigzag,
    write_delta_run,
    write_int32_array,
    write_string,
    write_svarint,
    write_uvarint,
    zigzag,
)
from repro.errors import ArchiveError
from repro.rng import derive_rng


def roundtrip(writer, reader, value):
    buffer = bytearray()
    writer(buffer, value)
    result, offset = reader(memoryview(bytes(buffer)), 0)
    assert offset == len(buffer)
    return result


class TestUvarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 16383, 16384, 2**35, 2**63 - 1]
    )
    def test_roundtrip(self, value):
        assert roundtrip(write_uvarint, read_uvarint, value) == value

    def test_single_byte_below_128(self):
        buffer = bytearray()
        write_uvarint(buffer, 127)
        assert len(buffer) == 1

    def test_negative_rejected(self):
        with pytest.raises(ArchiveError):
            write_uvarint(bytearray(), -1)

    def test_truncated_rejected(self):
        buffer = bytearray()
        write_uvarint(buffer, 300)
        with pytest.raises(ArchiveError):
            read_uvarint(memoryview(bytes(buffer[:-1])), 0)

    def test_overlong_rejected(self):
        with pytest.raises(ArchiveError):
            read_uvarint(memoryview(b"\x80" * 11 + b"\x01"), 0)


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**40, -(2**40)])
    def test_inverse(self, value):
        assert unzigzag(zigzag(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag(-1) == 1
        assert zigzag(1) == 2
        assert zigzag(-64) < 128  # one varint byte

    @pytest.mark.parametrize("value", [0, 5, -5, 1720, -100000])
    def test_svarint_roundtrip(self, value):
        assert roundtrip(write_svarint, read_svarint, value) == value


class TestDeltaRun:
    @pytest.mark.parametrize(
        "values",
        [[], [7], [1, 4, 7, 200], [5, 3, 9, 0], [10, 10, 10]],
    )
    def test_roundtrip_preserves_order(self, values):
        assert roundtrip(write_delta_run, read_delta_run, values) == values

    def test_sorted_run_is_compact(self):
        buffer = bytearray()
        write_delta_run(buffer, list(range(1000, 1100)))
        # length + first value + 99 single-byte deltas.
        assert len(buffer) < 110

    def test_truncated_rejected(self):
        buffer = bytearray()
        write_delta_run(buffer, [1, 2, 3])
        with pytest.raises(ArchiveError):
            read_delta_run(memoryview(bytes(buffer[:-1])), 0)


class TestInt32Array:
    @pytest.mark.parametrize("values", [[], [7], [1, 4, 7, 200], [5, 3, -9, 0]])
    def test_roundtrip_preserves_order(self, values):
        assert roundtrip(write_int32_array, read_int32_array, values) == values

    def test_out_of_range_rejected(self):
        with pytest.raises(ArchiveError):
            write_int32_array(bytearray(), [2**31])

    def test_truncated_rejected(self):
        buffer = bytearray()
        write_int32_array(buffer, [1, 2, 3])
        with pytest.raises(ArchiveError):
            read_int32_array(memoryview(bytes(buffer[:-1])), 0)


class TestString:
    @pytest.mark.parametrize(
        "text", ["", "ns1.reg.ru", "xn--e1afmkfd.xn--p1ai", "пример.рф"]
    )
    def test_roundtrip(self, text):
        assert roundtrip(write_string, read_string, text) == text

    def test_truncated_rejected(self):
        buffer = bytearray()
        write_string(buffer, "example.ru")
        with pytest.raises(ArchiveError):
            read_string(memoryview(bytes(buffer[:-1])), 0)


class TestCrc32Combine:
    """crc32_combine(crc(a), crc(b), len(b)) == crc(a || b), exactly."""

    @pytest.mark.parametrize(
        "a,b",
        [
            (b"", b""),
            (b"", b"tail"),
            (b"head", b""),
            (b"head", b"tail"),
            (b"\x00" * 1000, b"\xff" * 1000),
            (bytes(range(256)) * 64, b"payload-block" * 999),
        ],
    )
    def test_matches_sequential_crc(self, a, b):
        sequential = zlib.crc32(b, zlib.crc32(a))
        assert crc32_combine(zlib.crc32(a), zlib.crc32(b), len(b)) == sequential

    def test_seeded_random_splits(self):
        rng = derive_rng(11, "crc-combine")
        blob = bytes(rng.integers(0, 256, size=8192, dtype="uint8"))
        for _ in range(50):
            cut = int(rng.integers(0, len(blob) + 1))
            head, tail = blob[:cut], blob[cut:]
            assert crc32_combine(
                zlib.crc32(head), zlib.crc32(tail), len(tail)
            ) == zlib.crc32(blob)

    def test_zero_length_tail_is_identity(self):
        assert crc32_combine(0xDEADBEEF, 0x12345678, 0) == 0xDEADBEEF

    def test_negative_length_rejected(self):
        with pytest.raises(ArchiveError):
            crc32_combine(1, 2, -1)

    def test_result_is_masked_to_32_bits(self):
        assert 0 <= crc32_combine(0xFFFFFFFF, 0xFFFFFFFF, 7) <= 0xFFFFFFFF
