"""The serving resilience layer.

Unit coverage for the circuit breaker and deadline primitives, plus
in-process service tests for the degraded-mode behaviours the chaos
suite later exercises end-to-end: serve-stale, 504-on-deadline,
queued-request cancellation during shutdown, and the resilient client's
retry policy (against a scripted transport, so no real sleeping).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.deadline import (
    MAX_DEADLINE_MS,
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.client import ClientError, ClientResponse, QueryClient
from repro.errors import DeadlineExceeded, QueryError, ReproError
from repro.measurement.metrics import SweepMetrics
from repro.service import (
    ADMIT_DENY,
    ADMIT_FRESH,
    ADMIT_PROBE,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)

from .conftest import ServiceThread, fresh_context


class FakeClock:
    """A controllable monotonic clock for breaker unit tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **overrides) -> CircuitBreaker:
    options = dict(
        failure_threshold=3,
        window_seconds=10.0,
        cooldown_seconds=5.0,
        clock=clock,
    )
    options.update(overrides)
    return CircuitBreaker(**options)


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.admit() == ADMIT_DENY

    def test_old_failures_age_out_of_the_window(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # both fall out of the 10s window
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_half_opens_with_bounded_probes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.admit() == ADMIT_DENY
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.admit() == ADMIT_PROBE
        # Only one probe slot by default; the next request is denied.
        assert breaker.admit() == ADMIT_DENY

    def test_probe_success_closes_and_clears_history(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit() == ADMIT_PROBE
        breaker.record_success(probe=True)
        assert breaker.state == CLOSED
        # History was cleared: the next failure starts from zero.
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.admit() == ADMIT_FRESH

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit() == ADMIT_PROBE
        breaker.record_failure(probe=True)
        assert breaker.state == OPEN
        # The fresh open gets a fresh cooldown.
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_release_probe_frees_slot_without_judging(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.admit() == ADMIT_PROBE
        assert breaker.admit() == ADMIT_DENY
        breaker.release_probe()  # cache hit: no backend work happened
        assert breaker.state == HALF_OPEN
        assert breaker.admit() == ADMIT_PROBE

    def test_retry_after_tracks_remaining_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == 5
        clock.advance(3.0)
        assert breaker.retry_after() == 2
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        assert breaker.retry_after() == 1

    def test_transition_callback_and_snapshot(self):
        clock = FakeClock()
        seen = []
        breaker = make_breaker(
            clock, on_transition=lambda prev, state: seen.append((prev, state))
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.admit()
        breaker.record_success(probe=True)
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED
        assert snapshot["opened_total"] == 1
        assert snapshot["half_open_total"] == 1
        assert snapshot["closed_total"] == 1

    def test_option_validation(self):
        with pytest.raises(QueryError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(QueryError):
            CircuitBreaker(window_seconds=0.0)
        with pytest.raises(QueryError):
            CircuitBreaker(cooldown_seconds=-1.0)
        with pytest.raises(QueryError):
            CircuitBreaker(half_open_probes=0)


class TestDeadline:
    def test_after_ms_clamps_to_ceiling(self):
        deadline = Deadline.after_ms(10 * MAX_DEADLINE_MS)
        assert deadline.budget_ms == MAX_DEADLINE_MS
        with pytest.raises(DeadlineExceeded):
            Deadline.after_ms(0)

    def test_remaining_and_expiry(self):
        fresh = Deadline.after_ms(60_000)
        assert not fresh.expired()
        assert 0.0 < fresh.remaining() <= 60.0
        spent = Deadline(time.monotonic() - 1.0, 5)
        assert spent.expired()
        assert spent.remaining() == 0.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            spent.check("records_collect")
        assert "records_collect" in str(excinfo.value)
        assert "5 ms" in str(excinfo.value)

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        check_deadline("outside")  # no-op without a scope
        deadline = Deadline.after_ms(60_000)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            check_deadline("inside")
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_check_deadline_raises_inside_expired_scope(self):
        spent = Deadline(time.monotonic() - 1.0, 5)
        with deadline_scope(spent):
            with pytest.raises(DeadlineExceeded):
                check_deadline("phase")
        check_deadline("phase")  # restored: no-op again


def _failing(message="backend down"):
    def fail(spec):
        raise ReproError(message)

    return fail


class TestServeStale:
    def test_breaker_opens_and_cached_queries_go_stale(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(
            context, breaker_threshold=2, breaker_cooldown=60.0
        ) as svc:
            status, _, fresh_body = svc.get("/v1/headline")
            assert status == 200

            facade = context.api
            original = facade.query_json
            facade.query_json = _failing()
            try:
                # Two distinct uncached queries fail => breaker opens.
                assert svc.get("/v1/experiments")[0] == 500
                assert svc.get("/v1/series/listed_counts")[0] == 500
                assert svc.service.breaker.state == OPEN

                # Cached query: 200 with the identical body, marked stale.
                status, headers, stale_body = svc.get("/v1/headline")
                assert status == 200
                assert stale_body == fresh_body
                assert headers.get("X-Repro-Stale") == "true"
                assert headers.get("X-Cache") == "stale"
                assert "stale response" in headers.get("Warning", "")

                # Uncached query: refused with Retry-After, not computed.
                status, headers, body = svc.get(
                    "/v1/records/2022-03-04?limit=1"
                )
                assert status == 503
                assert int(headers["Retry-After"]) >= 1
                assert "circuit breaker" in json.loads(body)["error"]["message"]

                status, _, body = svc.get("/healthz")
                assert json.loads(body)["status"] == "degraded"
            finally:
                facade.query_json = original
        assert context.metrics.counter("requests_stale") == 1
        assert context.metrics.counter("breaker_rejected") == 1
        assert context.metrics.counter("breaker_opened") == 1

    def test_recovery_probe_closes_breaker(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(
            context, breaker_threshold=2, breaker_cooldown=0.2
        ) as svc:
            facade = context.api
            original = facade.query_json
            facade.query_json = _failing()
            try:
                assert svc.get("/v1/experiments")[0] == 500
                assert svc.get("/v1/series/listed_counts")[0] == 500
            finally:
                facade.query_json = original
            assert svc.service.breaker.state == OPEN

            time.sleep(0.3)  # cooldown elapses; next query is the probe
            status, _, _ = svc.get("/v1/headline")
            assert status == 200
            assert svc.service.breaker.state == CLOSED
            status, _, body = svc.get("/healthz")
            assert json.loads(body)["status"] == "ready"
        assert context.metrics.counter("breaker_half_open") == 1
        assert context.metrics.counter("breaker_closed") == 1

    def test_backend_error_without_cache_is_plain_500(self, service_archive):
        # With the result cache disabled there is nothing to fall back
        # on, so a backend failure surfaces as the structured 500
        # envelope (and still counts toward opening the breaker).
        context = fresh_context(service_archive)
        with ServiceThread(
            context, breaker_threshold=5, cache_results=0
        ) as svc:
            facade = context.api
            original = facade.query_json
            assert svc.get("/v1/headline")[0] == 200
            facade.query_json = _failing()
            try:
                status, _, body = svc.get("/v1/headline")
                assert status == 500
                assert "backend down" in json.loads(body)["error"]["message"]
                snapshot = svc.service.breaker.snapshot()
                assert snapshot["failures_in_window"] == 1
                assert snapshot["state"] == CLOSED
            finally:
                facade.query_json = original


class TestHttpDeadlines:
    def test_blown_deadline_answers_504_quickly(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            facade = context.api
            original = facade.query_json
            release = threading.Event()

            def slow(spec):
                release.wait(10)
                return original(spec)

            facade.query_json = slow
            try:
                started = time.monotonic()
                request = _request_with_deadline(svc, "/v1/headline", 200)
                elapsed = time.monotonic() - started
                status, headers, body = request
                assert status == 504
                assert elapsed < 5.0
                assert "deadline" in json.loads(body)["error"]["message"]
                assert "Retry-After" in headers
            finally:
                release.set()
                facade.query_json = original
        assert context.metrics.counter("deadline_exceeded") == 1

    def test_cached_answer_beats_a_tiny_deadline(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            status, _, fresh_body = svc.get("/v1/headline")
            assert status == 200
            facade = context.api
            original = facade.query_json
            release = threading.Event()
            facade.query_json = lambda spec: (release.wait(10), original(spec))[1]
            try:
                # The cached headline under a tiny deadline is answered
                # from cache instantly: 200 fresh, no computation, no 504.
                status, headers, body = _request_with_deadline(
                    svc, "/v1/headline", 150
                )
                assert status == 200
                assert headers.get("X-Cache") == "hit"
                assert body == fresh_body
            finally:
                release.set()
                facade.query_json = original

    def test_invalid_deadline_header_is_400(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            status, _, body = _request_with_header(
                svc, "/v1/headline", "not-a-number"
            )
            assert status == 400
            assert "x-repro-deadline-ms" in (
                json.loads(body)["error"]["message"].lower()
            )
            status, _, _ = _request_with_header(svc, "/v1/headline", "0")
            assert status == 400


def _request_with_header(svc, path, value):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        svc.url(path), headers={"X-Repro-Deadline-Ms": value}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _request_with_deadline(svc, path, budget_ms):
    return _request_with_header(svc, path, str(budget_ms))


class TestShutdownCancelsQueuedWork:
    def test_queued_request_gets_clean_503_during_shutdown(
        self, service_archive
    ):
        context = fresh_context(service_archive)
        harness = ServiceThread(context, max_concurrency=1, queue_limit=8)
        with harness as svc:
            facade = context.api
            original = facade.query_json
            release = threading.Event()
            started = threading.Event()

            def blocked(spec):
                started.set()
                release.wait(30)
                return original(spec)

            facade.query_json = blocked
            try:
                with ThreadPoolExecutor(max_workers=2) as pool:
                    running = pool.submit(svc.get, "/v1/query?kind=headline")
                    assert started.wait(10)
                    # Distinct spec: submitted to the 1-thread pool behind
                    # the running computation, so it sits in the pool
                    # queue, not started.
                    queued = pool.submit(svc.get, "/v1/query?kind=catalog")
                    time.sleep(0.3)

                    # Trigger graceful shutdown while one computation runs
                    # and one is queued.
                    harness._loop.call_soon_threadsafe(harness._stop.set)
                    time.sleep(0.2)

                    status, _, body = queued.result(timeout=30)
                    assert status == 503
                    assert (
                        "shutting down"
                        in json.loads(body)["error"]["message"]
                    )

                    release.set()
                    assert running.result(timeout=30)[0] == 200
            finally:
                release.set()
                facade.query_json = original


class ScriptedClient(QueryClient):
    """A QueryClient whose transport replays a scripted outcome list."""

    def __init__(self, outcomes, **kwargs) -> None:
        self.outcomes = list(outcomes)
        self.calls = 0
        self.sleeps = []
        kwargs.setdefault("sleep", self.sleeps.append)
        super().__init__("http://127.0.0.1:1", **kwargs)

    def _once(self, method, path, body, headers):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _ok(body=b"{}"):
    return ClientResponse(200, {}, body)


def _unavailable(retry_after=None):
    headers = {}
    if retry_after is not None:
        headers["retry-after"] = str(retry_after)
    return ClientResponse(503, headers, b'{"error":{}}')


class TestQueryClient:
    def test_retries_connection_errors_until_success(self):
        client = ScriptedClient(
            [ConnectionResetError("boom"), ConnectionResetError("boom"), _ok()]
        )
        response = client.get("/healthz")
        assert response.status == 200
        assert client.calls == 3
        assert client.last_attempts == 3
        assert len(client.sleeps) == 2

    def test_backoff_is_deterministic_for_a_seed(self):
        script = lambda: [
            ConnectionResetError("a"),
            ConnectionResetError("b"),
            _ok(),
        ]
        first = ScriptedClient(script(), seed=42)
        second = ScriptedClient(script(), seed=42)
        first.get("/healthz")
        second.get("/healthz")
        assert first.sleeps == second.sleeps
        assert first.last_slept == pytest.approx(second.last_slept)
        # Exponential shape: the second pause is at least the first's base.
        assert first.sleeps[1] > first.sleeps[0] / 2

    def test_honours_retry_after_hint(self):
        client = ScriptedClient([_unavailable(retry_after=1.5), _ok()])
        response = client.get("/v1/headline")
        assert response.status == 200
        assert client.sleeps[0] >= 1.5

    def test_retry_after_capped_by_max_sleep(self):
        client = ScriptedClient(
            [_unavailable(retry_after=300), _ok()], max_sleep=0.5
        )
        client.get("/v1/headline")
        assert client.sleeps[0] == 0.5

    def test_exhausted_budget_returns_final_503(self):
        client = ScriptedClient(
            [_unavailable(), _unavailable(), _unavailable()], retries=2
        )
        response = client.get("/v1/headline")
        assert response.status == 503
        assert client.calls == 3
        assert response.retry_after is None

    def test_persistent_connection_failure_raises_client_error(self):
        client = ScriptedClient(
            [ConnectionResetError("x")] * 3, retries=2
        )
        with pytest.raises(ClientError) as excinfo:
            client.get("/healthz")
        assert "3 attempt(s)" in str(excinfo.value)

    def test_non_idempotent_requests_never_retry(self):
        client = ScriptedClient([ConnectionResetError("x"), _ok()])
        with pytest.raises(ClientError):
            client.request("POST", "/v1/query", body=b"{}", idempotent=False)
        assert client.calls == 1

    def test_query_posts_are_retried_as_idempotent(self):
        client = ScriptedClient([ConnectionResetError("x"), _ok(b'{"a":1}')])
        response = client.query({"kind": "headline"})
        assert response.status == 200
        assert client.calls == 2

    def test_deadline_header_is_attached(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            client = QueryClient(
                f"http://127.0.0.1:{svc.port}", deadline_ms=60_000
            )
            response = client.query({"kind": "headline"})
            assert response.ok
            assert not response.stale
            payload = response.json()
            assert payload["kind"] == "headline"
            health = client.wait_ready()
            assert health["status"] == "ready"

    def test_rejects_bad_urls(self):
        with pytest.raises(ClientError):
            QueryClient("https://example.org")
        with pytest.raises(ClientError):
            QueryClient("http://")
        with pytest.raises(ClientError):
            QueryClient("http://host", retries=-1)


class TestMetricsThreadSafety:
    def test_concurrent_counter_updates_do_not_lose_increments(self):
        metrics = SweepMetrics()

        def hammer():
            for _ in range(1000):
                metrics.record_counter("requests_total")
                metrics.record_cache("query_results", 1, 1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("requests_total") == 8000
        caches = metrics.summary()["caches"]["query_results"]
        assert caches["hits"] == 8000
        assert caches["misses"] == 8000

    def test_summary_is_a_consistent_snapshot_under_writes(self):
        metrics = SweepMetrics()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_counter("breaker_opened")
                metrics.record_counter("breaker_closed")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snapshot = metrics.summary()
                counters = snapshot.get("counters", {})
                # Both counters bump together inside the writer; a torn
                # snapshot could never show closed ahead of opened by
                # more than the one in-between increment.
                opened = counters.get("breaker_opened", 0)
                closed = counters.get("breaker_closed", 0)
                assert closed <= opened
        finally:
            stop.set()
            thread.join()
