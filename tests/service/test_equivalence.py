"""Offline/online equivalence: ``repro query`` and the HTTP service must
return byte-identical canonical JSON for the same QuerySpec over the
same archive.

This is the contract that makes the service trustworthy: serving is a
transport, not a second implementation.
"""

import json
import urllib.parse

import pytest

from repro.cli import main

from .conftest import (
    SERVICE_CADENCE,
    SERVICE_SCALE,
    ServiceThread,
    fresh_context,
)

#: The query mix both paths answer (flags form for the CLI).
SPECS = [
    {"kind": "catalog"},
    {"kind": "headline"},
    {
        "kind": "series", "series": "ns_composition",
        "start": "2022-01-01", "end": "2022-06-01",
    },
    {"kind": "series", "series": "tld_shares"},
    {"kind": "records", "date": "2022-03-04", "tld": "ru", "limit": 5},
    # The same filter written in Unicode and punycode must collapse to
    # one canonical answer.
    {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 5},
    {"kind": "records", "date": "2022-03-04", "tld": "xn--p1ai", "limit": 5},
]

CLI_BASE = [
    "--scale", str(int(SERVICE_SCALE)),
    "--no-pki",
    "--cadence", str(SERVICE_CADENCE),
]


def cli_query_bytes(service_archive, spec, capsys) -> bytes:
    argv = CLI_BASE + ["query", json.dumps(spec), "--archive", service_archive]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert out.endswith("\n")
    return out[:-1].encode("utf-8")


@pytest.fixture(scope="module")
def served(service_archive):
    with ServiceThread(fresh_context(service_archive)) as svc:
        yield svc


@pytest.mark.parametrize(
    "spec", SPECS, ids=lambda spec: json.dumps(spec, ensure_ascii=False)
)
def test_cli_and_http_bytes_agree(service_archive, served, spec, capsys):
    offline = cli_query_bytes(service_archive, spec, capsys)
    status, _, online = served.post(
        "/v1/query", json.dumps(spec).encode("utf-8")
    )
    assert status == 200
    assert offline == online


def test_get_query_string_matches_post(served):
    spec = {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 5}
    query = urllib.parse.urlencode(spec)
    get_status, _, get_body = served.get(f"/v1/query?{query}")
    post_status, _, post_body = served.post(
        "/v1/query", json.dumps(spec).encode("utf-8")
    )
    assert (get_status, post_status) == (200, 200)
    assert get_body == post_body


def test_convenience_route_matches_generic_query(served):
    convenience = served.get(
        "/v1/series/ns_composition?start=2022-01-01&end=2022-06-01"
    )
    generic = served.post(
        "/v1/query",
        json.dumps(
            {
                "kind": "series", "series": "ns_composition",
                "start": "2022-01-01", "end": "2022-06-01",
            }
        ).encode(),
    )
    assert convenience[0] == generic[0] == 200
    assert convenience[2] == generic[2]


def test_cli_flags_match_cli_json(service_archive, capsys):
    json_form = cli_query_bytes(
        service_archive,
        {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 5},
        capsys,
    )
    argv = CLI_BASE + [
        "query", "--kind", "records", "--date", "2022-03-04",
        "--tld", "рф", "--limit", "5", "--archive", service_archive,
    ]
    assert main(argv) == 0
    flags_form = capsys.readouterr().out[:-1].encode("utf-8")
    assert flags_form == json_form


def test_payloads_are_ascii_canonical(served):
    status, _, body = served.post(
        "/v1/query",
        json.dumps(
            {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 5}
        ).encode(),
    )
    assert status == 200
    text = body.decode("ascii")  # ensure_ascii envelope
    assert text == json.dumps(
        json.loads(text), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True,
    )
