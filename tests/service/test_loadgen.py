"""The open-loop load harness: seed-purity, mix shape, reporting.

``repro loadgen`` is only useful as a regression gate if the offered
workload is exactly reproducible, so most of this file pins the pure
plan layer: same seed → identical arrival times and query sequence;
different seed → different workload; zipf weighting keeps the coarse
summary queries hot and the domain-level records (punycode included) in
the tail.  One test drives a real in-process service and checks the
measured report end to end, including the ``BENCH_service_load.json``
artifact the CI gate consumes.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.loadgen import (
    LoadSample,
    build_plan,
    default_mix,
    percentile,
    run_loadgen,
    summarise,
)

from .conftest import ServiceThread, fresh_context


class TestPlanPurity:
    def test_same_seed_same_workload(self):
        first = build_plan(11, rate=200.0, duration=2.0)
        second = build_plan(11, rate=200.0, duration=2.0)
        assert first.arrivals == second.arrivals
        assert first.labels == second.labels
        assert first.paths == second.paths

    def test_different_seed_different_workload(self):
        first = build_plan(11, rate=200.0, duration=2.0)
        second = build_plan(12, rate=200.0, duration=2.0)
        assert (
            first.arrivals != second.arrivals
            or first.labels != second.labels
        )

    def test_mix_change_does_not_shift_arrivals(self):
        # Arrival and mix streams are independently derived, so adding
        # a query to the catalog must not move any request in time.
        full = build_plan(5, rate=100.0, duration=2.0)
        trimmed = build_plan(5, rate=100.0, duration=2.0,
                             mix=default_mix()[:3])
        assert full.arrivals == trimmed.arrivals

    def test_arrivals_match_offered_rate(self):
        plan = build_plan(3, rate=500.0, duration=4.0)
        assert all(0.0 <= at < 4.0 for at in plan.arrivals)
        assert plan.arrivals == sorted(plan.arrivals)
        # Poisson count concentrates around rate*duration = 2000.
        assert 1700 <= len(plan) <= 2300

    def test_zipf_mix_keeps_coarse_queries_hot(self):
        plan = build_plan(9, rate=1000.0, duration=4.0)
        counts = {}
        for label in plan.labels:
            counts[label] = counts.get(label, 0) + 1
        labels = [label for label, _ in default_mix()]
        # Rank 0 (headline) dominates; the records tail still shows up.
        assert counts[labels[0]] == max(counts.values())
        assert counts[labels[0]] > 3 * counts.get(labels[-1], 1)
        assert any(label.startswith("records:") for label in counts)

    def test_punycode_variants_are_in_the_mix(self):
        paths = [path for _, path in default_mix()]
        assert any("%D1%80%D1%84" in path for path in paths)
        assert any("xn--p1ai" in path for path in paths)

    def test_event_feed_is_in_the_mix(self):
        paths = dict(default_mix())
        assert paths["events:page"].startswith("/v1/events")

    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ReproError):
            build_plan(1, rate=0.0, duration=1.0)
        with pytest.raises(ReproError):
            build_plan(1, rate=10.0, duration=0.0)
        with pytest.raises(ReproError):
            build_plan(1, rate=10.0, duration=1.0, mix=[])


class TestPercentile:
    def test_nearest_rank(self):
        values = sorted(float(value) for value in range(1, 101))
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0

    def test_single_sample_and_empty(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0
        assert percentile([], 99.0) is None


class TestSummarise:
    def _sample(self, status=200, latency=0.01, stale=False, malformed=False):
        return LoadSample(
            label="headline", path="/v1/headline", offset=0.0,
            latency=latency, status=status, stale=stale, malformed=malformed,
        )

    def test_rates_and_percentiles(self):
        plan = build_plan(1, rate=10.0, duration=1.0)
        samples = (
            [self._sample(latency=0.010)] * 90
            + [self._sample(latency=0.100, stale=True)] * 8
            + [self._sample(status=503)] * 2
        )
        report = summarise(plan, samples, "http://127.0.0.1:1", 1.0)
        assert report["requests_sent"] == 100
        assert report["requests_ok"] == 98
        assert report["error_rate"] == 0.02
        assert report["stale_served"] == 8
        assert report["stale_rate"] == round(8 / 98, 6)
        assert report["malformed"] == 0
        assert report["latency_ms"]["p50"] == 10.0
        assert report["latency_ms"]["p99"] == 100.0
        assert report["errors_by_status"] == {"503": 2}

    def test_transport_failures_count_as_errors(self):
        plan = build_plan(1, rate=10.0, duration=1.0)
        samples = [self._sample(), self._sample(status=0)]
        report = summarise(plan, samples, "u", 1.0)
        assert report["requests_errored"] == 1
        assert report["errors_by_status"] == {"0": 1}


class TestLiveRun:
    def test_loadgen_measures_a_real_service(
        self, service_archive, tmp_path
    ):
        output = tmp_path / "BENCH_service_load.json"
        with ServiceThread(fresh_context(service_archive)) as server:
            report = run_loadgen(
                server.url(""),
                rate=40.0,
                duration=1.5,
                seed=20220224,
                output=str(output),
            )
        assert report["requests_sent"] == len(
            build_plan(20220224, 40.0, 1.5)
        )
        assert report["requests_ok"] == report["requests_sent"]
        assert report["error_rate"] == 0.0
        assert report["malformed"] == 0
        assert report["latency_ms"]["p99"] is not None
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["throughput_qps"] > 0

        written = json.loads(output.read_text(encoding="utf-8"))
        assert written["seed"] == 20220224
        assert written["requests_sent"] == report["requests_sent"]
        assert written["query_mix"]["headline"] >= 1

    def test_event_page_envelope_counts_as_well_formed(
        self, service_archive
    ):
        """The event feed's page envelope differs from the query
        envelope; an events-only run must not read as malformed."""
        with ServiceThread(fresh_context(service_archive)) as server:
            report = run_loadgen(
                server.url(""),
                rate=20.0,
                duration=0.5,
                seed=7,
                output=None,
                mix=[("events:page", "/v1/events?since=0&limit=50")],
            )
        assert report["requests_ok"] == report["requests_sent"]
        assert report["malformed"] == 0
