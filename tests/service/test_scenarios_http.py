"""The v2 surface over real HTTP: scenario routing, diffs, cache walls.

One service thread serves the archive-backed baseline plus a live
``no-invasion`` context registered before startup — the same shape
``repro serve --scenario-archive`` produces.
"""

import json

import pytest

from repro.experiments import ExperimentContext

from .conftest import SERVICE_CADENCE, ServiceThread, fresh_context, service_config


@pytest.fixture(scope="module")
def svc(service_archive):
    context = fresh_context(service_archive)
    context.api.register_scenario(
        ExperimentContext(
            config=service_config("no-invasion"),
            cadence_days=SERVICE_CADENCE,
        )
    )
    with ServiceThread(context) as svc:
        yield svc


def _json(body: bytes):
    return json.loads(body)


class TestScenarioListing:
    def test_v2_scenarios_lists_served_worlds(self, svc):
        status, _, body = svc.get("/v2/scenarios")
        assert status == 200
        payload = _json(body)
        assert payload["schema_version"] == 2
        assert payload["default"] == "baseline"
        ids = [entry["id"] for entry in payload["scenarios"]]
        assert ids == ["baseline", "no-invasion"]
        by_id = {entry["id"]: entry for entry in payload["scenarios"]}
        assert by_id["no-invasion"]["spec_digest"]
        assert by_id["no-invasion"]["title"]

    def test_root_advertises_v2(self, svc):
        status, _, body = svc.get("/")
        assert status == 200
        payload = _json(body)
        assert payload["scenarios"] == ["baseline", "no-invasion"]
        assert any("/v2/query" in e for e in payload["endpoints"])
        assert any("/v2/scenarios" in e for e in payload["endpoints"])


class TestScenarioQueries:
    def test_post_routes_to_the_named_world(self, svc):
        status, _, base = svc.post(
            "/v2/query", json.dumps({"kind": "headline"}).encode()
        )
        assert status == 200
        status, _, counterfactual = svc.post(
            "/v2/query",
            json.dumps({"kind": "headline", "scenario": "no-invasion"}).encode(),
        )
        assert status == 200
        base_data = _json(base)["data"]
        cf_data = _json(counterfactual)["data"]
        assert base_data["ns_full_end"] != cf_data["ns_full_end"]

    def test_get_accepts_the_scenario_param(self, svc):
        status, _, body = svc.get(
            "/v2/query?kind=headline&scenario=no-invasion"
        )
        assert status == 200
        envelope = _json(body)
        assert envelope["spec"] == {"kind": "headline", "scenario": "no-invasion"}

    def test_unserved_scenario_is_400_listing_ids(self, svc):
        status, _, body = svc.post(
            "/v2/query",
            json.dumps({"kind": "headline", "scenario": "depeering"}).encode(),
        )
        assert status == 400
        assert "baseline, no-invasion" in _json(body)["error"]["message"]

    def test_v1_get_ignores_the_scenario_param(self, svc):
        # The frozen v1 surface has no scenario dimension; an extra
        # query-string param falls through to the baseline world.
        status, _, body = svc.get("/v1/query?kind=headline&scenario=no-invasion")
        assert status == 200
        assert _json(body)["spec"] == {"kind": "headline"}


class TestCacheIsolation:
    def test_no_cross_scenario_cache_hits(self, svc):
        spec = {"kind": "experiment", "experiment": "fig1"}
        path = "/v2/query"
        _, first_headers, first = svc.post(path, json.dumps(spec).encode())
        _, cf_headers, cf_body = svc.post(
            path, json.dumps({**spec, "scenario": "no-invasion"}).encode()
        )
        # A different world is never served from the baseline's entry.
        assert cf_headers.get("X-Cache") != "hit"
        assert cf_body != first
        # ...but each scenario's own repeats do hit.
        _, repeat_headers, repeat = svc.post(
            path, json.dumps({**spec, "scenario": "no-invasion"}).encode()
        )
        assert repeat_headers.get("X-Cache") == "hit"
        assert repeat == cf_body

    def test_explicit_baseline_shares_the_v1_entry(self, svc):
        spec = {"kind": "series", "series": "ns_composition"}
        svc.post("/v1/query", json.dumps(spec).encode())
        _, headers, _ = svc.post(
            "/v2/query", json.dumps({**spec, "scenario": "baseline"}).encode()
        )
        assert headers.get("X-Cache") == "hit"


class TestDiffOverHttp:
    def test_get_diff_matches_posted_diff_bytes(self, svc):
        status, _, get_body = svc.get(
            "/v2/diff?experiment=fig2&scenario=no-invasion"
        )
        assert status == 200
        status, _, post_body = svc.post(
            "/v2/query",
            json.dumps(
                {"kind": "diff", "experiment": "fig2", "scenario": "no-invasion"}
            ).encode(),
        )
        assert status == 200
        assert get_body == post_body
        data = _json(get_body)["data"]
        assert data["scenario"] == "no-invasion"
        assert data["baseline"] == "baseline"
        assert data["measured_delta"]

    def test_diff_without_scenario_is_400(self, svc):
        status, _, body = svc.get("/v2/diff?experiment=fig2")
        assert status == 400
        assert "non-baseline" in _json(body)["error"]["message"]
