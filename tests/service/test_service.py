"""Behavioural tests for the query service: endpoints, coalescing,
backpressure, caching, graceful shutdown.

Every test runs over an archive-backed context, the production serving
configuration.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from .conftest import ServiceThread, fresh_context

RECORDS_PATH = "/v1/records/2022-03-04?tld=ru&limit=5"


class TestEndpoints:
    @pytest.fixture(scope="class")
    def svc(self, service_archive):
        with ServiceThread(fresh_context(service_archive)) as svc:
            yield svc

    def test_healthz(self, svc):
        status, _, body = svc.get("/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ready"
        assert payload["breaker"] == "closed"

    def test_root_lists_endpoints(self, svc):
        status, _, body = svc.get("/")
        assert status == 200
        assert "GET /v1/headline" in json.loads(body)["endpoints"]

    def test_headline(self, svc):
        status, _, body = svc.get("/v1/headline")
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "headline"
        assert "ns_full_change" in payload["data"]

    def test_experiment_catalog_and_detail(self, svc):
        status, _, body = svc.get("/v1/experiments")
        assert status == 200
        assert "fig1" in json.loads(body)["data"]["experiments"]
        status, _, body = svc.get("/v1/experiments/headline")
        assert status == 200
        assert json.loads(body)["data"]["experiment_id"] == "headline"

    def test_series_with_range(self, svc):
        status, _, body = svc.get(
            "/v1/series/ns_composition?start=2022-01-01&end=2022-06-01"
        )
        assert status == 200
        data = json.loads(body)["data"]
        assert data["series"] == "ns_composition"
        assert all("2022-01-01" <= day <= "2022-06-01" for day in data["dates"])

    def test_records_with_unicode_tld(self, svc):
        status, _, body = svc.get(
            "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=3"
        )
        assert status == 200
        data = json.loads(body)["data"]
        assert all(
            record["domain"].endswith(".xn--p1ai") for record in data["records"]
        )

    def test_post_query(self, svc):
        status, _, body = svc.post(
            "/v1/query", json.dumps({"kind": "catalog"}).encode()
        )
        assert status == 200
        assert json.loads(body)["kind"] == "catalog"

    def test_get_query_params(self, svc):
        status, _, body = svc.get("/v1/query?kind=headline")
        assert status == 200
        assert json.loads(body)["kind"] == "headline"

    def test_unknown_path_404(self, svc):
        status, _, body = svc.get("/nope")
        assert status == 404
        assert json.loads(body)["error"]["status"] == 404

    def test_bad_series_400(self, svc):
        status, _, body = svc.get("/v1/series/bogus")
        assert status == 400
        assert "unknown series" in json.loads(body)["error"]["message"]

    def test_bad_method_405(self, svc):
        status, _, _ = svc.post("/v1/headline", b"{}")
        assert status == 405

    def test_bad_post_body_400(self, svc):
        status, _, body = svc.post("/v1/query", b"[1,2]")
        assert status == 400
        assert "JSON object" in json.loads(body)["error"]["message"]

    def test_metrics_endpoint(self, svc):
        status, _, body = svc.get("/metrics")
        assert status == 200
        payload = json.loads(body)
        assert payload["metrics"]["counters"]["requests_total"] > 0
        assert "endpoints" in payload["metrics"]
        assert payload["service"]["queue_limit"] == 32


class TestCoalescing:
    def test_parallel_identical_requests_share_one_archive_read(
        self, service_archive
    ):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            facade = context.api
            original = facade.query_json

            def slow_query(spec):
                # Hold the first computation open long enough for every
                # concurrent duplicate to arrive and coalesce onto it.
                time.sleep(0.5)
                return original(spec)

            facade.query_json = slow_query
            try:
                with ThreadPoolExecutor(max_workers=6) as pool:
                    bodies = list(
                        pool.map(
                            lambda _: svc.get(RECORDS_PATH)[2], range(6)
                        )
                    )
            finally:
                facade.query_json = original

        assert len({body for body in bodies}) == 1
        caches = context.metrics.summary()["caches"]
        # One computation => exactly one day shard left the archive.
        assert caches["archive_shards"]["misses"] == 1
        assert caches["archive_shards"]["hits"] == 0
        assert caches["query_results"]["misses"] == 1
        assert caches["query_results"]["hits"] == 5
        assert context.metrics.counter("requests_coalesced") >= 1

    def test_repeat_request_hits_result_cache(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            first = svc.get(RECORDS_PATH)
            second = svc.get(RECORDS_PATH)
        assert first[2] == second[2]
        assert second[1].get("X-Cache") == "hit"
        caches = context.metrics.summary()["caches"]
        assert caches["query_results"]["misses"] == 1
        assert caches["query_results"]["hits"] == 1
        assert caches["archive_shards"]["misses"] == 1

    def test_equivalent_specs_share_cache_entry(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context) as svc:
            svc.get("/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=3")
            status, headers, _ = svc.get(
                "/v1/records/2022-03-04?tld=xn--p1ai&limit=3"
            )
        assert status == 200
        assert headers.get("X-Cache") == "hit"


class TestBackpressure:
    def test_queue_overflow_rejected_with_retry_after(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(
            context, max_concurrency=1, queue_limit=1
        ) as svc:
            facade = context.api
            original = facade.query_json
            release = threading.Event()

            def blocked_query(spec):
                release.wait(30)
                return original(spec)

            facade.query_json = blocked_query
            try:
                with ThreadPoolExecutor(max_workers=2) as pool:
                    slow = pool.submit(svc.get, "/v1/query?kind=headline")
                    time.sleep(0.3)  # let the slow query occupy the queue
                    status, headers, body = svc.get("/v1/query?kind=catalog")
                    assert status == 503
                    assert headers.get("Retry-After") == "1"
                    assert "queue is full" in json.loads(body)["error"]["message"]
                    release.set()
                    assert slow.result(timeout=60)[0] == 200
            finally:
                release.set()
                facade.query_json = original
        assert context.metrics.counter("requests_rejected") == 1

    def test_introspection_unaffected_by_full_queue(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(
            context, max_concurrency=1, queue_limit=1
        ) as svc:
            facade = context.api
            original = facade.query_json
            release = threading.Event()
            facade.query_json = lambda spec: (release.wait(30), original(spec))[1]
            try:
                with ThreadPoolExecutor(max_workers=1) as pool:
                    slow = pool.submit(svc.get, "/v1/query?kind=headline")
                    time.sleep(0.3)
                    assert svc.get("/healthz")[0] == 200
                    assert svc.get("/metrics")[0] == 200
                    release.set()
                    slow.result(timeout=60)
            finally:
                release.set()
                facade.query_json = original


class TestShutdown:
    def test_graceful_shutdown_closes_socket(self, service_archive):
        context = fresh_context(service_archive)
        harness = ServiceThread(context)
        with harness as svc:
            assert svc.get("/healthz")[0] == 200
            port = svc.port
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            )

    def test_options_validated(self, service_archive):
        from repro.errors import QueryError
        from repro.service import QueryService

        context = fresh_context(service_archive)
        with pytest.raises(QueryError):
            QueryService(context, max_concurrency=0)
        with pytest.raises(QueryError):
            QueryService(context, queue_limit=0)
