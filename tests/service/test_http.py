"""Unit tests for the HTTP/1.1 plumbing in repro.service.http."""

import asyncio
import json

import pytest

from repro.service.http import (
    HttpError,
    HttpResponse,
    read_request,
    split_path,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /v1/headline HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/headline"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_string_and_percent_decoding(self):
        request = parse(
            b"GET /v1/records/2022-03-04?tld=%D1%80%D1%84&limit=3 HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/v1/records/2022-03-04"
        assert request.params == {"tld": "рф", "limit": "3"}

    def test_post_body_json(self):
        body = json.dumps({"kind": "headline"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"kind": "headline"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError, match="malformed request line"):
            parse(b"GETONLY\r\n\r\n")

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError, match="unsupported protocol"):
            parse(b"GET / SPDY/9\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n")

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n"
        with pytest.raises(HttpError, match="Content-Length"):
            parse(raw)

    def test_too_many_headers(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % index for index in range(100)
        )
        with pytest.raises(HttpError, match="too many headers"):
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_body_not_json(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(HttpError, match="not valid JSON"):
            request.json()

    def test_oversized_request_line(self):
        raw = b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(HttpError, match="request line too long"):
            parse(raw)

    def test_oversized_single_header_line(self):
        # One header line longer than the stream limit trips
        # LimitOverrunError, which must surface as an HttpError (400),
        # not an unhandled exception.
        raw = (
            b"GET / HTTP/1.1\r\nX-Big: "
            + b"v" * (1 << 17)
            + b"\r\n\r\n"
        )
        with pytest.raises(HttpError, match="header line too long"):
            parse(raw)

    def test_header_line_without_colon(self):
        with pytest.raises(HttpError, match="malformed header line"):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_disconnect_mid_headers(self):
        with pytest.raises(HttpError, match="mid headers"):
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n")

    def test_disconnect_mid_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        with pytest.raises(HttpError, match="mid body"):
            parse(raw)

    def test_unparsable_request_target(self):
        # urlsplit raises ValueError on unbalanced IPv6 brackets; the
        # parser must turn that into an HttpError rather than let it
        # escape as an unhandled exception.
        with pytest.raises(HttpError, match="unparsable request target"):
            parse(b"GET http://[::1 HTTP/1.1\r\n\r\n")


class TestHttpResponse:
    def test_wire_form(self):
        response = HttpResponse.json(200, '{"x":1}', {"X-Cache": "hit"})
        raw = response.to_bytes()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert b"Connection: close" in head
        assert b"X-Cache: hit" in head
        assert body == b'{"x":1}'

    def test_error_envelope(self):
        response = HttpResponse.error(503, "slow down", {"Retry-After": "1"})
        payload = json.loads(response.body)
        assert payload["error"] == {"status": 503, "message": "slow down"}
        assert "schema_version" in payload
        assert b"Retry-After: 1" in response.to_bytes()


class TestSplitPath:
    def test_segments(self):
        assert split_path("/v1/series/x") == ("v1", "series", "x")
        assert split_path("/") == ()
        assert split_path("") == ()


class TestLiveSocketEdgeCases:
    """Hostile bytes against a real listening service.

    Every case must end in a 4xx response or a clean close — the
    follow-up healthz probe proves the server survived.
    """

    @pytest.fixture()
    def svc(self, service_archive):
        from .conftest import ServiceThread, fresh_context

        with ServiceThread(fresh_context(service_archive)) as svc:
            yield svc

    def _raw(self, svc, payload: bytes, close_early: bool = False) -> bytes:
        import socket

        with socket.create_connection(("127.0.0.1", svc.port), timeout=10) as sock:
            sock.sendall(payload)
            if close_early:
                return b""
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            try:
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except ConnectionResetError:
                # The server may close with unread input still buffered
                # (e.g. an oversized header it refused to consume), which
                # surfaces as a reset on this side — still a clean close
                # from the server's point of view.
                pass
            return b"".join(chunks)

    def test_garbage_content_length_gets_400(self, svc):
        reply = self._raw(
            svc, b"POST /v1/query HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert svc.get("/healthz")[0] == 200

    def test_oversized_header_line_gets_400_or_clean_close(self, svc):
        reply = self._raw(
            svc, b"GET / HTTP/1.1\r\nX-Big: " + b"v" * (1 << 17) + b"\r\n\r\n"
        )
        # Either the 400 envelope made it out before the close, or the
        # server dropped the oversized connection without a response;
        # both are acceptable — crashing the handler is not.
        assert reply == b"" or reply.startswith(b"HTTP/1.1 400 ")
        assert svc.get("/healthz")[0] == 200

    def test_bad_ipv6_target_gets_400(self, svc):
        reply = self._raw(svc, b"GET http://[::1 HTTP/1.1\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert svc.get("/healthz")[0] == 200

    def test_premature_disconnect_mid_body_is_survived(self, svc):
        # Declare 100 body bytes, send 5, slam the connection shut.
        self._raw(
            svc,
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
            close_early=True,
        )
        assert svc.get("/healthz")[0] == 200

    def test_premature_disconnect_mid_headers_is_survived(self, svc):
        self._raw(svc, b"GET / HTTP/1.1\r\nHost: x\r\n", close_early=True)
        assert svc.get("/healthz")[0] == 200
