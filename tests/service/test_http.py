"""Unit tests for the HTTP/1.1 plumbing in repro.service.http."""

import asyncio
import json

import pytest

from repro.service.http import (
    HttpError,
    HttpResponse,
    read_request,
    split_path,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /v1/headline HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/headline"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_string_and_percent_decoding(self):
        request = parse(
            b"GET /v1/records/2022-03-04?tld=%D1%80%D1%84&limit=3 HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/v1/records/2022-03-04"
        assert request.params == {"tld": "рф", "limit": "3"}

    def test_post_body_json(self):
        body = json.dumps({"kind": "headline"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"kind": "headline"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError, match="malformed request line"):
            parse(b"GETONLY\r\n\r\n")

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError, match="unsupported protocol"):
            parse(b"GET / SPDY/9\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n")

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n"
        with pytest.raises(HttpError, match="Content-Length"):
            parse(raw)

    def test_too_many_headers(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % index for index in range(100)
        )
        with pytest.raises(HttpError, match="too many headers"):
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_body_not_json(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(HttpError, match="not valid JSON"):
            request.json()


class TestHttpResponse:
    def test_wire_form(self):
        response = HttpResponse.json(200, '{"x":1}', {"X-Cache": "hit"})
        raw = response.to_bytes()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert b"Connection: close" in head
        assert b"X-Cache: hit" in head
        assert body == b'{"x":1}'

    def test_error_envelope(self):
        response = HttpResponse.error(503, "slow down", {"Retry-After": "1"})
        payload = json.loads(response.body)
        assert payload["error"] == {"status": 503, "message": "slow down"}
        assert "schema_version" in payload
        assert b"Retry-After: 1" in response.to_bytes()


class TestSplitPath:
    def test_segments(self):
        assert split_path("/v1/series/x") == ("v1", "series", "x")
        assert split_path("/") == ()
        assert split_path("") == ()
