"""Multi-process serving tier: socket modes, shared cache, supervisor.

Tier-1 coverage for :mod:`repro.service.multiproc` and
:mod:`repro.service.shared_cache`:

* the pure socket-mode decision, including both graceful degradations
  (no ``SO_REUSEPORT`` → inherited socket; no ``fork`` → single process)
  pinned by monkeypatching the capability probes' inputs;
* the filesystem shared-result cache: atomic publish, lease
  exclusivity, stale-lease stealing;
* cross-worker result sharing at the :class:`QueryService` level — two
  servers over one cache directory perform one archive read between
  them and answer byte-identically;
* metrics aggregation over per-worker payloads;
* one real ``repro serve --processes 2`` subprocess: two-line
  announcement, supervisor health, worker-tagged aggregated metrics,
  byte-identity with the offline CLI, and a clean SIGTERM drain.

The fault-driven scenarios (worker crash + restart, stall-pinned
cross-worker coalescing, breaker/stale against the pool) live in the
chaos suite (``tests/service/test_chaos.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import signal
import socket
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.service import (
    MODE_INHERITED,
    MODE_REUSEPORT,
    MODE_SINGLE,
    SharedResultCache,
    aggregate_worker_metrics,
    select_socket_mode,
)
from repro.service.multiproc import fork_available, reuseport_available

from .conftest import SERVICE_CADENCE, SERVICE_SCALE, ServiceThread, fresh_context


# ----------------------------------------------------------------------
# Socket-mode selection (pure; monkeypatched capabilities)
# ----------------------------------------------------------------------

class TestSocketMode:
    def test_single_process_request_stays_single(self):
        mode, reason = select_socket_mode(1)
        assert mode == MODE_SINGLE
        assert "one process" in reason

    def test_prefers_reuseport_when_supported(self, monkeypatch):
        monkeypatch.setattr(socket, "SO_REUSEPORT", 15, raising=False)
        mode, _ = select_socket_mode(4)
        assert mode in (MODE_REUSEPORT, MODE_INHERITED)
        if reuseport_available():
            assert mode == MODE_REUSEPORT

    def test_falls_back_to_inherited_without_reuseport(self, monkeypatch):
        # Platform without the constant at all (pre-3.9 kernels, some
        # BSDs): workers must inherit the parent-bound socket.
        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        assert not reuseport_available()
        mode, reason = select_socket_mode(2)
        assert mode == MODE_INHERITED
        assert "inherit" in reason

    def test_falls_back_to_single_without_fork(self, monkeypatch):
        # No fork start method (e.g. Windows): degrade to one in-process
        # server with a clear reason instead of crashing.
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert not fork_available()
        mode, reason = select_socket_mode(8)
        assert mode == MODE_SINGLE
        assert "single-process" in reason

    def test_reuseport_constant_present_but_rejected(self, monkeypatch):
        # Constant defined but setsockopt refuses it: the probe must
        # report unsupported rather than blow up at bind time.
        real_socket = socket.socket

        class _Refusing(real_socket):
            def setsockopt(self, level, option, value):
                if option == getattr(socket, "SO_REUSEPORT", -1):
                    raise OSError("protocol not available")
                return real_socket.setsockopt(self, level, option, value)

        monkeypatch.setattr(socket, "SO_REUSEPORT", 15, raising=False)
        monkeypatch.setattr(socket, "socket", _Refusing)
        assert not reuseport_available()
        mode, _ = select_socket_mode(2)
        assert mode == MODE_INHERITED


# ----------------------------------------------------------------------
# Shared result cache
# ----------------------------------------------------------------------

class TestSharedResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = SharedResultCache(str(tmp_path / "shared"))
        assert cache.get("spec-a") is None
        cache.put("spec-a", '{"answer":1}')
        assert cache.get("spec-a") == '{"answer":1}'
        assert len(cache) == 1
        # Overwrite is atomic and last-writer-wins.
        cache.put("spec-a", '{"answer":2}')
        assert cache.get("spec-a") == '{"answer":2}'
        assert len(cache) == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = SharedResultCache(str(tmp_path))
        cache.put("spec-a", "A")
        cache.put("spec-b", "B")
        assert cache.get("spec-a") == "A"
        assert cache.get("spec-b") == "B"

    def test_lease_is_exclusive_until_released(self, tmp_path):
        cache = SharedResultCache(str(tmp_path))
        lease = cache.acquire("key")
        assert lease is not None
        assert cache.acquire("key") is None
        assert cache.lease_pending("key")
        lease.release()
        assert not cache.lease_pending("key")
        again = cache.acquire("key")
        assert again is not None
        again.release()

    def test_release_is_idempotent(self, tmp_path):
        cache = SharedResultCache(str(tmp_path))
        lease = cache.acquire("key")
        lease.release()
        lease.release()  # no raise
        assert cache.acquire("key") is not None

    def test_stale_lease_from_dead_pid_is_stolen(self, tmp_path):
        cache = SharedResultCache(str(tmp_path))
        lease = cache.acquire("key")
        # Rewrite the lock with a pid that cannot exist: the owner died.
        with open(lease.path, "w", encoding="utf-8") as handle:
            handle.write("999999999")
        stolen = cache.acquire("key")
        assert stolen is not None, "dead-owner lease was not stolen"
        stolen.release()

    def test_aged_out_lease_is_stolen(self, tmp_path):
        cache = SharedResultCache(str(tmp_path), lease_timeout=0.05)
        first = cache.acquire("key")
        assert first is not None
        time.sleep(0.1)
        second = cache.acquire("key")
        assert second is not None, "expired lease was not stolen"
        second.release()


# ----------------------------------------------------------------------
# Cross-worker result sharing at the QueryService level
# ----------------------------------------------------------------------

RECORDS_PATH = "/v1/records/2022-03-04?tld=xn--p1ai&limit=5"


class TestSharedServing:
    def test_second_server_adopts_published_result(
        self, service_archive, tmp_path
    ):
        """Two servers, one cache dir: one archive read, identical bytes.

        This is the in-process twin of the forked worker pool — each
        ServiceThread plays one worker, so the cross-process contract
        (publish on 200, adopt on hit, count a single archive read) is
        pinned without fork timing in the way.
        """
        shared_dir = str(tmp_path / "shared")
        ctx_a, ctx_b = fresh_context(service_archive), fresh_context(service_archive)
        cache_a = SharedResultCache(shared_dir)
        cache_b = SharedResultCache(shared_dir)
        with ServiceThread(ctx_a, shared_cache=cache_a, worker_id=0) as a:
            status, headers_a, body_a = a.get(RECORDS_PATH)
            assert status == 200
            assert headers_a.get("X-Cache") != "shared"
            with ServiceThread(ctx_b, shared_cache=cache_b, worker_id=1) as b:
                status, headers_b, body_b = b.get(RECORDS_PATH)
                assert status == 200
                assert headers_b.get("X-Cache") == "shared"
                assert body_b == body_a

        # Worker A did the one archive read; worker B adopted.
        misses_a = ctx_a.metrics.summary()["caches"]["archive_shards"]["misses"]
        caches_b = ctx_b.metrics.summary()["caches"]
        assert misses_a == 1
        assert caches_b.get("archive_shards", {}).get("misses", 0) == 0
        assert caches_b["shared_results"]["hits"] == 1

    def test_worker_id_tags_health_and_metrics(self, service_archive):
        context = fresh_context(service_archive)
        with ServiceThread(context, worker_id=3) as server:
            _, _, health = server.get("/healthz")
            assert json.loads(health)["worker"] == 3
            _, _, metrics = server.get("/metrics")
            assert json.loads(metrics)["service"]["worker"] == 3

    def test_single_process_serving_has_no_shared_section(
        self, service_archive
    ):
        context = fresh_context(service_archive)
        with ServiceThread(context) as server:
            _, _, health = server.get("/healthz")
            assert "worker" not in json.loads(health)
            _, _, metrics = server.get("/metrics")
            assert "shared_cache" not in json.loads(metrics)["service"]


# ----------------------------------------------------------------------
# Metrics aggregation
# ----------------------------------------------------------------------

def _worker_payload(counters=None, caches=None, endpoints=None):
    return {
        "metrics": {
            "counters": counters or {},
            "caches": caches or {},
            "endpoints": endpoints or {},
            "recovery": {},
        }
    }


class TestAggregation:
    def test_counters_and_caches_sum_across_workers(self):
        aggregated = aggregate_worker_metrics(
            {
                "0": _worker_payload(
                    counters={"requests_total": 3},
                    caches={"archive_shards": {"hits": 2, "misses": 1}},
                ),
                "1": _worker_payload(
                    counters={"requests_total": 5, "requests_stale": 1},
                    caches={"archive_shards": {"hits": 0, "misses": 1}},
                ),
            }
        )
        assert aggregated["counters"] == {
            "requests_total": 8, "requests_stale": 1,
        }
        shards = aggregated["caches"]["archive_shards"]
        assert shards["hits"] == 2 and shards["misses"] == 2
        assert shards["hit_rate"] == 0.5

    def test_endpoints_sum_requests_and_keep_pool_max(self):
        aggregated = aggregate_worker_metrics(
            {
                "0": _worker_payload(endpoints={
                    "query": {"requests": 4, "errors": 1,
                              "wall_seconds": 0.5, "max_seconds": 0.3},
                }),
                "1": _worker_payload(endpoints={
                    "query": {"requests": 2, "errors": 0,
                              "wall_seconds": 0.2, "max_seconds": 0.15},
                }),
            }
        )
        query = aggregated["endpoints"]["query"]
        assert query["requests"] == 6 and query["errors"] == 1
        assert query["max_seconds"] == 0.3
        assert abs(query["wall_seconds"] - 0.7) < 1e-9

    def test_unscrapable_workers_contribute_nothing(self):
        aggregated = aggregate_worker_metrics(
            {"0": _worker_payload(counters={"requests_total": 2}), "1": None}
        )
        assert aggregated["counters"] == {"requests_total": 2}

    def test_empty_pool_aggregates_empty(self):
        aggregated = aggregate_worker_metrics({})
        assert aggregated == {
            "counters": {}, "recovery": {}, "caches": {}, "endpoints": {},
        }


# ----------------------------------------------------------------------
# One real supervised pool end to end
# ----------------------------------------------------------------------

SCENARIO_FLAGS = [
    "--scale", str(int(SERVICE_SCALE)),
    "--no-pki",
    "--cadence", str(SERVICE_CADENCE),
]


def _repro_env() -> dict:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.path.join(root, "src"), env.get("PYTHONPATH"))
        if part
    )
    return env


@contextmanager
def supervised_serve(service_archive, processes=2, extra=()):
    """A real ``repro serve --processes N`` subprocess.

    Yields ``(port, admin_port, process)``; tears down via SIGTERM and
    asserts the graceful-drain exit code.
    """
    argv = [
        sys.executable, "-m", "repro", *SCENARIO_FLAGS,
        "serve", "--port", "0", "--archive", service_archive,
        "--processes", str(processes), *extra,
    ]
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=_repro_env(),
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, (
            f"no serving announcement (exit={process.poll()}): {line!r} "
            f"{process.stderr.read() if process.poll() is not None else ''}"
        )
        admin_line = process.stdout.readline()
        admin_match = re.search(r"http://[\d.]+:(\d+)", admin_line)
        assert admin_match, f"no admin announcement: {admin_line!r}"
        yield int(match.group(1)), int(admin_match.group(1)), process
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def _get_json(port: int, path: str):
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


def _get_bytes(port: int, path: str) -> bytes:
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return response.read()


class TestSupervisedPool:
    def test_pool_serves_aggregates_and_drains(self, service_archive):
        with supervised_serve(service_archive, processes=2) as (
            port, admin, process
        ):
            # Supervisor health: both workers alive and ready.
            health = _get_json(admin, "/healthz")
            assert health["status"] == "ready"
            assert health["processes"] == 2
            assert [entry["worker"] for entry in health["workers"]] == [0, 1]
            assert all(entry["alive"] for entry in health["workers"])
            states = [entry["state"] for entry in health["history"]]
            assert states[0] == "live" and states[-1] == "ready"

            # The pool answers queries; repeated fetches are
            # byte-identical no matter which worker accepts.
            bodies = {_get_bytes(port, "/v1/headline") for _ in range(6)}
            assert len(bodies) == 1

            # Worker-tagged aggregation: per-worker payloads appear
            # under their id and the summed counters cover every
            # request the pool served.
            metrics = _get_json(admin, "/metrics")
            assert set(metrics["workers"]) == {"0", "1"}
            for worker_id, payload in metrics["workers"].items():
                assert payload["service"]["worker"] == int(worker_id)
                assert payload["service"]["shared_cache"] is not None
            assert metrics["aggregated"]["counters"]["requests_total"] >= 6
            assert metrics["supervisor"]["mode"] in (
                MODE_REUSEPORT, MODE_INHERITED
            )

            # Exactly one worker computed the headline (it alone read
            # archive summaries); every other answer came from its
            # local LRU or the shared cache.
            computed = [
                payload for payload in metrics["workers"].values()
                if payload["metrics"]["caches"]
                .get("archive_summaries", {}).get("misses", 0) > 0
            ]
            assert len(computed) == 1

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        # Drain closed the listen socket: a fresh connect must fail.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2)

    def test_pool_bytes_match_offline_cli(self, service_archive):
        spec = {"kind": "records", "date": "2022-03-04",
                "tld": "рф", "limit": 5}
        offline = subprocess.run(
            [sys.executable, "-m", "repro", *SCENARIO_FLAGS,
             "query", json.dumps(spec), "--archive", service_archive],
            capture_output=True, env=_repro_env(), timeout=600,
        )
        assert offline.returncode == 0, offline.stderr
        with supervised_serve(service_archive, processes=2) as (port, _, _):
            remote = subprocess.run(
                [sys.executable, "-m", "repro", "query", json.dumps(spec),
                 "--url", f"http://127.0.0.1:{port}"],
                capture_output=True, env=_repro_env(), timeout=600,
            )
        assert remote.returncode == 0, remote.stderr
        assert remote.stdout == offline.stdout
