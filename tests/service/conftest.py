"""Service fixtures: a tiny archive plus a threaded service harness.

The archive is built once per session at 1:20000 (a few hundred
concurrent domains) with a coarse 90-day cadence, so the standard plan
stays fast while still covering the full study period — which lets
series/headline queries replay from disk exactly as production serving
would.
"""

from __future__ import annotations

import asyncio
import threading
import urllib.error
import urllib.request

import pytest

from repro.archive import ArchiveBuilder
from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec
from repro.service import QueryService

#: Scenario shared by the archive build, every service context, and the
#: CLI equivalence runs (which rebuild it from these numbers).
SERVICE_SCALE = 20000.0
SERVICE_CADENCE = 90


def service_config(scenario: str = "baseline"):
    return (
        ScenarioSpec.resolve(scenario)
        .with_config(scale=SERVICE_SCALE, with_pki=False)
        .compile()
    )


@pytest.fixture(scope="session")
def service_archive(tmp_path_factory):
    directory = tmp_path_factory.mktemp("service") / "archive"
    ArchiveBuilder(str(directory), service_config()).build_standard(
        SERVICE_CADENCE
    )
    return str(directory)


def fresh_context(service_archive: str) -> ExperimentContext:
    """An archive-backed context with its own (empty) metrics."""
    return ExperimentContext(
        config=service_config(),
        cadence_days=SERVICE_CADENCE,
        archive=service_archive,
    )


class ServiceThread:
    """Run one QueryService on a background event loop.

    ``with ServiceThread(context) as svc: svc.get("/healthz")`` — the
    exit path performs the service's graceful shutdown.
    """

    def __init__(self, context, **options) -> None:
        self._context = context
        self._options = options
        self._ready = threading.Event()
        self._failure: Exception | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.service: QueryService | None = None
        self.port: int | None = None

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(60), "service did not start in time"
        if self._failure is not None:
            raise self._failure
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # a test already stopped the service; loop is closed
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # surfaced to the test thread
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = QueryService(self._context, **self._options)
        await self.service.start("127.0.0.1", 0)
        self.port = self.service.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.shutdown()

    # ------------------------------------------------------------------
    # Plain blocking HTTP helpers for test threads
    # ------------------------------------------------------------------

    def url(self, path: str) -> str:
        return f"http://127.0.0.1:{self.port}{path}"

    def request(self, path: str, data: bytes | None = None):
        """(status, headers, body) without raising on HTTP errors."""
        request = urllib.request.Request(self.url(path), data=data)
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def get(self, path: str):
        return self.request(path)

    def post(self, path: str, body: bytes):
        return self.request(path, data=body)
