"""Service-layer chaos suite (``pytest -m chaos``).

Drives the *real* ``repro serve`` subprocess with deterministic
service-layer fault injection and asserts the resilience contract
end-to-end:

* no request hangs past its deadline plus a small grace;
* the circuit breaker walks closed → open → half-open → closed and the
  walk is visible through ``/healthz`` and ``/metrics``;
* stale responses are byte-identical to the previously-fresh response
  for the same spec;
* the resilient client's retry budget survives injected
  response-write aborts;
* ``repro query --url`` prints bytes identical to the offline CLI.

The fault seed comes from ``REPRO_CHAOS_SEED`` (CI runs the suite
under two seeds); every assertion here must hold for any seed, because
the targeted faults use ``--fault-rate 1.0`` with ``--fault-match`` —
the seed only shuffles the injected corruption/stall details.

Excluded from the tier-1 run via the ``chaos`` marker; the session
archive fixture is shared with the rest of the service suite.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.client import ClientError, QueryClient

from .conftest import SERVICE_CADENCE, SERVICE_SCALE

pytestmark = pytest.mark.chaos

#: CI sets this to run the suite under distinct deterministic seeds.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))

#: Base CLI matching the session archive's scenario.
SCENARIO_FLAGS = [
    "--scale", str(int(SERVICE_SCALE)),
    "--no-pki",
    "--cadence", str(SERVICE_CADENCE),
]


@contextmanager
def serve(service_archive, *, faults=None, extra=(), processes=1,
          fault_rate="1.0"):
    """A real ``repro serve`` subprocess bound to a free port.

    ``processes >= 2`` starts the pre-fork supervisor; its admin-port
    announcement rides on a *second* stdout line, so the first-line
    parsing below works for both shapes (multi-process callers get the
    admin port from :func:`admin_port_of`).
    """
    argv = [sys.executable, "-m", "repro", *SCENARIO_FLAGS]
    if faults is not None:
        argv += ["--fault-seed", str(CHAOS_SEED), "--fault-rate", fault_rate]
    argv += [
        "serve", "--port", "0", "--archive", service_archive,
        "--processes", str(processes),
        *(faults or ()), *extra,
    ]
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.path.join(root, "src"), env.get("PYTHONPATH"))
        if part
    )
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, (
            f"no serving announcement (exit={process.poll()}): {line!r} "
            f"{process.stderr.read() if process.poll() is not None else ''}"
        )
        if processes >= 2:
            admin_line = process.stdout.readline()
            admin_match = re.search(r"http://[\d.]+:(\d+)", admin_line)
            assert admin_match, f"no admin announcement: {admin_line!r}"
            yield int(match.group(1)), int(admin_match.group(1))
        else:
            yield int(match.group(1))
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def client_for(port: int, **kwargs) -> QueryClient:
    kwargs.setdefault("seed", CHAOS_SEED)
    kwargs.setdefault("timeout", 30.0)
    return QueryClient(f"http://127.0.0.1:{port}", **kwargs)


RECORDS_SPEC_A = {"kind": "records", "date": "2022-03-04", "limit": 1}
RECORDS_SPEC_B = {"kind": "records", "date": "2022-03-04", "limit": 2}


class TestBreakerLifecycle:
    def test_closed_open_half_open_closed(self, service_archive):
        # Archive reads for 2022-03-04 fail with injected IO errors
        # (not retried in the serving path), so two distinct queries for
        # that day open the breaker; everything else stays healthy for
        # priming, stale serving, and the recovery probe.
        faults = ["--fault-match", "2022-03-04", "--fault-stall-ms", "10"]
        extra = [
            "--breaker-threshold", "2",
            "--breaker-cooldown", "3",
            "--breaker-window", "60",
        ]
        with serve(service_archive, faults=faults, extra=extra) as port:
            client = client_for(port)
            assert client.wait_ready()["status"] == "ready"

            # Prime the cache with a healthy query.
            fresh = client.query({"kind": "headline"})
            assert fresh.status == 200 and not fresh.stale

            # Two classified failures open the breaker.  The injected
            # response-write aborts may eat the 500 envelope on the
            # wire; the server-side failure accounting is what matters.
            probe_client = client_for(port, retries=0)
            for spec in (RECORDS_SPEC_A, RECORDS_SPEC_B):
                try:
                    response = probe_client.query(spec)
                    assert response.status == 500
                except ClientError:
                    pass  # response write aborted mid-flight

            health = client.healthz().json()
            assert health["status"] == "degraded"
            assert health["breaker"] == "open"

            # Degraded mode: the cached headline is served stale and
            # byte-identical; an uncached query is refused with
            # Retry-After rather than computed.
            stale = probe_client.query({"kind": "headline"})
            assert stale.status == 200
            assert stale.stale
            assert stale.body == fresh.body
            refused = probe_client.query(
                {"kind": "records", "date": "2022-03-01", "limit": 1}
            )
            assert refused.status == 503
            assert refused.retry_after is not None

            # Cooldown elapses; the next healthy query is the half-open
            # probe and closes the breaker.
            time.sleep(3.2)
            recovered = client.query({"kind": "catalog"})
            assert recovered.status == 200 and not recovered.stale
            health = client.healthz().json()
            assert health["status"] == "ready"
            assert health["breaker"] == "closed"

            metrics = client.metrics().json()
            breaker = metrics["service"]["breaker"]
            assert breaker["state"] == "closed"
            assert breaker["opened_total"] >= 1
            assert breaker["half_open_total"] >= 1
            assert breaker["closed_total"] >= 1
            counters = metrics["metrics"]["counters"]
            assert counters["breaker_opened"] >= 1
            assert counters["breaker_closed"] >= 1
            assert counters["requests_stale"] >= 1
            assert counters["breaker_rejected"] >= 1
            recovery = metrics["metrics"].get("recovery", {})
            assert recovery.get("faults_injected", 0) >= 1


class TestDeadlines:
    def test_no_request_hangs_past_deadline_plus_grace(self, service_archive):
        # Every headline computation stalls for 2s; a 300 ms deadline
        # must answer 504 long before the stall finishes.
        faults = ["--fault-match", '"kind":"headline"', "--fault-stall-ms", "2000"]
        with serve(service_archive, faults=faults) as port:
            client = client_for(port, retries=0, deadline_ms=300)
            client.wait_ready()
            started = time.monotonic()
            response = client.query({"kind": "headline"})
            elapsed = time.monotonic() - started
            assert response.status == 504
            assert elapsed < 1.5, f"request hung for {elapsed:.2f}s"
            payload = response.json()
            assert "deadline" in payload["error"]["message"]

            counters = client_for(port).metrics().json()["metrics"]["counters"]
            assert counters["deadline_exceeded"] >= 1

            # The same query under a generous budget absorbs the stall
            # and completes: the stall delays, it does not break.
            patient = client_for(port, retries=0, deadline_ms=30_000)
            response = patient.query({"kind": "headline"})
            assert response.status == 200

    def test_unaffected_queries_are_fast_while_stalls_target_one_spec(
        self, service_archive
    ):
        faults = ["--fault-match", '"kind":"headline"', "--fault-stall-ms", "2000"]
        with serve(service_archive, faults=faults) as port:
            client = client_for(port, retries=0, deadline_ms=5_000)
            client.wait_ready()
            started = time.monotonic()
            response = client.query({"kind": "catalog"})
            assert response.status == 200
            assert time.monotonic() - started < 2.0


class TestClientSurvivesWriteAborts:
    def test_retry_budget_covers_injected_response_aborts(
        self, service_archive
    ):
        # The first two responses on /v1/query abort mid-write
        # (max_injections=2); the client's retry budget must ride
        # through both and land the third attempt.
        faults = ["--fault-match", "/v1/query", "--fault-stall-ms", "10"]
        with serve(service_archive, faults=faults) as port:
            client = client_for(port, retries=3)
            client.wait_ready()
            response = client.query({"kind": "catalog"})
            assert response.status == 200
            assert client.last_attempts == 3

            metrics = client_for(port).metrics().json()
            counters = metrics["metrics"]["counters"]
            assert counters["responses_aborted"] == 2


class TestProfileArtifact:
    def test_serve_writes_profile_json_on_shutdown(
        self, service_archive, tmp_path
    ):
        # CI points REPRO_CHAOS_PROFILE at the artifact path it uploads;
        # locally the file lands in tmp_path.
        target = os.environ.get("REPRO_CHAOS_PROFILE") or str(
            tmp_path / "chaos-profile.json"
        )
        faults = ["--fault-match", '"kind":"headline"', "--fault-stall-ms", "100"]
        with serve(
            service_archive, faults=faults, extra=["--profile-json", target]
        ) as port:
            client = client_for(port)
            client.wait_ready()
            assert client.query({"kind": "headline"}).status == 200
            assert client.metrics().status == 200
        # The serve context sent SIGTERM and waited: the graceful exit
        # path must have flushed the metrics summary to disk.
        with open(target, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["counters"]["requests_total"] >= 1
        assert payload.get("recovery", {}).get("faults_injected", 0) >= 1


class TestRemoteCliEquivalence:
    SPECS = [
        {"kind": "headline"},
        {"kind": "catalog"},
        {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 5},
        {"kind": "records", "date": "2022-03-04", "tld": "xn--p1ai", "limit": 5},
    ]

    def _cli(self, argv):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (os.path.join(root, "src"), env.get("PYTHONPATH"))
            if part
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, env=env, timeout=600,
        )

    def test_query_url_bytes_match_offline(self, service_archive):
        with serve(service_archive) as port:
            client_for(port).wait_ready()
            for spec in self.SPECS:
                offline = self._cli(
                    [*SCENARIO_FLAGS, "query", json.dumps(spec),
                     "--archive", service_archive]
                )
                remote = self._cli(
                    ["query", json.dumps(spec),
                     "--url", f"http://127.0.0.1:{port}"]
                )
                assert offline.returncode == 0, offline.stderr
                assert remote.returncode == 0, remote.stderr
                assert offline.stdout == remote.stdout, spec

    def test_remote_stale_bytes_match_remote_fresh(self, service_archive):
        # Open the breaker after priming, then compare the CLI's
        # remote-stale bytes against its remote-fresh bytes.
        faults = ["--fault-match", "2022-03-04", "--fault-stall-ms", "10"]
        extra = ["--breaker-threshold", "2", "--breaker-cooldown", "600"]
        with serve(service_archive, faults=faults, extra=extra) as port:
            client = client_for(port)
            client.wait_ready()
            url = f"http://127.0.0.1:{port}"
            fresh = self._cli(["query", '{"kind": "headline"}', "--url", url])
            assert fresh.returncode == 0, fresh.stderr

            probe = client_for(port, retries=0)
            for spec in (RECORDS_SPEC_A, RECORDS_SPEC_B):
                try:
                    probe.query(spec)
                except ClientError:
                    pass
            assert client.healthz().json()["breaker"] == "open"

            stale = self._cli(["query", '{"kind": "headline"}', "--url", url])
            assert stale.returncode == 0, stale.stderr
            assert stale.stdout == fresh.stdout
            assert b"stale" in stale.stderr


# ----------------------------------------------------------------------
# The same resilience contract against the pre-fork worker pool
# ----------------------------------------------------------------------

def _admin_json(admin_port: int, path: str):
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{admin_port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


ENVELOPE_KEYS = ("schema_version", "kind", "spec", "data")


class TestMultiprocWorkerCrash:
    def test_supervisor_restarts_killed_worker(self, service_archive):
        # service.worker_crash hard-KILLs whichever worker computes the
        # poison query (a date no other query touches); the in-flight
        # request fails clean (dropped connection, never a malformed
        # body), the supervisor walks ready -> degraded -> ready, and
        # the pool keeps serving well-formed answers throughout.
        faults = ["--fault-crash-match", "2022-03-18"]
        with serve(
            service_archive, faults=faults, processes=2, fault_rate="0.0"
        ) as (port, admin):
            client = client_for(port)
            assert client.wait_ready()["status"] == "ready"
            fresh = client.query({"kind": "headline"})
            assert fresh.status == 200

            poison = client_for(port, retries=0)
            with pytest.raises(ClientError):
                poison.query(
                    {"kind": "records", "date": "2022-03-18", "limit": 3}
                )

            # The supervisor notices the death and restarts the slot.
            health = None
            for _ in range(200):
                health = _admin_json(admin, "/healthz")
                if health["status"] == "ready" and health["restarts_total"] >= 1:
                    break
                time.sleep(0.1)
            assert health["restarts_total"] >= 1
            assert health["status"] == "ready"
            states = [entry["state"] for entry in health["history"]]
            assert "degraded" in states
            assert states[-1] == "ready"
            assert all(entry["alive"] for entry in health["workers"])

            # A short load run across the pool: zero malformed bodies.
            for index in range(12):
                response = client.query(
                    {"kind": "records", "date": "2022-03-04",
                     "limit": 1 + index % 4}
                )
                assert response.status == 200
                payload = response.json()
                assert all(key in payload for key in ENVELOPE_KEYS)


class TestMultiprocDeadlines:
    def test_pool_answers_504_before_stall_finishes(self, service_archive):
        # Every worker stalls headline computations 2s; the 300 ms
        # deadline must fail fast no matter which worker accepts.
        faults = [
            "--fault-match", '"kind":"headline"', "--fault-stall-ms", "2000",
        ]
        with serve(service_archive, faults=faults, processes=2) as (port, _):
            client = client_for(port, retries=0, deadline_ms=300)
            client.wait_ready()
            started = time.monotonic()
            response = client.query({"kind": "headline"})
            elapsed = time.monotonic() - started
            assert response.status == 504
            assert elapsed < 1.5, f"request hung for {elapsed:.2f}s"

            patient = client_for(port, retries=0, deadline_ms=30_000)
            assert patient.query({"kind": "headline"}).status == 200


class TestMultiprocCoalescing:
    def test_concurrent_identical_queries_read_archive_once(
        self, service_archive
    ):
        # The stall pins the window open: the first worker to take the
        # cross-worker lease sits in the 600 ms stall while the other
        # worker's requests wait on the shared store instead of doing
        # their own archive read.  Pool-wide: exactly one shard miss.
        import concurrent.futures
        import urllib.request

        faults = [
            "--fault-match", '"tld":"xn--p1ai"', "--fault-stall-ms", "600",
        ]
        path = "/v1/records/2022-03-04?tld=xn--p1ai&limit=5"
        with serve(service_archive, faults=faults, processes=2) as (
            port, admin
        ):
            client_for(port).wait_ready()

            def fetch(_):
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=30
                ) as response:
                    return response.status, response.read()

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                results = list(pool.map(fetch, range(8)))
            assert all(status == 200 for status, _ in results)
            assert len({body for _, body in results}) == 1

            aggregated = _admin_json(admin, "/metrics")["aggregated"]
            shards = aggregated["caches"]["archive_shards"]
            assert shards["misses"] == 1, (
                f"{shards['misses']} archive reads for one query "
                "across the pool"
            )


class TestMultiprocBreakerStale:
    def test_pool_serves_stale_after_breakers_open(self, service_archive):
        # Archive reads for 2022-03-04 fail on every worker
        # (threshold 1: the first classified failure opens that
        # worker's breaker).  Once every per-worker breaker is open,
        # the primed headline must still be served — stale and
        # byte-identical — from whichever worker accepts: locally on
        # the worker that computed it, via the shared cache elsewhere.
        faults = ["--fault-match", "2022-03-04", "--fault-stall-ms", "10"]
        extra = ["--breaker-threshold", "1", "--breaker-cooldown", "600"]
        with serve(
            service_archive, faults=faults, extra=extra, processes=2
        ) as (port, admin):
            client = client_for(port)
            client.wait_ready()
            fresh = client.query({"kind": "headline"})
            assert fresh.status == 200 and not fresh.stale

            probe = client_for(port, retries=0)

            def breaker_states():
                payload = _admin_json(admin, "/metrics")["workers"]
                return [
                    worker["service"]["breaker"]["state"]
                    for worker in payload.values()
                    if worker is not None
                ]

            # New connections spread across workers; keep offering
            # failing queries until both breakers have tripped.
            for attempt in range(60):
                if breaker_states() == ["open", "open"]:
                    break
                response = probe.query(
                    {"kind": "records", "date": "2022-03-04",
                     "limit": 1 + attempt}
                )
                assert response.status in (500, 503)
            assert breaker_states() == ["open", "open"]

            for _ in range(4):
                stale = probe.query({"kind": "headline"})
                assert stale.status == 200
                assert stale.stale
                assert stale.body == fresh.body
