"""Tests for repro.registry.domain."""

import datetime as dt

import pytest

from repro.dns.name import DomainName
from repro.errors import RegistryError
from repro.registry.domain import NEVER, DomainRecord


def record(created=0, deleted=NEVER):
    return DomainRecord(DomainName.parse("example.ru"), 0, created, deleted)


class TestLifecycle:
    def test_active_window_half_open(self):
        rec = record(created=10, deleted=20)
        assert not rec.is_active(9)
        assert rec.is_active(10)
        assert rec.is_active(19)
        assert not rec.is_active(20)

    def test_never_deleted(self):
        rec = record(created=0)
        assert rec.is_active(10**6)
        assert rec.deleted_date is None

    def test_dates(self):
        rec = record(created=0, deleted=10)
        assert rec.created_date == dt.date(2017, 6, 18)
        assert rec.deleted_date == dt.date(2017, 6, 28)

    def test_deletion_before_creation_rejected(self):
        with pytest.raises(RegistryError):
            record(created=10, deleted=10)

    def test_active_accepts_date_objects(self):
        rec = record(created=0, deleted=10)
        assert rec.is_active(dt.date(2017, 6, 20))
