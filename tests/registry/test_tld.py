"""Tests for repro.registry.tld."""

from repro.dns.name import DomainName
from repro.registry.tld import (
    RUSSIAN_TLDS,
    STUDY_TLDS,
    is_russian_tld,
    is_study_domain,
)


class TestStudyDomains:
    def test_ru(self):
        assert is_study_domain(DomainName.parse("example.ru"))

    def test_rf_unicode(self):
        assert is_study_domain(DomainName.parse("пример.рф"))

    def test_com_excluded(self):
        assert not is_study_domain(DomainName.parse("example.com"))

    def test_su_not_in_study(self):
        assert not is_study_domain(DomainName.parse("example.su"))


class TestRussianTlds:
    def test_su_counts_for_dependency(self):
        assert is_russian_tld("su")

    def test_unicode_rf(self):
        assert is_russian_tld("рф")
        assert is_russian_tld("xn--p1ai")

    def test_case_and_dot_insensitive(self):
        assert is_russian_tld(".RU")

    def test_none(self):
        assert not is_russian_tld(None)

    def test_western(self):
        assert not is_russian_tld("com")

    def test_sets_consistent(self):
        assert STUDY_TLDS < RUSSIAN_TLDS
