"""Tests for repro.registry.names: the label factory."""

from repro.registry.names import NameFactory
from repro.rng import derive_rng


def factory(seed=1):
    return NameFactory(derive_rng(seed, "test-names"))


class TestUniqueness:
    def test_ascii_unique(self):
        gen = factory()
        labels = [gen.next_ascii() for _ in range(2000)]
        assert len(labels) == len(set(labels))

    def test_cyrillic_unique(self):
        gen = factory()
        labels = [gen.next_cyrillic() for _ in range(500)]
        assert len(labels) == len(set(labels))

    def test_streams_share_dedupe_space(self):
        gen = factory()
        all_labels = [gen.next_ascii() for _ in range(200)] + [
            gen.next_cyrillic() for _ in range(200)
        ]
        assert len(all_labels) == len(set(all_labels))


class TestShape:
    def test_ascii_is_dns_safe(self):
        gen = factory()
        for _ in range(200):
            label = gen.next_ascii()
            assert label
            assert set(label) <= set("abcdefghijklmnopqrstuvwxyz0123456789")

    def test_cyrillic_is_cyrillic(self):
        gen = factory()
        for _ in range(100):
            label = gen.next_cyrillic()
            assert any(ord(ch) > 0x400 for ch in label)

    def test_deterministic(self):
        gen_a, gen_b = factory(9), factory(9)
        a = [gen_a.next_ascii() for _ in range(10)]
        b = [gen_b.next_ascii() for _ in range(10)]
        assert a == b
