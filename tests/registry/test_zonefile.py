"""Tests for repro.registry.zonefile: daily seed lists."""

import pytest

from repro.registry.population import DomainPopulation, PopulationConfig
from repro.registry.tld import TLD_RF, TLD_RU
from repro.registry.zonefile import ZoneFileService
from repro.timeline import STUDY_END, STUDY_START


@pytest.fixture(scope="module")
def service():
    return ZoneFileService(DomainPopulation(PopulationConfig(seed=3, initial_count=500)))


class TestSnapshot:
    def test_day_zero_size(self, service):
        assert len(service.snapshot(STUDY_START)) == 500

    def test_names_iterable(self, service):
        snapshot = service.snapshot(STUDY_START)
        names = snapshot.names()
        assert len(names) == len(snapshot)
        assert all(name.tld in (TLD_RU, TLD_RF) for name in names)

    def test_count_by_tld_sums_to_total(self, service):
        snapshot = service.snapshot(STUDY_START)
        counts = snapshot.count_by_tld()
        assert counts[TLD_RU] + counts[TLD_RF] == len(snapshot)

    def test_snapshots_differ_over_time(self, service):
        early = set(map(str, service.snapshot(STUDY_START).names()))
        late = set(map(str, service.snapshot(STUDY_END).names()))
        assert early != late

    def test_snapshot_carries_date(self, service):
        assert service.snapshot("2020-05-01").date.isoformat() == "2020-05-01"
