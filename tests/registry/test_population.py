"""Tests for repro.registry.population: churn dynamics and determinism."""

import numpy as np
import pytest

from repro.errors import RegistryError
from repro.registry.population import DomainPopulation, PopulationConfig
from repro.registry.tld import TLD_RF, TLD_RU
from repro.timeline import STUDY_END, STUDY_START


@pytest.fixture(scope="module")
def population():
    return DomainPopulation(PopulationConfig(seed=1, initial_count=2000))


class TestConfigValidation:
    def test_zero_initial_rejected(self):
        with pytest.raises(RegistryError):
            PopulationConfig(initial_count=0)

    def test_bad_rf_share_rejected(self):
        with pytest.raises(RegistryError):
            PopulationConfig(rf_share=1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(RegistryError):
            PopulationConfig(daily_birth_rate=-0.1)


class TestDynamics:
    def test_initial_count_active_on_day_zero(self, population):
        # The initial cohort plus possibly a handful of day-0 births.
        active = population.active_count(STUDY_START)
        assert 2000 <= active <= 2010

    def test_population_grows_modestly(self, population):
        start = population.active_count(STUDY_START)
        end = population.active_count(STUDY_END)
        assert 0.9 * start < end < 1.35 * start

    def test_unique_to_concurrent_ratio(self, population):
        # Paper: 11.7 M unique vs ~5 M concurrent (~2.3x).
        ratio = population.unique_count() / population.active_count(STUDY_START)
        assert 1.7 < ratio < 3.0

    def test_rf_share(self, population):
        share = population.is_rf.mean()
        assert 0.02 < share < 0.07

    def test_names_unique(self, population):
        names = [str(rec.name) for rec in population]
        assert len(names) == len(set(names))

    def test_rf_names_are_alabels(self, population):
        rf_records = [rec for rec in population if rec.name.tld == TLD_RF]
        assert rf_records, "expected some .рф registrations"
        for rec in rf_records[:20]:
            assert str(rec.name).endswith(".xn--p1ai")
            assert str(rec.name).split(".")[0].startswith("xn--")

    def test_only_study_tlds(self, population):
        assert {rec.name.tld for rec in population} == {TLD_RU, TLD_RF}

    def test_active_indices_match_mask(self, population):
        date = STUDY_START
        indices = population.active_indices(date)
        mask = population.active_mask(date)
        assert (np.flatnonzero(mask) == indices).all()


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = DomainPopulation(PopulationConfig(seed=7, initial_count=300))
        b = DomainPopulation(PopulationConfig(seed=7, initial_count=300))
        assert [str(r.name) for r in a] == [str(r.name) for r in b]
        assert (a.created == b.created).all()
        assert (a.deleted == b.deleted).all()

    def test_different_seed_differs(self):
        a = DomainPopulation(PopulationConfig(seed=7, initial_count=300))
        b = DomainPopulation(PopulationConfig(seed=8, initial_count=300))
        assert [str(r.name) for r in a] != [str(r.name) for r in b]


class TestReservedNames:
    def test_reserved_occupy_first_indices(self):
        config = PopulationConfig(
            seed=1,
            initial_count=100,
            reserved_names=[("bank-alpha", TLD_RU), ("bank-beta", TLD_RU)],
        )
        population = DomainPopulation(config)
        assert str(population.record(0).name) == "bank-alpha.ru"
        assert str(population.record(1).name) == "bank-beta.ru"

    def test_reserved_never_deleted(self):
        config = PopulationConfig(
            seed=1, initial_count=100, reserved_names=[("bank-alpha", TLD_RU)]
        )
        population = DomainPopulation(config)
        assert population.record(0).is_active(STUDY_END)

    def test_by_name(self):
        config = PopulationConfig(
            seed=1, initial_count=50, reserved_names=[("bank-alpha", TLD_RU)]
        )
        population = DomainPopulation(config)
        from repro.dns.name import DomainName

        assert population.by_name(DomainName.parse("bank-alpha.ru")).index == 0
        with pytest.raises(RegistryError):
            population.by_name(DomainName.parse("not-registered-ever.ru"))
