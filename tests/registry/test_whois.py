"""Tests for repro.registry.whois."""

import pytest

from repro.dns.name import DomainName
from repro.errors import RegistryError
from repro.registry.population import DomainPopulation, PopulationConfig
from repro.registry.tld import TLD_RU
from repro.registry.whois import WhoisService
from repro.timeline import STUDY_START


@pytest.fixture(scope="module")
def setup():
    population = DomainPopulation(
        PopulationConfig(
            seed=5, initial_count=400, reserved_names=[("known-bank", TLD_RU)]
        )
    )
    return population, WhoisService(population)


class TestLookup:
    def test_known_domain(self, setup):
        population, whois = setup
        record = whois.lookup(DomainName.parse("known-bank.ru"))
        assert record.created == population.record(0).created_date
        assert record.registrar

    def test_unknown_domain_raises(self, setup):
        _, whois = setup
        with pytest.raises(RegistryError):
            whois.lookup(DomainName.parse("never-registered-zz.ru"))

    def test_try_lookup_returns_none(self, setup):
        _, whois = setup
        assert whois.try_lookup(DomainName.parse("never-registered-zz.ru")) is None


class TestNewlyRegistered:
    def test_old_domain_not_new(self, setup):
        _, whois = setup
        assert not whois.is_newly_registered(
            DomainName.parse("known-bank.ru"), STUDY_START
        )

    def test_birth_detection(self, setup):
        population, whois = setup
        newborn = next(rec for rec in population if rec.created_day > 100)
        assert whois.is_newly_registered(newborn.name, rec_date(newborn))
        assert not whois.is_newly_registered(
            newborn.name, newborn.created_date.replace(year=2025)
        )


def rec_date(record):
    return record.created_date


class TestRedaction:
    def test_roughly_one_sixth_disclosed(self, setup):
        population, whois = setup
        disclosed = sum(
            1 for rec in population if whois.lookup(rec.name).registrant is not None
        )
        rate = disclosed / len(population)
        assert 0.08 < rate < 0.28  # paper: ~1/6

    def test_redaction_is_stable(self, setup):
        _, whois = setup
        name = DomainName.parse("known-bank.ru")
        assert whois.lookup(name).registrant == whois.lookup(name).registrant
