"""The v2 scenario dimension: cache keys, routing, diffs, isolation."""

import json

import pytest

from repro.api.spec import QuerySpec
from repro.errors import QueryError
from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec

TEST_SCALE = 30000.0


def _context(name: str) -> ExperimentContext:
    return ExperimentContext(
        scenario=ScenarioSpec.resolve(name).with_config(
            scale=TEST_SCALE, with_pki=False
        ),
        cadence_days=120,
    )


@pytest.fixture(scope="module")
def routing():
    """A baseline facade with no-invasion registered beside it."""
    context = _context("baseline")
    context.api.register_scenario(_context("no-invasion"))
    return context.api


class TestV1CacheKeyGolden:
    """The v1 compatibility pin: legacy payloads keep their exact keys."""

    def test_headline_key_is_unchanged(self):
        assert QuerySpec("headline").cache_key() == '{"kind":"headline"}'

    def test_explicit_baseline_normalises_away(self):
        assert (
            QuerySpec("headline", scenario="baseline").cache_key()
            == '{"kind":"headline"}'
        )
        assert (
            QuerySpec.from_json('{"kind": "headline", "scenario": "baseline"}')
            .cache_key()
            == '{"kind":"headline"}'
        )

    def test_legacy_experiment_key_is_unchanged(self):
        spec = QuerySpec.from_dict({"kind": "experiment", "experiment": "fig1"})
        assert spec.cache_key() == '{"experiment":"fig1","kind":"experiment"}'

    def test_scenario_field_extends_the_key(self):
        spec = QuerySpec("headline", scenario="no-invasion")
        assert (
            spec.cache_key()
            == '{"kind":"headline","scenario":"no-invasion"}'
        )

    def test_scenario_ids_are_validated(self):
        with pytest.raises(QueryError, match="kebab-case"):
            QuerySpec("headline", scenario="No Invasion")

    def test_diff_requires_experiment_and_counterfactual(self):
        with pytest.raises(QueryError, match="experiment"):
            QuerySpec("diff", scenario="no-invasion")
        with pytest.raises(QueryError, match="non-baseline"):
            QuerySpec("diff", experiment="fig1")
        with pytest.raises(QueryError, match="non-baseline"):
            QuerySpec("diff", experiment="fig1", scenario="baseline")


class TestScenarioRouting:
    def test_registered_ids_are_listed(self, routing):
        assert routing.scenario_ids() == ["baseline", "no-invasion"]
        catalog = routing.query({"kind": "catalog"}).data
        assert catalog["scenarios"] == ["baseline", "no-invasion"]
        assert "diff" in catalog["kinds"]

    def test_duplicate_registration_is_refused(self, routing):
        with pytest.raises(QueryError, match="already being served"):
            routing.register_scenario(_context("no-invasion"))

    def test_unregistered_scenario_names_the_served_set(self, routing):
        with pytest.raises(QueryError, match="baseline, no-invasion"):
            routing.query({"kind": "headline", "scenario": "depeering"})

    def test_queries_route_to_the_matching_world(self, routing):
        base = routing.query({"kind": "headline"}).data
        counterfactual = routing.query(
            {"kind": "headline", "scenario": "no-invasion"}
        ).data
        # Without the invasion the late-study NS repatriation never
        # happens, so the end-of-study full-dependence share differs.
        assert base["ns_full_end"] != counterfactual["ns_full_end"]

    def test_spec_envelope_echoes_the_scenario(self, routing):
        result = routing.query({"kind": "headline", "scenario": "no-invasion"})
        assert result.spec == {"kind": "headline", "scenario": "no-invasion"}

    def test_sweep_caches_stay_per_scenario(self, routing):
        target = routing.scenario_facade("no-invasion")
        assert target is not routing
        # Both facades have answered a headline query by now (tests
        # above), each priming only its own sweep cache.
        assert routing._full is not None
        assert target._full is not None
        assert routing._full is not target._full


class TestDiffQueries:
    def test_diff_payload_shape_and_deltas(self, routing):
        result = routing.query(
            {"kind": "diff", "experiment": "fig2", "scenario": "no-invasion"}
        )
        data = result.data
        assert data["experiment_id"] == "fig2"
        assert data["scenario"] == "no-invasion"
        assert data["baseline"] == "baseline"
        assert data["measured_delta"]
        for key, delta in data["measured_delta"].items():
            expected = (
                data["scenario_result"]["measured"][key]
                - data["baseline_result"]["measured"][key]
            )
            assert delta == pytest.approx(expected, abs=1e-6)
        # The counterfactual removes the conflict-era repatriation bump.
        assert data["measured_delta"]["conflict_full_bump_pp"] < 0

    def test_diff_is_json_canonical(self, routing):
        text = routing.query_json(
            {"kind": "diff", "experiment": "fig2", "scenario": "no-invasion"}
        )
        envelope = json.loads(text)
        assert envelope["schema_version"] == 2
        assert envelope["kind"] == "diff"
