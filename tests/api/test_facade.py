"""Tests for repro.api.facade: the unified query entry point."""

import json

import pytest

from repro.api import QueryResult, QuerySpec, execute_query
from repro.errors import QueryError
from repro.experiments import ExperimentContext


@pytest.fixture(scope="module")
def context(tiny_world):
    return ExperimentContext(world=tiny_world, cadence_days=60)


class TestFacadeCaching:
    def test_api_property_is_cached(self, context):
        assert context.api is context.api

    def test_full_sweep_cached_across_consumers(self, context):
        assert context.api.full_sweep() is context.api.full_sweep()

    def test_recent_window_cached(self, context):
        assert context.api.recent_window() is context.api.recent_window()


class TestHeadlineQueries:
    def test_headline_matches_facade_helper(self, context):
        result = context.api.query({"kind": "headline"})
        assert result.kind == "headline"
        assert result.data == context.api.headline()

    def test_query_json_deterministic(self, context):
        spec = QuerySpec("headline")
        assert context.api.query_json(spec) == context.api.query_json(spec)


class TestSeriesQueries:
    def test_composition_columns_align(self, context):
        data = context.api.query(
            {"kind": "series", "series": "ns_composition"}
        ).data
        assert data["series"] == "ns_composition"
        lengths = {
            len(data[key])
            for key in ("dates", "full", "part", "non", "total", "full_pct")
        }
        assert len(lengths) == 1

    def test_range_slice_is_subset(self, context):
        whole = context.api.query(
            {"kind": "series", "series": "hosting_composition"}
        ).data
        window = context.api.query(
            {
                "kind": "series", "series": "hosting_composition",
                "start": "2022-01-01", "end": "2022-06-01",
            }
        ).data
        assert 0 < len(window["dates"]) < len(whole["dates"])
        assert all("2022-01-01" <= day <= "2022-06-01" for day in window["dates"])
        positions = [whole["dates"].index(day) for day in window["dates"]]
        assert window["full"] == [whole["full"][p] for p in positions]

    def test_asn_shares_track_fig4_providers(self, context):
        data = context.api.query({"kind": "series", "series": "asn_shares"}).data
        assert set(data["providers"]) == set(data["shares_pct"])
        assert "regru" in data["providers"]
        assert len(data["counts"]["regru"]) == len(data["dates"])

    def test_listed_counts_shape(self, context):
        data = context.api.query(
            {"kind": "series", "series": "listed_counts"}
        ).data
        assert len(data["listed"]) == len(data["dates"])


class TestRecordsQueries:
    def test_pagination_consistent(self, context):
        base = {"kind": "records", "date": "2022-03-04", "tld": "ru"}
        page = context.api.query(dict(base, limit=5)).data
        assert page["limit"] == 5
        assert len(page["records"]) == min(5, page["matched_total"])
        follow = context.api.query(dict(base, offset=5, limit=5)).data
        first_ids = {r["index"] for r in page["records"]}
        assert first_ids.isdisjoint(r["index"] for r in follow["records"])

    def test_punycode_filter_byte_identical(self, context):
        unicode_text = context.api.query_json(
            {"kind": "records", "date": "2022-03-04", "tld": "рф", "limit": 10}
        )
        alabel_text = context.api.query_json(
            {"kind": "records", "date": "2022-03-04", "tld": "xn--p1ai", "limit": 10}
        )
        assert unicode_text == alabel_text
        data = json.loads(unicode_text)["data"]
        assert all(
            record["domain"].endswith(".xn--p1ai")
            for record in data["records"]
        )
        assert all(
            record["domain_unicode"].endswith(".рф")
            for record in data["records"]
        )

    def test_filter_reduces_matches(self, context):
        everything = context.api.query(
            {"kind": "records", "date": "2022-03-04", "limit": 1}
        ).data
        filtered = context.api.query(
            {"kind": "records", "date": "2022-03-04", "tld": "com", "limit": 1}
        ).data
        assert filtered["matched_total"] < everything["matched_total"]
        assert everything["matched_total"] == everything["measured_total"]


class TestExperimentQueries:
    def test_experiment_result_delegates(self, context):
        result = execute_query(
            context, {"kind": "experiment", "experiment": "fig1"}
        )
        assert isinstance(result, QueryResult)
        assert result.kind == "experiment"
        assert result.experiment_id == "fig1"
        assert "fig1" in result.render()
        payload = json.loads(result.to_json())
        assert payload["spec"] == {"kind": "experiment", "experiment": "fig1"}
        assert payload["data"]["experiment_id"] == "fig1"

    def test_unknown_experiment_is_query_error(self, context):
        with pytest.raises(QueryError, match="fig99"):
            context.api.query({"kind": "experiment", "experiment": "fig99"})


class TestCatalog:
    def test_catalog_lists_everything(self, context):
        data = context.api.query({"kind": "catalog"}).data
        assert "fig1" in data["experiments"]
        assert "concentration" in data["extensions"]
        assert "ns_composition" in data["series"]
        assert data["kinds"] == list(
            ("experiment", "series", "headline", "records", "catalog", "diff")
        )
