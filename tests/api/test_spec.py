"""Tests for repro.api.spec: validation, canonicalisation, envelopes."""

import datetime
import json

import pytest

from repro.api import QUERY_KINDS, SCHEMA_VERSION, SERIES_NAMES
from repro.api.spec import QueryResult, QuerySpec, jsonify
from repro.errors import QueryError


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            QuerySpec("mystery")

    def test_every_declared_kind_constructs(self):
        QuerySpec("experiment", experiment="fig1")
        QuerySpec("series", series="ns_composition")
        QuerySpec("headline")
        QuerySpec("records", date="2022-03-04")
        QuerySpec("catalog")
        QuerySpec("diff", experiment="fig1", scenario="no-invasion")
        assert len(QUERY_KINDS) == 6

    def test_experiment_requires_id(self):
        with pytest.raises(QueryError, match="'experiment' id"):
            QuerySpec("experiment")

    def test_series_requires_known_name(self):
        with pytest.raises(QueryError, match="unknown series"):
            QuerySpec("series", series="nope")

    def test_series_rejects_inverted_range(self):
        with pytest.raises(QueryError, match="inverted"):
            QuerySpec(
                "series", series="tld_shares",
                start="2022-06-01", end="2022-01-01",
            )

    def test_records_requires_date(self):
        with pytest.raises(QueryError, match="need a 'date'"):
            QuerySpec("records")

    def test_bad_date_rejected(self):
        with pytest.raises(QueryError, match="bad 'date' date"):
            QuerySpec("records", date="yesterday-ish")

    def test_negative_counts_rejected(self):
        with pytest.raises(QueryError, match="offset"):
            QuerySpec("records", date="2022-03-04", offset=-1)
        with pytest.raises(QueryError, match="limit"):
            QuerySpec("records", date="2022-03-04", limit=-5)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(QueryError, match="unknown query field"):
            QuerySpec.from_dict({"kind": "headline", "colour": "blue"})

    def test_from_dict_requires_kind(self):
        with pytest.raises(QueryError, match="needs a 'kind'"):
            QuerySpec.from_dict({"series": "tld_shares"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(QueryError):
            QuerySpec.from_json("[1, 2]")
        with pytest.raises(QueryError, match="not valid JSON"):
            QuerySpec.from_json("{kind:")


class TestCanonicalisation:
    def test_dates_normalise_to_iso(self):
        spec = QuerySpec(
            "series", series="tld_shares",
            start=datetime.date(2022, 2, 24), end="2022-06-01",
        )
        assert spec.start == "2022-02-24"
        assert spec.end == "2022-06-01"

    def test_tld_unicode_and_alabel_agree(self):
        unicode_spec = QuerySpec("records", date="2022-03-04", tld="рф")
        alabel_spec = QuerySpec("records", date="2022-03-04", tld="xn--p1ai")
        assert unicode_spec.tld == "xn--p1ai"
        assert unicode_spec == alabel_spec
        assert unicode_spec.cache_key() == alabel_spec.cache_key()
        assert hash(unicode_spec) == hash(alabel_spec)

    def test_tld_case_and_dot_normalised(self):
        assert QuerySpec("records", date="2022-03-04", tld=".RU").tld == "ru"

    def test_empty_tld_rejected(self):
        with pytest.raises(QueryError, match="empty tld"):
            QuerySpec("records", date="2022-03-04", tld=" . ")

    def test_counts_accept_strings(self):
        spec = QuerySpec("records", date="2022-03-04", offset="5", limit="10")
        assert spec.offset == 5 and spec.limit == 10

    def test_to_dict_omits_none(self):
        assert QuerySpec("headline").to_dict() == {"kind": "headline"}

    def test_cache_key_is_sorted_compact_json(self):
        spec = QuerySpec("records", date="2022-03-04", tld="ru", limit=3)
        payload = json.loads(spec.cache_key())
        assert payload == spec.to_dict()
        assert ": " not in spec.cache_key()


class TestJsonify:
    def test_dates_tuples_and_keys(self):
        value = jsonify(
            {
                1: (datetime.date(2022, 3, 4), {"set"}),
                "nested": {"tuple": (1, 2)},
            }
        )
        assert value["1"][0] == "2022-03-04"
        assert value["1"][1] == ["set"]
        assert value["nested"]["tuple"] == [1, 2]

    def test_numpy_like_scalars_unwrapped(self):
        class FakeScalar:
            def item(self):
                return 7

        assert jsonify({"n": FakeScalar()}) == {"n": 7}


class _FakeArtefact:
    experiment_id = "fig0"
    measured = {"value": 1}

    def as_payload(self):
        return {"experiment_id": self.experiment_id, "value": 1}

    def render(self):
        return "rendered"


class TestQueryResult:
    def test_exactly_one_payload_source(self):
        with pytest.raises(QueryError):
            QueryResult("headline")
        with pytest.raises(QueryError):
            QueryResult("headline", data={}, artefact=_FakeArtefact())

    def test_envelope_shape_and_version(self):
        result = QueryResult("headline", {"kind": "headline"}, data={"x": 1})
        envelope = result.to_dict()
        assert set(envelope) == {"schema_version", "kind", "spec", "data"}
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["data"] == {"x": 1}

    def test_to_json_is_canonical(self):
        result = QueryResult("headline", {"kind": "headline"}, data={"b": 2, "a": 1})
        text = result.to_json()
        assert text.index('"a"') < text.index('"b"')
        assert ": " not in text and text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_from_experiment_delegates(self):
        result = QueryResult.from_experiment(_FakeArtefact())
        assert result.kind == "experiment"
        assert result.spec == {"kind": "experiment", "experiment": "fig0"}
        assert result.render() == "rendered"
        assert result.measured == {"value": 1}
        assert result.data["experiment_id"] == "fig0"

    def test_data_result_has_no_delegation(self):
        result = QueryResult("headline", data={"x": 1})
        with pytest.raises(AttributeError):
            result.render()

    def test_series_names_catalogued(self):
        assert "asn_shares" in SERIES_NAMES and len(SERIES_NAMES) == 7
