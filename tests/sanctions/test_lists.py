"""Tests for repro.sanctions: entities, designations, list queries."""

import datetime as dt

import pytest

from repro.dns.name import DomainName
from repro.errors import ScenarioError
from repro.sanctions.entity import Designation, SanctionedEntity, SanctionsAuthority
from repro.sanctions.lists import SanctionsList


def name(text):
    return DomainName.parse(text)


@pytest.fixture
def sanctions():
    bank = SanctionedEntity(
        "Big Bank",
        [name("bigbank.ru"), name("bigbank-online.ru")],
        [Designation(SanctionsAuthority.US_OFAC_SDN, "2022-02-24")],
    )
    corp = SanctionedEntity(
        "State Corp",
        [name("statecorp.ru")],
        [
            Designation(SanctionsAuthority.US_OFAC_SDN, "2022-03-11"),
            Designation(SanctionsAuthority.UK_SANCTIONS_LIST, "2022-03-24"),
        ],
    )
    return SanctionsList([bank, corp])


class TestEntity:
    def test_listed_on_earliest(self, sanctions):
        corp = sanctions.entity_for(name("statecorp.ru"))
        assert corp.listed_on() == dt.date(2022, 3, 11)

    def test_is_listed(self, sanctions):
        corp = sanctions.entity_for(name("statecorp.ru"))
        assert not corp.is_listed("2022-03-10")
        assert corp.is_listed("2022-03-11")

    def test_authorities_sorted(self, sanctions):
        corp = sanctions.entity_for(name("statecorp.ru"))
        assert corp.authorities() == [
            SanctionsAuthority.UK_SANCTIONS_LIST,
            SanctionsAuthority.US_OFAC_SDN,
        ]


class TestList:
    def test_all_domains(self, sanctions):
        assert len(sanctions.all_domains()) == 3

    def test_listed_as_of(self, sanctions):
        assert len(sanctions.domains_listed_as_of("2022-02-24")) == 2
        assert len(sanctions.domains_listed_as_of("2022-03-11")) == 3

    def test_is_sanctioned(self, sanctions):
        assert sanctions.is_sanctioned(name("bigbank.ru"))
        assert not sanctions.is_sanctioned(name("innocent.ru"))

    def test_is_sanctioned_with_date(self, sanctions):
        assert not sanctions.is_sanctioned(name("statecorp.ru"), "2022-03-01")
        assert sanctions.is_sanctioned(name("statecorp.ru"), "2022-03-12")

    def test_listing_dates(self, sanctions):
        assert sanctions.listing_dates() == [
            dt.date(2022, 2, 24),
            dt.date(2022, 3, 11),
        ]

    def test_domains_by_authority(self, sanctions):
        uk = sanctions.domains_by_authority(SanctionsAuthority.UK_SANCTIONS_LIST)
        assert uk == [name("statecorp.ru")]

    def test_duplicate_attribution_rejected(self):
        shared = name("shared.ru")
        a = SanctionedEntity(
            "A", [shared], [Designation(SanctionsAuthority.US_OFAC_SDN, "2022-02-24")]
        )
        b = SanctionedEntity(
            "B", [shared], [Designation(SanctionsAuthority.US_OFAC_SDN, "2022-02-24")]
        )
        with pytest.raises(ScenarioError):
            SanctionsList([a, b])
