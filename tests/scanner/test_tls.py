"""Tests for repro.scanner.tls."""

import datetime as dt

import pytest

from repro.pki.ca import CertificateAuthority
from repro.scanner.tls import TlsScanner


@pytest.fixture
def serving():
    ca = CertificateAuthority("le", "Let's Encrypt", "US")
    certs = {
        address: ca.issue([f"site{address}.ru"], "2022-01-01")
        for address in range(1000, 1200)
    }

    def view(date):
        return list(certs.items())

    return view, certs


class TestScan:
    def test_coverage_below_full(self, serving):
        view, certs = serving
        scanner = TlsScanner(view, response_rate=0.85)
        records = scanner.scan_list("2022-03-01")
        assert 0.6 * len(certs) < len(records) < len(certs)

    def test_full_coverage(self, serving):
        view, certs = serving
        scanner = TlsScanner(view, response_rate=1.0)
        assert len(scanner.scan_list("2022-03-01")) == len(certs)

    def test_deterministic_same_day(self, serving):
        view, _ = serving
        scanner = TlsScanner(view)
        a = [(r.address, r.certificate.fingerprint) for r in scanner.scan("2022-03-01")]
        b = [(r.address, r.certificate.fingerprint) for r in scanner.scan("2022-03-01")]
        assert a == b

    def test_coverage_varies_across_weeks(self, serving):
        view, _ = serving
        scanner = TlsScanner(view, response_rate=0.7)
        week1 = {r.address for r in scanner.scan("2022-03-01")}
        week4 = {r.address for r in scanner.scan("2022-03-22")}
        assert week1 != week4

    def test_record_fields(self, serving):
        view, certs = serving
        scanner = TlsScanner(view, response_rate=1.0)
        record = scanner.scan_list("2022-03-01")[0]
        assert record.date == dt.date(2022, 3, 1)
        assert record.certificate is certs[record.address]

    def test_bad_rate_rejected(self, serving):
        view, _ = serving
        with pytest.raises(ValueError):
            TlsScanner(view, response_rate=0.0)
