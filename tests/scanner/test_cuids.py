"""Tests for repro.scanner.cuids: the accumulated scan dataset."""

import datetime as dt

import pytest

from repro.pki.ca import CaPolicy, CertificateAuthority
from repro.scanner.cuids import UniversalScanDataset
from repro.scanner.tls import TlsScanner


@pytest.fixture
def world():
    le = CertificateAuthority("le", "Let's Encrypt", "US")
    russian = CertificateAuthority(
        "ru", "Russian Trusted Root CA", "RU",
        CaPolicy(ct_logging=False, brands=("Russian Sub",)),
    )
    le_cert = le.issue(["normal.ru"], "2022-01-01")
    state_cert = russian.issue(["sberbank-like.ru"], "2022-03-05")

    def view(date):
        yield 100, le_cert
        if date >= dt.date(2022, 3, 10):  # installed later
            yield 200, state_cert

    return view, le_cert, state_cert


class TestIngest:
    def test_run_sweeps_accumulates(self, world):
        view, le_cert, state_cert = world
        dataset = UniversalScanDataset()
        dataset.run_sweeps(TlsScanner(view, response_rate=1.0),
                           "2022-03-01", "2022-03-29", step=7)
        assert len(dataset) == 2
        assert len(dataset.days_scanned) == 5

    def test_first_seen_tracks_install_date(self, world):
        view, _, state_cert = world
        dataset = UniversalScanDataset()
        dataset.run_sweeps(TlsScanner(view, response_rate=1.0),
                           "2022-03-01", "2022-03-29", step=7)
        assert dataset.first_seen(state_cert) == dt.date(2022, 3, 15)

    def test_partial_coverage_catches_up(self, world):
        view, _, state_cert = world
        dataset = UniversalScanDataset()
        dataset.run_sweeps(TlsScanner(view, response_rate=0.5),
                           "2022-03-01", "2022-05-15", step=7)
        # With many weekly sweeps, everything is eventually observed.
        assert len(dataset) == 2


class TestQueries:
    def test_chained_to_organization(self, world):
        view, _, state_cert = world
        dataset = UniversalScanDataset()
        dataset.run_sweeps(TlsScanner(view, response_rate=1.0),
                           "2022-03-01", "2022-03-29", step=7)
        observed = dataset.chained_to_organization("Russian Trusted Root CA")
        assert observed == [state_cert]

    def test_seen_between(self, world):
        view, le_cert, state_cert = world
        dataset = UniversalScanDataset()
        dataset.run_sweeps(TlsScanner(view, response_rate=1.0),
                           "2022-03-01", "2022-03-29", step=7)
        march_new = dataset.seen_between("2022-03-10", "2022-03-31")
        assert march_new == [state_cert]
