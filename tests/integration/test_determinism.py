"""End-to-end determinism: identical configs produce identical results."""

import datetime as dt

from repro.core.composition import collect_composition
from repro.experiments import ExperimentContext, run_experiment
from repro.measurement import FastCollector
from repro.scenario import ScenarioSpec
from repro.sim import build_scenario, build_world


def _baseline(**overrides):
    return (
        ScenarioSpec.resolve("baseline")
        .with_config(scale=5000.0, **overrides)
        .compile()
    )


def _fig1_series(world):
    collector = FastCollector(world)
    series = collect_composition(
        collector.sweep("2022-01-01", "2022-05-25", 7), kind="ns"
    )
    return [(p.date, p.full, p.part, p.non) for p in series]


class TestWorldDeterminism:
    def test_two_builds_identical_series(self):
        config = _baseline(with_pki=False)
        assert _fig1_series(build_world(config)) == _fig1_series(
            build_world(config)
        )

    def test_different_seeds_differ(self):
        base = _baseline(with_pki=False, seed=1)
        other = _baseline(with_pki=False, seed=2)
        assert _fig1_series(build_world(base)) != _fig1_series(build_world(other))


class TestPkiDeterminism:
    def test_certificate_fingerprints_reproducible(self):
        config = _baseline()
        first = build_scenario(config)
        second = build_scenario(config)
        fp_a = [cert.fingerprint for cert in list(first.pki.store)[:200]]
        fp_b = [cert.fingerprint for cert in list(second.pki.store)[:200]]
        assert fp_a == fp_b

    def test_ct_log_roots_reproducible(self):
        config = _baseline()
        first = build_scenario(config)
        second = build_scenario(config)
        for log_a, log_b in zip(first.pki.logs, second.pki.logs):
            assert log_a.tree.root() == log_b.tree.root()


class TestExperimentDeterminism:
    def test_fig5_identical_across_contexts(self):
        config = _baseline(with_pki=False)
        a = run_experiment(
            "fig5", ExperimentContext(config=config, cadence_days=30)
        )
        b = run_experiment(
            "fig5", ExperimentContext(config=config, cadence_days=30)
        )
        assert a.measured == b.measured
        assert a.series == b.series
