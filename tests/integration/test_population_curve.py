"""The black curve: registered-domain totals behave like the paper's.

The paper's Figure 1 total starts just under 5 M and stays within a
narrow band over five years, with only a measurement-outage dip.  At
reproduction scale the same must hold.
"""

import datetime as dt

from repro.core.composition import collect_composition
from repro.measurement import FastCollector
from repro.timeline import STUDY_END, STUDY_START


class TestBlackCurve:
    def test_totals_stay_in_band(self, tiny_world):
        collector = FastCollector(tiny_world)
        series = collect_composition(
            collector.sweep(STUDY_START, STUDY_END, 30), kind="ns"
        )
        totals = series.totals()
        start = totals[0]
        assert all(0.85 * start <= total <= 1.45 * start for total in totals)

    def test_modest_net_growth(self, tiny_world):
        start = tiny_world.population.active_count(STUDY_START)
        end = tiny_world.population.active_count(STUDY_END)
        assert 0.95 * start <= end <= 1.35 * start

    def test_no_single_week_cliff_outside_outage(self, tiny_world):
        collector = FastCollector(tiny_world)
        outage_week = dt.date(2021, 3, 22)
        series = collect_composition(
            collector.sweep(STUDY_START, STUDY_END, 7), kind="ns"
        )
        points = series.points()
        for previous, current in zip(points, points[1:]):
            if abs((current.date - outage_week).days) <= 7 or abs(
                (previous.date - outage_week).days
            ) <= 7:
                continue
            ratio = current.total / max(previous.total, 1)
            assert 0.93 < ratio < 1.07, current.date
