"""Calibration: provider-movement analyses (Figures 6-7, §3.4 prose)."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig(small_context):
    cache = {}

    def run(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, small_context)
        return cache[experiment_id]

    return run


class TestFig6Amazon:
    def test_roughly_half_remained(self, fig):
        measured = fig("fig6").measured
        assert 0.30 <= measured["remained_share"] <= 0.58
        assert 0.35 <= measured["relocated_share"] <= 0.70

    def test_influx_exists(self, fig):
        measured = fig("fig6").measured
        assert measured["inflow_new"] + measured["inflow_relocated"] >= 1


class TestFig7Sedo:
    def test_nearly_all_relocated(self, fig):
        measured = fig("fig7").measured
        assert measured["relocated_share"] >= 0.85

    def test_tiny_remainder(self, fig):
        assert fig("fig7").measured["remained_share"] <= 0.08

    def test_serverel_dominant_destination(self, fig):
        assert fig("fig7").measured["serverel_share_of_relocated"] >= 0.6

    def test_sedo_set_much_larger_than_amazon(self, fig):
        sedo = fig("fig7").measured["original_scaled"]
        amazon_rows = {
            row["category"]: row["count"] for row in fig("fig6").rows
        }
        assert sedo > 3 * amazon_rows["in AS on 2022-03-08"]


class TestGoogleProse:
    def test_more_than_half_relocated(self, fig):
        assert 0.40 <= fig("google").measured["relocated_share"] <= 0.75

    def test_mostly_intra_google(self, fig):
        assert fig("google").measured["intra_google_share_of_relocated"] >= 0.55


class TestCloudflareStability:
    def test_94_percent_remain(self, small_context):
        import datetime as dt

        from repro.core.movement import analyze_movement

        asn = small_context.world.catalog.get("cloudflare").primary_asn
        report = analyze_movement(
            small_context.collector, asn,
            dt.date(2022, 3, 7), dt.date(2022, 5, 25),
        )
        # Paper: 94% of the original set remain; some churn expected.
        assert report.remained_share >= 0.85
        assert report.inflow_total > 0
