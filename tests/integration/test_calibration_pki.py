"""Calibration: the WebPKI figures and tables recover the paper's shapes."""

import datetime as dt

import pytest

from repro.experiments import run_experiment
from repro.timeline import Phase


@pytest.fixture(scope="module")
def fig(small_context):
    cache = {}

    def run(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, small_context)
        return cache[experiment_id]

    return run


class TestTable1:
    def test_lets_encrypt_dominates_every_phase(self, fig):
        shares = fig("table1").measured["shares"]
        for phase in ("pre-conflict", "pre-sanctions", "post-sanctions"):
            top_issuer = max(shares[phase], key=shares[phase].get)
            assert top_issuer == "Let's Encrypt"

    def test_concentration_increases(self, fig):
        shares = fig("table1").measured["shares"]
        le = [shares[p]["Let's Encrypt"] for p in
              ("pre-conflict", "pre-sanctions", "post-sanctions")]
        assert le[0] < le[1] < le[2]
        assert 88.0 <= le[0] <= 94.0
        assert le[2] >= 96.0

    def test_other_cas_collapse_post_sanctions(self, fig):
        shares = fig("table1").measured["shares"]
        assert shares["post-sanctions"].get("Other CAs", 0.0) <= 0.5

    def test_globalsign_visible_after_conflict(self, fig):
        shares = fig("table1").measured["shares"]
        assert "GlobalSign" in shares["pre-sanctions"] or "GlobalSign" in shares[
            "post-sanctions"
        ]

    def test_daily_volume_dips_slightly_not_collapses(self, fig):
        averages = fig("table1").measured["daily_avg"]
        pre = averages["pre-conflict"]
        post = averages["post-sanctions"]
        assert 0.7 * pre < post <= 1.05 * pre


class TestFig8:
    def test_continuing_cas_match_paper(self, fig):
        measured = fig("fig8").measured
        assert measured["continuing_cas"] == [
            "GlobalSign", "Google Trust Services", "Let's Encrypt",
        ]

    def test_majority_of_top10_stopped(self, fig):
        assert 5 <= fig("fig8").measured["stopped_count_of_top10"] <= 7

    def test_lets_encrypt_top_of_ranking(self, fig):
        assert fig("fig8").measured["top10"][0] == "Let's Encrypt"


class TestTable2:
    def test_digicert_and_sectigo_full_revokers(self, fig):
        assert fig("table2").measured["full_revokers"] == ["DigiCert", "Sectigo"]

    def test_sanctioned_rates_exceed_overall(self, fig):
        # The paper: "all CAs have significantly higher revocation rates
        # for sanctioned domains".  At reproduction scale the sanctioned
        # sample per CA is small, so the strict inequality is asserted
        # where the effect is large and with slack elsewhere.
        rates = fig("table2").measured["rates"]
        for issuer in ("DigiCert", "Sectigo"):
            assert rates[issuer]["sanctioned_revoked_pct"] == 100.0
            assert rates[issuer]["revoked_pct"] < 50.0
        le = rates["Let's Encrypt"]
        assert le["sanctioned_revoked_pct"] > le["revoked_pct"]
        for issuer, values in rates.items():
            if values["sanctioned_revoked_pct"] > 0:
                assert (
                    values["sanctioned_revoked_pct"]
                    >= 0.5 * values["revoked_pct"] - 1.0
                ), issuer

    def test_lets_encrypt_rate_small(self, fig):
        rates = fig("table2").measured["rates"]
        assert rates["Let's Encrypt"]["revoked_pct"] < 1.0
        assert rates["Let's Encrypt"]["sanctioned_revoked_pct"] < 5.0


class TestTrustedCa:
    def test_counts_exact(self, fig):
        measured = fig("trustedca").measured
        # The state CA set is absolute, so these are exact in expectation.
        assert measured["rf_domains"] == 2
        assert measured["sanctioned_secured"] == 36
        assert 80 <= measured["certificates"] <= 170

    def test_sanctioned_coverage_about_one_third(self, fig):
        coverage = fig("trustedca").measured["sanctioned_coverage_pct"]
        assert 30.0 <= coverage <= 38.0

    def test_never_in_ct_logs(self, fig):
        assert fig("trustedca").measured["in_ct_logs"] == 0

    def test_negligible_next_to_other_cas(self, fig):
        result = fig("trustedca")
        assert result.measured["certificates"] * 10 < result.rows[-1]["value"]
