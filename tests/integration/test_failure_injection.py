"""Failure injection: the measurement pipeline under infrastructure faults.

A production active-measurement platform sees server outages, glueless
dead ends, and geolocation gaps every day.  These tests drive the honest
path through such faults and check the pipeline degrades the way
OpenINTEL-style pipelines do: fall back where the DNS allows it, skip and
carry on where it does not, and never mislabel.
"""

import datetime as dt

import pytest

from repro.dns.name import DomainName
from repro.dns.rdata import RRType
from repro.dns.resolver import IterativeResolver
from repro.errors import ServfailError
from repro.measurement import FastCollector, ResolvingCollector
from repro.sim.dnsbuild import DnsTreeBuilder

DATE = dt.date(2022, 3, 10)


@pytest.fixture()
def built(tiny_world):
    # Skip the reserved sanctioned block (indices 0..106): we want a
    # cross-section of the ordinary market.
    indices = list(tiny_world.population.active_indices(DATE)[107:207])
    tree = DnsTreeBuilder(tiny_world).build(DATE, indices)
    return tiny_world, tree, indices


def _domain_on_plan(world, indices, provider_key, date=DATE):
    """Find a sampled domain whose DNS plan is exactly one provider's."""
    plan_id = world.dns_plans.id_of(provider_key)
    dns_state = world.dns_state(date)
    for index in indices:
        if dns_state[index] == plan_id:
            return index
    return None


class TestNsServerOutage:
    def test_secondary_ns_takes_over(self, built):
        world, tree, indices = built
        index = _domain_on_plan(world, indices, "regru_dns")
        if index is None:
            pytest.skip("no regru_dns domain in sample")
        name = world.population.record(index).name
        epoch = world.epoch_at(DATE)
        tree.network.set_down(epoch.ns_addresses["ns1.reg.ru"])

        resolver = IterativeResolver(tree.network, tree.root_addresses)
        result = resolver.resolve(name, RRType.A)
        assert result.ok  # ns2.reg.ru answered

    def test_total_provider_outage_skips_domain(self, built):
        world, tree, indices = built
        index = _domain_on_plan(world, indices, "regru_dns")
        if index is None:
            pytest.skip("no regru_dns domain in sample")
        epoch = world.epoch_at(DATE)
        tree.network.set_down(epoch.ns_addresses["ns1.reg.ru"])
        tree.network.set_down(epoch.ns_addresses["ns2.reg.ru"])

        name = world.population.record(index).name
        resolver = IterativeResolver(tree.network, tree.root_addresses)
        with pytest.raises(ServfailError):
            resolver.resolve(name, RRType.A)

    def test_collector_skips_failed_and_keeps_rest(self, tiny_world):
        """The collect loop logs-and-skips, as a real pipeline would."""
        indices = list(tiny_world.population.active_indices(DATE)[107:207])
        regru = _domain_on_plan(tiny_world, indices, "regru_dns")
        if regru is None:
            pytest.skip("no regru_dns domain in sample")

        class OutageCollector(ResolvingCollector):
            def collect(self, date, domain_indices=None):
                # Inject the outage after the tree is built each time.
                tree = self._builder.build(date, domain_indices)
                epoch = self._world.epoch_at(date)
                tree.network.set_down(epoch.ns_addresses["ns1.reg.ru"])
                tree.network.set_down(epoch.ns_addresses["ns2.reg.ru"])
                from repro.dns.cache import ResolverCache
                from repro.timeline import DayClock

                clock = DayClock(date)
                resolver = IterativeResolver(
                    tree.network, tree.root_addresses, clock,
                    ResolverCache(clock),
                )
                results = []
                for index in domain_indices:
                    m = self._measure_one(
                        resolver, date, self._world.population.record(int(index)).name,
                        int(index),
                    )
                    if m is not None:
                        results.append(m)
                return results

        measurements = OutageCollector(tiny_world).collect(DATE, indices)
        measured_indices = {m.domain_index for m in measurements}
        assert regru not in measured_indices
        assert len(measurements) >= len(indices) * 0.5


class TestTldOutage:
    def test_ru_tld_down_fails_all_ru(self, built):
        world, tree, indices = built
        # Take down every address serving the .ru TLD zone.
        for address in tree.network.addresses():
            server = tree.network.server_at(address)
            if server is not None and server.identity == "tld:ru":
                tree.network.set_down(address)
        resolver = IterativeResolver(tree.network, tree.root_addresses)
        ru_index = next(
            i for i in indices if world.population.record(i).name.tld == "ru"
        )
        name = world.population.record(ru_index).name
        with pytest.raises(ServfailError):
            resolver.resolve(name, RRType.A)


class TestGeolocationGaps:
    def test_unmapped_address_counts_as_non_russian(self):
        from repro.core.labels import classify_ns_geo
        from repro.geo.database import GeoDatabaseBuilder
        from repro.measurement.records import DomainMeasurement

        geo = GeoDatabaseBuilder().add_range(0, 99, "RU").build()
        measurement = DomainMeasurement(
            DATE, DomainName.parse("example.ru"),
            ("ns1.reg.ru", "ns2.reg.ru"), (50, 5000), (50,),
        )
        # One NS geolocates to RU, one has no geo data: partial, not full.
        assert classify_ns_geo(measurement, geo) == 1  # LABEL_PART


class TestMeasurementOutageVisibleInTotals:
    def test_black_curve_dip(self, tiny_world):
        """Footnote 8's March 22, 2021 dip appears in the domain totals."""
        collector = FastCollector(tiny_world)
        from repro.core.composition import collect_composition

        series = collect_composition(
            collector.sweep("2021-03-20", "2021-03-24", 1), kind="ns"
        )
        totals = series.totals()
        dip = totals[2]  # 2021-03-22
        assert dip < 0.8 * totals[0]
        assert totals[4] > 0.95 * totals[0]  # recovered
