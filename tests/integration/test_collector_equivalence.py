"""The fast columnar collector must agree, record for record, with the
honest resolving collector (DESIGN.md section 6)."""

import datetime as dt

import pytest

from repro.measurement import FastCollector, ResolvingCollector

#: Dates straddling the Netnod renumbering and the conflict window.
DATES = [
    dt.date(2017, 6, 18),
    dt.date(2020, 8, 15),
    dt.date(2022, 3, 2),
    dt.date(2022, 3, 4),
    dt.date(2022, 5, 25),
]


@pytest.mark.parametrize("date", DATES, ids=str)
def test_record_level_equivalence(tiny_world, date):
    fast = FastCollector(tiny_world)
    resolving = ResolvingCollector(tiny_world)

    active = tiny_world.population.active_indices(date)
    sample = list(active[:: max(len(active) // 120, 1)])
    # Always include the sanctioned block (richest infrastructure churn).
    sample = sorted(set(sample) | set(range(107)))

    resolved = resolving.collect(date, sample)
    snapshot = fast.collect(date)
    fast_records = {
        m.domain: m for m in (snapshot.measurement_for(i) for i in sample)
    }

    assert len(resolved) == len(sample)
    for record in resolved:
        assert record == fast_records[record.domain], str(record.domain)


def test_classification_equivalence(tiny_world):
    """Full/part/non labels agree between the two paths."""
    from repro.core.labels import (
        classify_hosting_geo,
        classify_ns_geo,
        classify_ns_tld,
        snapshot_hosting_geo_labels,
        snapshot_ns_geo_labels,
        snapshot_ns_tld_labels,
    )
    import numpy as np

    date = dt.date(2022, 3, 10)
    fast = FastCollector(tiny_world)
    resolving = ResolvingCollector(tiny_world)
    sample = np.asarray(tiny_world.population.active_indices(date)[:100])

    snapshot = fast.collect(date)
    geo = snapshot.epoch.geo
    ns_fast = snapshot_ns_geo_labels(snapshot, sample)
    host_fast = snapshot_hosting_geo_labels(snapshot, sample)
    tld_fast = snapshot_ns_tld_labels(snapshot, sample)

    for position, record in enumerate(resolving.collect(date, sample)):
        assert classify_ns_geo(record, geo) == ns_fast[position]
        assert classify_hosting_geo(record, geo) == host_fast[position]
        assert classify_ns_tld(record) == tld_fast[position]
