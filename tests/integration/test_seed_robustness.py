"""The calibration must not be overfitted to the default seed.

The scenario's *parameters* are calibrated; the stochastic realisation
(which domain sits in which cohort, churn timing) is not.  Key shapes
must therefore hold across seeds.
"""

import pytest

from repro.experiments import ExperimentContext, run_experiment
from repro.scenario import ScenarioSpec

SEEDS = (7, 424242)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_context(request):
    return ExperimentContext(
        scenario=ScenarioSpec.resolve("baseline").with_config(
            scale=1000.0, seed=request.param, with_pki=False
        ),
        cadence_days=14,
    )


class TestShapesAcrossSeeds:
    def test_fig1_band(self, seeded_context):
        measured = run_experiment("fig1", seeded_context).measured
        assert 62.0 <= measured["ns_full_start_pct"] <= 72.0
        assert 3.0 <= measured["ns_full_change_pp"] <= 11.0

    def test_fig5_band(self, seeded_context):
        measured = run_experiment("fig5", seeded_context).measured
        assert measured["sanctioned_total"] == 107
        # The sanctioned assignments are scripted, not sampled: exact.
        assert measured["feb24_part_pct"] == pytest.approx(33.6, abs=0.1)
        assert measured["mar4_full_pct"] == pytest.approx(93.5, abs=0.1)

    def test_headline_hosting_band(self, seeded_context):
        measured = run_experiment("headline", seeded_context).measured
        assert 67.0 <= measured["hosting_full_start_pct"] <= 75.0
        assert measured["hosting_part_start_pct"] < 1.0

    def test_fig2_direction(self, seeded_context):
        measured = run_experiment("fig2", seeded_context).measured
        assert measured["tld_full_change_pp"] < -2.0
        assert measured["tld_part_change_pp"] > 2.0
