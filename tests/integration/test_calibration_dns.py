"""Calibration: the DNS-side figures recover the paper's shapes.

Tolerances are deliberately generous — the reproduction runs at 1:500
scale with churn noise — but tight enough that who-wins, rough magnitudes,
and crossover timing must hold.
"""

import datetime as dt

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig(small_context):
    cache = {}

    def run(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, small_context)
        return cache[experiment_id]

    return run


class TestFig1NsComposition:
    def test_start_two_thirds_fully_russian(self, fig):
        measured = fig("fig1").measured
        assert 63.0 <= measured["ns_full_start_pct"] <= 71.0

    def test_end_rises_to_paper_level(self, fig):
        measured = fig("fig1").measured
        assert 70.0 <= measured["ns_full_end_pct"] <= 78.0

    def test_change_is_single_digit_positive(self, fig):
        change = fig("fig1").measured["ns_full_change_pp"]
        assert 3.5 <= change <= 10.0

    def test_stable_before_conflict(self, small_context):
        series = small_context.api.full_sweep().ns_composition
        early = series.nearest(dt.date(2018, 1, 1)).share("full")
        late_pre = series.nearest(dt.date(2022, 2, 20)).share("full")
        assert abs(late_pre - early) < 3.5

    def test_jump_concentrated_after_conflict(self, small_context):
        series = small_context.api.full_sweep().ns_composition
        pre = series.nearest(dt.date(2022, 2, 20)).share("full")
        post = series.nearest(dt.date(2022, 5, 25)).share("full")
        assert post - pre > 4.0


class TestFig2TldDependency:
    def test_full_declines(self, fig):
        assert -9.0 <= fig("fig2").measured["tld_full_change_pp"] <= -3.0

    def test_part_grows(self, fig):
        assert 3.0 <= fig("fig2").measured["tld_part_change_pp"] <= 10.0

    def test_conflict_bumps_small(self, fig):
        measured = fig("fig2").measured
        assert -0.5 <= measured["conflict_full_bump_pp"] <= 1.5
        assert -0.5 <= measured["conflict_part_bump_pp"] <= 2.0


class TestFig3TopTlds:
    def test_top5_identity(self, fig):
        assert set(fig("fig3").measured["top_tlds"]) == {
            "ru", "com", "pro", "org", "net",
        }

    def test_ru_first(self, fig):
        assert fig("fig3").measured["top_tlds"][0] == "ru"

    def test_ru_share_level(self, fig):
        end = fig("fig3").measured["end"]
        assert 74.0 <= end["ru"] <= 84.0

    def test_com_grows_substantially(self, fig):
        measured = fig("fig3").measured
        growth = measured["end"]["com"] - measured["start"]["com"]
        assert 4.0 <= growth <= 10.0

    def test_pro_grows_net_shrinks(self, fig):
        measured = fig("fig3").measured
        assert measured["end"]["pro"] > measured["start"]["pro"]
        assert measured["end"]["net"] < measured["start"]["net"]


class TestFig4HostingNetworks:
    def test_russian_big4_stable_around_38(self, fig):
        measured = fig("fig4").measured
        assert 34.0 <= measured["russian_big4_start_pct"] <= 42.0
        assert 34.0 <= measured["russian_big4_end_pct"] <= 43.0
        drift = abs(
            measured["russian_big4_end_pct"] - measured["russian_big4_start_pct"]
        )
        assert drift < 4.0

    def test_cloudflare_around_7_and_stable(self, fig):
        assert 4.5 <= fig("fig4").measured["cloudflare_pct"] <= 8.5

    def test_sedo_collapses_serverel_rises(self, small_context):
        series = small_context.recent_asn_shares()
        sedo = small_context.world.catalog.get("sedo").primary_asn
        serverel = small_context.world.catalog.get("serverel").primary_asn
        assert series.first().share(sedo) > 2.0
        assert series.last().share(sedo) < 0.5
        assert series.first().share(serverel) < 0.5
        assert series.last().share(serverel) > 2.0


class TestFig5Sanctioned:
    def test_feb24_composition(self, fig):
        measured = fig("fig5").measured
        assert measured["sanctioned_total"] == 107
        assert 30.0 <= measured["feb24_part_pct"] <= 38.0
        assert 3.0 <= measured["feb24_non_pct"] <= 8.0

    def test_march4_jump_to_full(self, fig):
        assert fig("fig5").measured["mar4_full_pct"] >= 90.0

    def test_netnod_transition_dates(self, small_context):
        series = small_context.recent_sanctioned_composition()
        before = series.at(dt.date(2022, 3, 2)).share("part")
        after = series.at(dt.date(2022, 3, 4)).share("part")
        assert before > 25.0
        assert after < 6.0


class TestHeadline:
    def test_hosting_baseline(self, fig):
        measured = fig("headline").measured
        assert 68.0 <= measured["hosting_full_start_pct"] <= 74.5
        assert measured["hosting_part_start_pct"] < 1.0
        assert 25.0 <= measured["hosting_non_start_pct"] <= 32.0
