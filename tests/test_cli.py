"""Tests for the repro CLI."""

import pathlib

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "2500", "--no-pki"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["list"])
        # scale/seed default to None (unset) so spec-file values are
        # never stomped; the compiled config supplies 250.0.
        assert args.scale is None
        assert args.seed is None
        assert args.scenario == "baseline"
        assert args.cadence == 7
        assert args.workers == 1

    def test_unset_scale_compiles_to_the_config_default(self):
        from repro.scenario import ScenarioSpec

        config = ScenarioSpec.resolve("baseline").compile()
        assert config.scale == 250.0


class TestCommands:
    def test_list(self, capsys):
        assert main(ARGS + ["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "trustedca" in out

    def test_info(self, capsys):
        assert main(ARGS + ["info"]) == 0
        out = capsys.readouterr().out
        assert "sanctioned domains: 107" in out

    def test_run_fig1(self, capsys, tmp_path):
        out_file = tmp_path / "fig1.txt"
        code = main(ARGS + ["--cadence", "30", "run", "fig1", "--out", str(out_file)])
        assert code == 0
        assert "fig1" in capsys.readouterr().out
        assert out_file.read_text().startswith("== fig1")

    def test_run_unknown_experiment(self, capsys):
        assert main(ARGS + ["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_resolve_registered_domain(self, capsys):
        code = main(
            ARGS + ["resolve", "sanctioned-entity-000.ru", "--date", "2022-03-02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ns4-cloud.nic.ru" in out
        assert "(SE)" in out  # Netnod still serving before March 3

    def test_resolve_unknown_domain(self, capsys):
        code = main(ARGS + ["resolve", "never-registered-xyz.ru"])
        assert code == 1
        assert "not registered" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["--scale", "2500", "--cadence", "60", "report",
             "--output", "EXP.md"]
        )
        assert code == 0
        text = pathlib.Path(tmp_path, "EXP.md").read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 1" in text

    def test_bundle(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(
            ["--scale", "2500", "--cadence", "60", "bundle",
             "--output", str(out_dir), "--extensions"]
        )
        assert code == 0
        names = {path.name for path in out_dir.iterdir()}
        assert "fig1.txt" in names
        assert "fig1_series.csv" in names
        assert "gl25.txt" in names  # extensions included
        assert "table2_rows.csv" in names
        assert "validation.txt" in names
        assert "timeline.txt" in names
        assert (out_dir / "validation.txt").read_text().startswith(
            "world is internally consistent"
        )


    def test_bundle_json_manifest(self, tmp_path):
        import json

        out_dir = tmp_path / "artifacts"
        code = main(
            ["--scale", "2500", "--cadence", "60", "bundle",
             "--output", str(out_dir), "--profile"]
        )
        assert code == 0
        manifest = json.loads((out_dir / "bundle.json").read_text())
        assert manifest["bundle_format"] == 2
        # The canonical scenario identity archives share (joinable).
        assert manifest["scenario"]["id"] == "baseline"
        assert manifest["scenario"]["spec_digest"]
        assert manifest["scenario"]["fingerprint"] == {
            "scale": 2500.0,
            "seed": 20220224,
            "geo_lag_days": 0,
            "netnod_mode": "renumber",
            "sanctioned_domain_count": 107,
        }
        assert manifest["run"] == {
            "scale": 2500.0,
            "seed": 20220224,
            "cadence_days": 60,
            "workers": 1,
            "with_pki": True,
        }
        assert manifest["include_extensions"] is False
        ids = [entry["id"] for entry in manifest["experiments"]]
        assert "fig1" in ids and "headline" in ids
        for entry in manifest["experiments"]:
            assert entry["title"]
            for name in entry["files"]:
                assert (out_dir / name).exists()
        assert "validation.txt" in manifest["extra_files"]
        assert "full_sweep" in manifest["profile"]["phases"]

    def test_timeline(self, capsys):
        assert main(ARGS + ["timeline"]) == 0
        out = capsys.readouterr().out
        assert "Netnod" in out
        assert "2022-02-24" in out


    def test_list_includes_extensions(self, capsys):
        assert main(ARGS + ["list"]) == 0
        out = capsys.readouterr().out
        assert "concentration" in out and "extensions:" in out

    def test_run_extension(self, capsys):
        code = main(ARGS + ["--cadence", "60", "run", "countries"])
        assert code == 0
        assert "countries" in capsys.readouterr().out


class TestArchiveCommands:
    """The archive build/status/verify verbs and ``run --archive``."""

    @pytest.fixture(scope="class")
    def cli_archive(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-archive") / "std"
        code = main(
            ARGS + ["--cadence", "60", "archive", "build", str(directory)]
        )
        assert code == 0
        return directory

    def test_build_reports_days(self, cli_archive, capsys):
        # Second build over the same plan is a no-op resume.
        code = main(ARGS + ["--cadence", "60", "archive", "build", str(cli_archive)])
        assert code == 0
        out = capsys.readouterr().out
        assert "archived 0 days" in out
        assert "already covered" in out

    def test_custom_range_needs_both_bounds(self, cli_archive, capsys):
        code = main(
            ARGS + ["archive", "build", str(cli_archive), "--start", "2022-03-01"]
        )
        assert code == 2
        assert "together" in capsys.readouterr().err

    def test_status(self, cli_archive, capsys):
        assert main(ARGS + ["--cadence", "60", "archive", "status", str(cli_archive)]) == 0
        out = capsys.readouterr().out
        assert "days covered" in out
        assert "standard plan" in out
        # The standard plan at the build cadence is fully present.
        assert "0/" not in out.split("standard plan:")[1]

    def test_verify_clean(self, cli_archive, capsys):
        assert main(ARGS + ["archive", "verify", str(cli_archive)]) == 0
        assert "archive ok" in capsys.readouterr().out

    def test_verify_detects_corruption(self, cli_archive, tmp_path, capsys):
        import shutil

        copy = tmp_path / "corrupt"
        shutil.copytree(cli_archive, copy)
        shard = sorted(copy.glob("*.shard"))[0]
        blob = bytearray(shard.read_bytes())
        blob[-1] ^= 0xFF
        shard.write_bytes(bytes(blob))
        assert main(ARGS + ["archive", "verify", str(copy)]) == 1
        assert "problem(s) found" in capsys.readouterr().err

    def test_status_on_missing_archive(self, tmp_path, capsys):
        assert main(ARGS + ["archive", "status", str(tmp_path / "nope")]) == 1
        assert "manifest" in capsys.readouterr().err

    def test_run_from_archive_matches_live(self, cli_archive, tmp_path, capsys):
        live = tmp_path / "live.txt"
        replayed = tmp_path / "replayed.txt"
        assert main(
            ARGS + ["--cadence", "60", "run", "fig1", "--out", str(live)]
        ) == 0
        assert main(
            ARGS + ["--cadence", "60", "run", "fig1",
                    "--archive", str(cli_archive), "--out", str(replayed)]
        ) == 0
        capsys.readouterr()
        assert replayed.read_text() == live.read_text()

    def test_run_refuses_mismatched_archive(self, cli_archive, capsys):
        code = main(
            ["--scale", "5000", "--no-pki", "--cadence", "60",
             "run", "fig1", "--archive", str(cli_archive)]
        )
        assert code == 1
        assert "different scenario" in capsys.readouterr().err

    def test_bundle_profile_json_counts_archive_cache(
        self, cli_archive, tmp_path, capsys
    ):
        import json

        out_dir = tmp_path / "artifacts"
        profile_path = tmp_path / "metrics.json"
        code = main(
            ARGS + ["--cadence", "60", "bundle",
                    "--output", str(out_dir),
                    "--archive", str(cli_archive),
                    "--profile", "--profile-json", str(profile_path)]
        )
        assert code == 0
        capsys.readouterr()
        manifest = json.loads((out_dir / "bundle.json").read_text())
        shards = manifest["profile"]["caches"]["archive_shards"]
        assert shards["hits"] + shards["misses"] > 0
        # --profile-json carries the identical summary.
        standalone = json.loads(profile_path.read_text())
        assert standalone["caches"]["archive_shards"] == shards


class TestQueryCommand:
    """``repro query``: offline canonical JSON with contractual exit codes."""

    def test_catalog_roundtrip(self, capsys):
        import json

        assert main(ARGS + ["query", '{"kind": "catalog"}']) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert "fig1" in payload["data"]["experiments"]

    def test_flags_build_the_spec(self, capsys):
        import json

        code = main(
            ARGS + ["--cadence", "60", "query",
                    "--kind", "records", "--date", "2022-03-04",
                    "--tld", "RU", "--limit", "2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["tld"] == "ru"
        assert len(payload["data"]["records"]) == 2

    def test_bad_spec_is_usage_error(self, capsys):
        assert main(ARGS + ["query", '{"kind": "mystery"}']) == 2
        assert "unknown query kind" in capsys.readouterr().err

    def test_unknown_experiment_exits_one(self, capsys):
        code = main(
            ARGS + ["query", "--kind", "experiment", "--experiment", "fig99"]
        )
        assert code == 1
        assert "fig99" in capsys.readouterr().err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.max_concurrency == 4
        assert args.queue_limit == 32
        assert args.cache_results == 128
        assert args.archive is None
        # Multi-process pool defaults: single in-process server,
        # auto-picked admin port, private shared-cache temp dir.
        assert args.processes == 1
        assert args.admin_port == 0
        assert args.shared_cache is None
        assert args.fault_crash_match is None

    def test_pool_flags(self):
        args = build_parser().parse_args(
            ["serve", "--processes", "4", "--admin-port", "9999",
             "--shared-cache", "/tmp/shared",
             "--fault-crash-match", "2022-03-18"]
        )
        assert args.processes == 4
        assert args.admin_port == 9999
        assert args.shared_cache == "/tmp/shared"
        assert args.fault_crash_match == "2022-03-18"


class TestLoadgenParser:
    def test_url_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])

    def test_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--url", "http://127.0.0.1:8321"]
        )
        assert args.rate == 50.0
        assert args.duration == 10.0
        assert args.timeout == 30.0
        assert args.output == "BENCH_service_load.json"
        assert args.max_error_rate is None
        assert args.max_p99_ms is None

    def test_gate_flags(self):
        args = build_parser().parse_args(
            ["--seed", "7", "loadgen", "--url", "http://127.0.0.1:1",
             "--rate", "120", "--duration", "5", "--output", "-",
             "--max-error-rate", "0", "--max-p99-ms", "500"]
        )
        assert args.seed == 7
        assert args.rate == 120.0
        assert args.output == "-"
        assert args.max_error_rate == 0.0
        assert args.max_p99_ms == 500.0
