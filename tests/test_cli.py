"""Tests for the repro CLI."""

import pathlib

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "2500", "--no-pki"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["list"])
        assert args.scale == 250.0  # matches ConflictScenarioConfig's default
        assert args.cadence == 7
        assert args.workers == 1


class TestCommands:
    def test_list(self, capsys):
        assert main(ARGS + ["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "trustedca" in out

    def test_info(self, capsys):
        assert main(ARGS + ["info"]) == 0
        out = capsys.readouterr().out
        assert "sanctioned domains: 107" in out

    def test_run_fig1(self, capsys, tmp_path):
        out_file = tmp_path / "fig1.txt"
        code = main(ARGS + ["--cadence", "30", "run", "fig1", "--out", str(out_file)])
        assert code == 0
        assert "fig1" in capsys.readouterr().out
        assert out_file.read_text().startswith("== fig1")

    def test_run_unknown_experiment(self, capsys):
        assert main(ARGS + ["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_resolve_registered_domain(self, capsys):
        code = main(
            ARGS + ["resolve", "sanctioned-entity-000.ru", "--date", "2022-03-02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ns4-cloud.nic.ru" in out
        assert "(SE)" in out  # Netnod still serving before March 3

    def test_resolve_unknown_domain(self, capsys):
        code = main(ARGS + ["resolve", "never-registered-xyz.ru"])
        assert code == 1
        assert "not registered" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["--scale", "2500", "--cadence", "60", "report",
             "--output", "EXP.md"]
        )
        assert code == 0
        text = pathlib.Path(tmp_path, "EXP.md").read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 1" in text

    def test_bundle(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(
            ["--scale", "2500", "--cadence", "60", "bundle",
             "--output", str(out_dir), "--extensions"]
        )
        assert code == 0
        names = {path.name for path in out_dir.iterdir()}
        assert "fig1.txt" in names
        assert "fig1_series.csv" in names
        assert "gl25.txt" in names  # extensions included
        assert "table2_rows.csv" in names
        assert "validation.txt" in names
        assert "timeline.txt" in names
        assert (out_dir / "validation.txt").read_text().startswith(
            "world is internally consistent"
        )


    def test_timeline(self, capsys):
        assert main(ARGS + ["timeline"]) == 0
        out = capsys.readouterr().out
        assert "Netnod" in out
        assert "2022-02-24" in out


    def test_list_includes_extensions(self, capsys):
        assert main(ARGS + ["list"]) == 0
        out = capsys.readouterr().out
        assert "concentration" in out and "extensions:" in out

    def test_run_extension(self, capsys):
        code = main(ARGS + ["--cadence", "60", "run", "countries"])
        assert code == 0
        assert "countries" in capsys.readouterr().out
