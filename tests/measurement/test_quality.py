"""Tests for repro.measurement.quality."""

import datetime as dt

import pytest

from repro.errors import MeasurementError
from repro.measurement import FastCollector, MeasurementHealth
from repro.measurement.quality import CoveragePoint


class TestCoveragePoint:
    def test_coverage(self):
        point = CoveragePoint(dt.date(2021, 3, 22), 100, 62)
        assert point.coverage == pytest.approx(0.62)

    def test_measured_cannot_exceed_seeded(self):
        with pytest.raises(MeasurementError):
            CoveragePoint(dt.date(2021, 3, 22), 100, 101)

    def test_zero_seed_full_coverage(self):
        assert CoveragePoint(dt.date(2021, 3, 22), 0, 0).coverage == 1.0


class TestHealth:
    def test_chronological_enforced(self):
        health = MeasurementHealth()
        health.observe(dt.date(2021, 1, 2), 10, 10)
        with pytest.raises(MeasurementError):
            health.observe(dt.date(2021, 1, 1), 10, 10)

    def test_outage_detection(self):
        health = MeasurementHealth(dip_threshold=0.9)
        health.observe(dt.date(2021, 1, 1), 100, 99)
        health.observe(dt.date(2021, 1, 2), 100, 60)
        health.observe(dt.date(2021, 1, 3), 100, 97)
        assert health.outage_days() == [dt.date(2021, 1, 2)]
        assert health.worst_day().date == dt.date(2021, 1, 2)

    def test_mean_coverage(self):
        health = MeasurementHealth()
        health.observe(dt.date(2021, 1, 1), 100, 100)
        health.observe(dt.date(2021, 1, 2), 100, 50)
        assert health.mean_coverage() == pytest.approx(0.75)

    def test_empty_health_rejects_mean(self):
        with pytest.raises(MeasurementError):
            MeasurementHealth().mean_coverage()

    def test_bad_threshold(self):
        with pytest.raises(MeasurementError):
            MeasurementHealth(dip_threshold=0.0)


class TestEndToEnd:
    def test_detects_the_paper_outage_day(self, tiny_world):
        """Footnote 8's March 22, 2021 dip is flagged automatically."""
        collector = FastCollector(tiny_world)
        health = MeasurementHealth(dip_threshold=0.9)
        for snapshot in collector.sweep("2021-03-15", "2021-03-29", 1):
            seeded = tiny_world.population.active_count(snapshot.date)
            health.observe_snapshot(snapshot, seeded)
        assert health.outage_days() == [dt.date(2021, 3, 22)]
        assert health.mean_coverage() > 0.95
