"""Tests for repro.measurement.seeds: AXFR-based seed lists."""

import pytest

from repro.dns.name import DomainName
from repro.errors import MeasurementError, ZoneError
from repro.measurement.seeds import ZoneTransferSeeder
from repro.sim.dnsbuild import DnsTreeBuilder


class TestSeeder:
    def test_seed_list_recovers_registry_truth(self, tiny_world):
        """The honest AXFR path recovers the registry's active set.

        The zone also (correctly) delegates provider infrastructure
        domains like reg.ru and nic.ru — exactly as the real .ru zone
        does — so the seed list is a superset containing only those
        extras.
        """
        seeder = ZoneTransferSeeder(tiny_world)
        date = "2022-03-10"
        seeded = set(seeder.seed_names(date))
        expected = {
            tiny_world.population.record(int(i)).name
            for i in tiny_world.population.active_indices(date)
        }
        assert expected <= seeded
        extras = {str(name) for name in seeded - expected}
        infra_names = {
            ".".join(host.hostname.labels[-2:])
            for provider in tiny_world.catalog
            for host in provider.ns_hosts
        }
        assert extras <= infra_names

    def test_seed_count_changes_over_time(self, tiny_world):
        seeder = ZoneTransferSeeder(tiny_world)
        early = seeder.seed_count("2017-06-18")
        late = seeder.seed_count("2022-05-25")
        assert early != late

    def test_rf_names_included(self, tiny_world):
        seeder = ZoneTransferSeeder(tiny_world)
        names = seeder.seed_names("2022-03-10")
        assert any(name.tld == "xn--p1ai" for name in names)

    def test_unknown_tld_rejected(self, tiny_world):
        seeder = ZoneTransferSeeder(tiny_world, tlds=("nosuchtld",))
        with pytest.raises(MeasurementError):
            seeder.seed_names("2022-03-10")


class TestAxfrPolicy:
    def test_non_study_tld_refuses_transfer(self, tiny_world):
        tree = DnsTreeBuilder(tiny_world).build("2022-03-10", [200])
        com_address = tree.tld_addresses.get("com")
        assert com_address is not None
        with pytest.raises(ZoneError):
            tree.network.transfer(com_address, DomainName.parse("com"))

    def test_axfr_starts_with_soa(self, tiny_world):
        tree = DnsTreeBuilder(tiny_world).build("2022-03-10", [200])
        rrsets = tree.network.transfer(
            tree.tld_addresses["ru"], DomainName.parse("ru")
        )
        from repro.dns.rdata import RRType

        assert rrsets[0].rtype is RRType.SOA
