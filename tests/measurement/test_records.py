"""Tests for repro.measurement.records."""

import datetime as dt

from repro.dns.name import DomainName
from repro.measurement.records import DomainMeasurement


def measurement(**kwargs):
    defaults = dict(
        date=dt.date(2022, 3, 1),
        domain=DomainName.parse("example.ru"),
        ns_names=("ns2.reg.ru", "ns1.reg.ru"),
        ns_addresses=(20, 10),
        apex_addresses=(30,),
    )
    defaults.update(kwargs)
    return DomainMeasurement(**defaults)


class TestNormalisation:
    def test_sorted_on_construction(self):
        m = measurement()
        assert m.ns_names == ("ns1.reg.ru", "ns2.reg.ru")
        assert m.ns_addresses == (10, 20)

    def test_equality_ignores_input_order(self):
        a = measurement()
        b = measurement(ns_names=("ns1.reg.ru", "ns2.reg.ru"), ns_addresses=(10, 20))
        assert a == b
        assert hash(a) == hash(b)

    def test_domain_index_not_part_of_identity(self):
        assert measurement(domain_index=1) == measurement(domain_index=2)

    def test_apex_sorted_on_construction(self):
        m = measurement(apex_addresses=(50, 30, 40))
        assert m.apex_addresses == (30, 40, 50)

    def test_domain_index_defaults_to_none(self):
        """Raw (resolving-path) records carry no registry index."""
        assert measurement().domain_index is None


class TestIdnDomains:
    def test_rf_domain_normalises_to_alabel(self):
        m = measurement(domain=DomainName.parse("пример.рф"))
        assert str(m.domain) == "xn--e1afmkfd.xn--p1ai"
        assert m.domain == DomainName.parse("xn--e1afmkfd.xn--p1ai")
        assert m.domain.tld == "xn--p1ai"

    def test_rf_ns_tld(self):
        m = measurement(ns_names=("ns1.xn--e1afmkfd.xn--p1ai", "ns1.reg.ru"))
        assert m.ns_tlds() == ("ru", "xn--p1ai")


class TestNsTlds:
    def test_dedup_sorted(self):
        m = measurement(
            ns_names=("ns1.reg.ru", "alice.ns.cloudflare.com", "ns2.reg.ru")
        )
        assert m.ns_tlds() == ("com", "ru")

    def test_single(self):
        assert measurement().ns_tlds() == ("ru",)
