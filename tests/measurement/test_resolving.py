"""Tests for repro.measurement.resolving: the honest collector."""

import pytest

from repro.measurement.resolving import ResolvingCollector


@pytest.fixture(scope="module")
def collector(tiny_world):
    return ResolvingCollector(tiny_world)


class TestCollect:
    def test_collects_requested_subset(self, collector, tiny_world):
        indices = tiny_world.population.active_indices("2022-03-10")[:30]
        measurements = collector.collect("2022-03-10", indices)
        assert len(measurements) == 30
        assert all(m.date.isoformat() == "2022-03-10" for m in measurements)

    def test_every_record_complete(self, collector, tiny_world):
        indices = tiny_world.population.active_indices("2022-03-10")[:30]
        for m in collector.collect("2022-03-10", indices):
            assert m.ns_names
            assert m.ns_addresses
            assert m.apex_addresses

    def test_inactive_domain_skipped(self, collector, tiny_world):
        import numpy as np

        population = tiny_world.population
        dead = [
            int(i)
            for i in np.flatnonzero(~population.active_mask("2022-03-10"))[:3]
        ]
        if not dead:
            pytest.skip("no inactive domain at this date")
        measurements = collector.collect("2022-03-10", dead)
        assert measurements == []
