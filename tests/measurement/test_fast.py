"""Tests for repro.measurement.fast: the columnar collector."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.fast import FastCollector


@pytest.fixture(scope="module")
def collector(tiny_world):
    return FastCollector(tiny_world)


class TestCollect:
    def test_measured_equals_active_on_normal_days(self, collector, tiny_world):
        snapshot = collector.collect("2020-06-01")
        assert (
            snapshot.measured
            == tiny_world.population.active_indices("2020-06-01")
        ).all()

    def test_snapshot_len(self, collector):
        snapshot = collector.collect("2020-06-01")
        assert len(snapshot) == len(snapshot.measured)

    def test_subset(self, collector):
        snapshot = collector.collect("2020-06-01")
        sanctioned = snapshot.subset(range(107))
        assert len(sanctioned) == 107

    def test_measurement_for_matches_world(self, collector, tiny_world):
        snapshot = collector.collect("2022-03-10")
        index = int(snapshot.measured[10])
        m = snapshot.measurement_for(index)
        assert m.domain == tiny_world.population.record(index).name
        assert set(m.ns_names) == set(
            tiny_world.ns_hostnames_for(index, "2022-03-10")
        )
        assert set(m.apex_addresses) == set(
            tiny_world.apex_addresses(index, "2022-03-10")
        )

    def test_measurements_iterator(self, collector):
        snapshot = collector.collect("2020-06-01")
        sample = list(snapshot.measurements(snapshot.measured[:5]))
        assert len(sample) == 5


class TestOutage:
    def test_outage_day_drops_coverage(self, collector, tiny_world):
        normal = collector.collect("2021-03-21")
        outage = collector.collect("2021-03-22")
        assert len(outage) < 0.8 * len(normal)

    def test_outage_is_deterministic(self, tiny_world):
        a = FastCollector(tiny_world).collect("2021-03-22")
        b = FastCollector(tiny_world).collect("2021-03-22")
        assert (a.measured == b.measured).all()

    def test_custom_outage_dates(self, tiny_world):
        collector = FastCollector(
            tiny_world, outage_dates=[dt.date(2020, 1, 1)], outage_coverage=0.5
        )
        assert len(collector.collect("2020-01-01")) < len(
            collector.collect("2020-01-02")
        )

    def test_bad_coverage_rejected(self, tiny_world):
        with pytest.raises(MeasurementError):
            FastCollector(tiny_world, outage_coverage=1.5)


class TestSweep:
    def test_sweep_matches_random_access(self, collector):
        swept = {
            s.date: s for s in collector.sweep("2022-02-20", "2022-03-10", 3)
        }
        for date, snapshot in swept.items():
            direct = collector.collect(date)
            assert (snapshot.measured == direct.measured).all()
            assert (
                snapshot.dns_ids[snapshot.measured]
                == direct.dns_ids[direct.measured]
            ).all()
            assert (
                snapshot.hosting_ids[snapshot.measured]
                == direct.hosting_ids[direct.measured]
            ).all()
