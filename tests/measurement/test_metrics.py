"""Tests for repro.measurement.metrics: the sweep instrumentation layer."""

import pytest

from repro.measurement.metrics import PhaseStat, SweepMetrics


class TestPhases:
    def test_phase_times_and_counts(self):
        metrics = SweepMetrics()
        with metrics.phase("sweep") as stat:
            stat.snapshots += 10
        recorded = metrics.get_phase("sweep")
        assert recorded is stat
        assert recorded.wall_seconds >= 0.0
        assert recorded.snapshots == 10
        assert recorded.runs == 1

    def test_phase_accumulates_across_runs(self):
        metrics = SweepMetrics()
        for _ in range(3):
            with metrics.phase("sweep") as stat:
                stat.snapshots += 1
        assert metrics.get_phase("sweep").runs == 3
        assert metrics.get_phase("sweep").snapshots == 3

    def test_throughput_zero_without_work(self):
        stat = PhaseStat("idle")
        assert stat.snapshots_per_second == 0.0

    def test_phase_order_preserved(self):
        metrics = SweepMetrics()
        for name in ("build", "sweep", "scan"):
            with metrics.phase(name):
                pass
        assert [stat.name for stat in metrics.phases()] == [
            "build", "sweep", "scan",
        ]


class TestCaches:
    def test_hit_rate(self):
        metrics = SweepMetrics()
        metrics.record_cache("resolver", 3, 1)
        assert metrics.cache_hit_rate("resolver") == pytest.approx(0.75)

    def test_hit_rate_accumulates(self):
        metrics = SweepMetrics()
        metrics.record_cache("resolver", 1, 1)
        metrics.record_cache("resolver", 3, 0)
        assert metrics.cache_hit_rate("resolver") == pytest.approx(0.8)

    def test_unknown_or_idle_cache(self):
        metrics = SweepMetrics()
        assert metrics.cache_hit_rate("nope") == 0.0
        metrics.record_cache("idle", 0, 0)
        assert metrics.cache_hit_rate("idle") == 0.0


class TestRecoveryCounters:
    def test_record_and_read(self):
        metrics = SweepMetrics()
        assert metrics.recovery_count("chunk_retries") == 0
        metrics.record_recovery("chunk_retries")
        metrics.record_recovery("chunk_retries", 2)
        assert metrics.recovery_count("chunk_retries") == 3

    def test_summary_includes_recovery(self):
        metrics = SweepMetrics()
        metrics.record_recovery("faults_injected", 4)
        metrics.record_recovery("degraded_to_serial")
        assert metrics.summary()["recovery"] == {
            "faults_injected": 4,
            "degraded_to_serial": 1,
        }

    def test_render_lists_recovery_counters(self):
        metrics = SweepMetrics()
        metrics.record_recovery("shards_quarantined", 2)
        text = metrics.render()
        assert "recovery" in text
        assert "shards_quarantined" in text
        assert "2" in text

    def test_idle_metrics_have_empty_recovery(self):
        assert SweepMetrics().summary()["recovery"] == {}


class TestReporting:
    def test_summary_structure(self):
        metrics = SweepMetrics()
        with metrics.phase("sweep") as stat:
            stat.snapshots += 5
            stat.notes["executor"] = "serial"
        metrics.record_cache("label_matrix", 4, 1)
        summary = metrics.summary()
        assert summary["phases"]["sweep"]["snapshots"] == 5
        assert summary["phases"]["sweep"]["executor"] == "serial"
        assert summary["caches"]["label_matrix"]["hit_rate"] == 0.8

    def test_render_mentions_phases_and_caches(self):
        metrics = SweepMetrics()
        with metrics.phase("sweep") as stat:
            stat.snapshots += 5
        metrics.record_cache("resolver", 1, 1)
        text = metrics.render()
        assert "sweep" in text
        assert "resolver" in text
        assert "50.0%" in text

    def test_render_empty(self):
        assert "no instrumented work" in SweepMetrics().render()


class TestContextIntegration:
    def test_full_sweep_populates_metrics(self, tiny_world):
        from repro.experiments import ExperimentContext

        context = ExperimentContext(world=tiny_world, cadence_days=60)
        context.api.full_sweep()
        stat = context.metrics.get_phase("full_sweep")
        assert stat is not None
        assert stat.snapshots == len(context.api.full_sweep().ns_composition)
        assert stat.notes["executor"] == "serial"

    def test_recent_sweep_records_label_cache(self, tiny_world):
        from repro.experiments import ExperimentContext

        context = ExperimentContext(world=tiny_world, cadence_days=60)
        days = len(context.recent_asn_shares())
        summary = context.metrics.summary()
        counters = summary["caches"]["label_matrix"]
        assert counters["hits"] + counters["misses"] == days
        # Epochs are rare relative to days: the cache must mostly hit.
        assert counters["hits"] > counters["misses"]


class TestResolvingCollectorMetrics:
    def test_resolver_cache_stats_flow_into_metrics(self, tiny_world):
        from repro.measurement.resolving import ResolvingCollector

        metrics = SweepMetrics()
        collector = ResolvingCollector(tiny_world, metrics=metrics)
        indices = tiny_world.population.active_indices("2022-03-04")[:5]
        results = collector.collect("2022-03-04", indices)
        assert results
        assert metrics.cache_hit_rate("resolver") > 0.0
