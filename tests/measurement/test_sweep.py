"""Tests for repro.measurement.sweep: chunking, executors, equivalence."""

import datetime as dt

import pytest

from repro.core.reducers import FullSweepReducer, RecentWindowReducer
from repro.errors import MeasurementError
from repro.experiments import ExperimentContext
from repro.measurement.fast import FastCollector
from repro.measurement.sweep import (
    SerialChunkExecutor,
    SweepEngine,
    partition_chunks,
)
from repro.scenario import ScenarioSpec

#: The paper's footnote-8 measurement outage day (inside the study window).
OUTAGE = dt.date(2021, 3, 22)

START = dt.date(2021, 3, 15)
END = dt.date(2021, 4, 10)


@pytest.fixture(scope="module")
def engine_config():
    return ScenarioSpec.resolve("baseline").with_config(
        scale=5000.0, with_pki=False
    ).compile()


@pytest.fixture(scope="module")
def serial_context(engine_config):
    return ExperimentContext(config=engine_config, cadence_days=60, workers=1)


def sweep_series_equal(a, b):
    """Assert two SweepSeries are bit-identical."""
    for attr in ("ns_composition", "hosting_composition", "tld_composition"):
        pa, pb = getattr(a, attr).points(), getattr(b, attr).points()
        assert len(pa) == len(pb)
        for x, y in zip(pa, pb):
            assert (x.date, x.full, x.part, x.non) == (
                y.date, y.full, y.part, y.non,
            )
    sa, sb = list(a.tld_shares), list(b.tld_shares)
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert (x.date, x.total, x.counts) == (y.date, y.total, y.counts)


class TestPartition:
    def test_chunk_size_one(self):
        chunks = partition_chunks("2022-01-01", "2022-01-05", 1, 1)
        assert len(chunks) == 5
        assert all(chunk.days == 1 for chunk in chunks)
        assert chunks[0].start == chunks[0].end == dt.date(2022, 1, 1)
        assert chunks[-1].start == dt.date(2022, 1, 5)

    def test_chunk_larger_than_range(self):
        chunks = partition_chunks("2022-01-01", "2022-01-05", 1, 1000)
        assert len(chunks) == 1
        assert chunks[0].start == dt.date(2022, 1, 1)
        assert chunks[0].end == dt.date(2022, 1, 5)
        assert chunks[0].days == 5

    def test_boundaries_stay_on_step_grid(self):
        chunks = partition_chunks("2022-01-01", "2022-02-15", 7, 3)
        grid = {
            dt.date(2022, 1, 1) + dt.timedelta(days=7 * k) for k in range(7)
        }
        visited = []
        for chunk in chunks:
            day = chunk.start
            while day <= chunk.end:
                visited.append(day)
                day += dt.timedelta(days=chunk.step)
        assert set(visited) <= grid
        assert len(visited) == len(set(visited)) == 7  # exact cover, no dupes

    def test_single_day_range(self):
        chunks = partition_chunks("2022-01-01", "2022-01-01", 7, 4)
        assert len(chunks) == 1
        assert chunks[0].days == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(MeasurementError):
            partition_chunks("2022-01-02", "2022-01-01", 1, 1)
        with pytest.raises(MeasurementError):
            partition_chunks("2022-01-01", "2022-01-02", 0, 1)
        with pytest.raises(MeasurementError):
            partition_chunks("2022-01-01", "2022-01-02", 1, 0)


class TestRunValidation:
    """SweepEngine.run rejects degenerate ranges up front."""

    def test_inverted_range_rejected(self, tiny_world):
        engine = SweepEngine(FastCollector(tiny_world))
        with pytest.raises(MeasurementError, match="after its end"):
            engine.run(FullSweepReducer(), "2022-01-02", "2022-01-01", 1)

    def test_non_positive_step_rejected(self, tiny_world):
        engine = SweepEngine(FastCollector(tiny_world))
        for step in (0, -3):
            with pytest.raises(MeasurementError, match="step must be >= 1"):
                engine.run(FullSweepReducer(), START, END, step)

    def test_step_larger_than_range_measures_start_only(self, tiny_world):
        engine = SweepEngine(FastCollector(tiny_world))
        records = engine.run(FullSweepReducer(), START, START + dt.timedelta(days=3), 365)
        assert [record.date for record in records] == [START]

    def test_partition_step_larger_than_range(self):
        chunks = partition_chunks("2022-01-01", "2022-01-04", 365, 10)
        assert len(chunks) == 1
        assert chunks[0].days == 1
        assert chunks[0].start == chunks[0].end == dt.date(2022, 1, 1)


class TestSerialChunking:
    """The in-process fallback: any chunking must be bit-identical."""

    def test_chunked_equals_unchunked(self, tiny_world):
        collector = FastCollector(tiny_world)
        reducer = FullSweepReducer()
        baseline = SweepEngine(collector).run(reducer, START, END, 1)
        for chunk_days in (1, 2, 7, 1000):
            engine = SweepEngine(collector, chunk_days=chunk_days)
            records = engine.run(reducer, START, END, 1)
            assert records == baseline

    def test_outage_day_inside_chunk(self, tiny_world):
        """Chunk boundaries around the outage day don't change its sample."""
        collector = FastCollector(tiny_world)
        reducer = FullSweepReducer()
        baseline = {
            r.date: r for r in SweepEngine(collector).run(reducer, START, END, 1)
        }
        normal = baseline[OUTAGE - dt.timedelta(days=1)]
        assert baseline[OUTAGE].measured_count < normal.measured_count
        for chunk_days in (1, 2, 5):
            engine = SweepEngine(collector, chunk_days=chunk_days)
            for record in engine.run(reducer, START, END, 1):
                assert record == baseline[record.date]

    def test_records_in_date_order(self, tiny_world):
        engine = SweepEngine(FastCollector(tiny_world), chunk_days=2)
        records = engine.run(FullSweepReducer(), START, END, 3)
        dates = [record.date for record in records]
        assert dates == sorted(dates)

    def test_executor_without_config_stays_serial(self, tiny_world):
        """No scenario config -> workers cannot rebuild -> serial fallback."""
        engine = SweepEngine(FastCollector(tiny_world), workers=4, chunk_days=5)
        assert not engine.parallel_capable
        records = engine.run(FullSweepReducer(), START, END, 1)
        baseline = SweepEngine(FastCollector(tiny_world)).run(
            FullSweepReducer(), START, END, 1
        )
        assert records == baseline

    def test_bad_workers_rejected(self, tiny_world):
        with pytest.raises(MeasurementError):
            SweepEngine(FastCollector(tiny_world), workers=0)


class TestParallelEquivalence:
    """workers=4 across real processes must match workers=1 bit-for-bit."""

    def test_full_sweep_bit_identical(self, engine_config, serial_context):
        parallel_context = ExperimentContext(
            config=engine_config, cadence_days=60, workers=4
        )
        sweep_series_equal(
            serial_context.api.full_sweep(), parallel_context.api.full_sweep()
        )
        stat = parallel_context.metrics.get_phase("full_sweep")
        assert stat.notes["executor"] == "process"
        assert stat.notes["workers"] == 4

    def test_recent_window_bit_identical(self, engine_config, serial_context):
        parallel_context = ExperimentContext(
            config=engine_config, cadence_days=60, workers=2, chunk_days=17
        )
        serial_asn = list(serial_context.recent_asn_shares())
        parallel_asn = list(parallel_context.recent_asn_shares())
        assert len(serial_asn) == len(parallel_asn)
        for x, y in zip(serial_asn, parallel_asn):
            assert (x.date, x.total, x.counts) == (y.date, y.total, y.counts)
        sp = serial_context.recent_sanctioned_composition().points()
        pp = parallel_context.recent_sanctioned_composition().points()
        for x, y in zip(sp, pp):
            assert (x.date, x.full, x.part, x.non) == (
                y.date, y.full, y.part, y.non,
            )
        assert (
            serial_context.recent_listed_counts()
            == parallel_context.recent_listed_counts()
        )

    def test_direct_engine_parallel_records_equal(self, engine_config):
        """Engine-level check, outage day included in the parallel range."""
        serial_engine = SweepEngine(
            FastCollector(
                ExperimentContext(config=engine_config, workers=1).world
            )
        )
        context = ExperimentContext(config=engine_config, workers=2)
        reducer = FullSweepReducer()
        baseline = serial_engine.run(reducer, START, END, 1)
        parallel = context.engine.run(reducer, START, END, 1)
        assert parallel == baseline


class TestReducerPickling:
    def test_recent_reducer_drops_matrix_cache(self, tiny_world):
        import pickle

        context = ExperimentContext(world=tiny_world, cadence_days=60)
        reducer = RecentWindowReducer(
            context.fig4_asns(), tiny_world.sanctioned_indices
        )
        snapshot = context.collector.collect("2022-03-04")
        reducer.reduce_day(snapshot)
        assert reducer._matrix_cache
        clone = pickle.loads(pickle.dumps(reducer))
        assert clone._matrix_cache == {}
        assert clone.asns == reducer.asns
        first = reducer.reduce_day(snapshot)
        second = clone.reduce_day(snapshot)
        assert (first.asn_counts, first.sanctioned, first.listed_count) == (
            second.asn_counts, second.sanctioned, second.listed_count,
        )
