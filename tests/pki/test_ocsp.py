"""Tests for repro.pki.ocsp."""

import datetime as dt

from repro.pki.ca import CertificateAuthority
from repro.pki.ocsp import OcspStatus


def test_good_revoked_unknown_trichotomy():
    ca = CertificateAuthority("le", "Let's Encrypt", "US")
    other = CertificateAuthority("dc", "DigiCert", "US")

    good = ca.issue(["a.ru"], "2022-01-01")
    revoked = ca.issue(["b.ru"], "2022-01-01")
    ca.revoke(revoked, "2022-02-01")
    foreign = other.issue(["c.ru"], "2022-01-01")

    at = dt.date(2022, 3, 1)
    assert ca.ocsp.status(good, at) is OcspStatus.GOOD
    assert ca.ocsp.status(revoked, at) is OcspStatus.REVOKED
    assert ca.ocsp.status(foreign, at) is OcspStatus.UNKNOWN


def test_responder_sees_new_issuance_live():
    ca = CertificateAuthority("le", "Let's Encrypt", "US")
    responder = ca.ocsp  # grabbed before issuance
    cert = ca.issue(["a.ru"], "2022-01-01")
    assert responder.status(cert, dt.date(2022, 1, 2)) is OcspStatus.GOOD
