"""Tests for repro.pki.store."""

import datetime as dt

import pytest

from repro.pki.ca import CertificateAuthority
from repro.pki.store import CertificateStore


@pytest.fixture
def setup():
    le = CertificateAuthority("le", "Let's Encrypt", "US")
    dc = CertificateAuthority("dc", "DigiCert", "US")
    store = CertificateStore()
    certs = [
        le.issue(["a.ru"], "2022-01-01", validity_days=90),
        le.issue(["b.com"], "2022-01-05", validity_days=90),
        le.issue(["пример.рф"], "2022-02-01", validity_days=90),
        dc.issue(["c.ru"], "2021-06-01", validity_days=180),
    ]
    store.add_all(certs)
    return store, certs


class TestIndexing:
    def test_len(self, setup):
        store, _ = setup
        assert len(store) == 4

    def test_duplicate_ignored(self, setup):
        store, certs = setup
        store.add(certs[0])
        assert len(store) == 4

    def test_by_fingerprint(self, setup):
        store, certs = setup
        assert store.by_fingerprint(certs[0].fingerprint) is certs[0]
        assert store.by_fingerprint("nope") is None


class TestQueries:
    def test_matching_tlds(self, setup):
        store, _ = setup
        matched = store.matching_tlds(("ru", "xn--p1ai"))
        assert len(matched) == 3

    def test_issued_between(self, setup):
        store, _ = setup
        hits = store.issued_between("2022-01-01", "2022-01-31")
        assert len(hits) == 2

    def test_validity_ending_after(self, setup):
        store, _ = setup
        # The DigiCert cert expired 2021-11-28; the rest end in 2022.
        survivors = store.validity_ending_after(dt.date(2022, 2, 25))
        assert len(survivors) == 3

    def test_count_by_issuer(self, setup):
        store, _ = setup
        counts = store.count_by_issuer()
        assert counts == {"Let's Encrypt": 3, "DigiCert": 1}

    def test_count_by_issuer_subset(self, setup):
        store, certs = setup
        counts = store.count_by_issuer(certs[:1])
        assert counts == {"Let's Encrypt": 1}
