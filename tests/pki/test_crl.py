"""Tests for repro.pki.crl."""

import datetime as dt

import pytest

from repro.errors import RevocationError
from repro.pki.crl import CertificateRevocationList, RevocationReason


@pytest.fixture
def crl():
    return CertificateRevocationList("DigiCert")


class TestEntries:
    def test_add_and_query(self, crl):
        crl.add(5, "2022-03-01", RevocationReason.KEY_COMPROMISE)
        assert crl.is_revoked(5)
        assert crl.entry_for(5).reason is RevocationReason.KEY_COMPROMISE

    def test_unknown_serial_not_revoked(self, crl):
        assert not crl.is_revoked(99)
        assert crl.entry_for(99) is None

    def test_double_add_rejected(self, crl):
        crl.add(5, "2022-03-01")
        with pytest.raises(RevocationError):
            crl.add(5, "2022-03-02")

    def test_as_of_date(self, crl):
        crl.add(5, "2022-03-01")
        assert not crl.is_revoked(5, at="2022-02-28")
        assert crl.is_revoked(5, at="2022-03-01")

    def test_entries_sorted(self, crl):
        crl.add(9, "2022-03-05")
        crl.add(2, "2022-03-01")
        crl.add(7, "2022-03-01")
        entries = crl.entries()
        assert [(e.serial, e.revoked_on) for e in entries] == [
            (2, dt.date(2022, 3, 1)),
            (7, dt.date(2022, 3, 1)),
            (9, dt.date(2022, 3, 5)),
        ]

    def test_len(self, crl):
        crl.add(1, "2022-03-01")
        assert len(crl) == 1
