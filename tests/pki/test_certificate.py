"""Tests for repro.pki.certificate."""

import datetime as dt

import pytest

from repro.errors import PkiError
from repro.pki.certificate import Certificate, DistinguishedName

DN = DistinguishedName("R3", "Let's Encrypt", "US")


def cert(cn="example.ru", san=("example.ru", "www.example.ru"), **kwargs):
    defaults = dict(
        serial=1,
        issuer=DN,
        subject_cn=cn,
        san=san,
        not_before=dt.date(2022, 1, 1),
        not_after=dt.date(2022, 4, 1),
    )
    defaults.update(kwargs)
    return Certificate(**defaults)


class TestConstruction:
    def test_negative_serial_rejected(self):
        with pytest.raises(PkiError):
            cert(serial=-1)

    def test_inverted_validity_rejected(self):
        with pytest.raises(PkiError):
            cert(not_before="2022-04-02", not_after="2022-04-01")

    def test_unicode_names_become_alabels(self):
        c = cert(cn="пример.рф", san=("пример.рф",))
        assert c.subject_cn == "xn--e1afmkfd.xn--p1ai"

    def test_fingerprint_stable(self):
        assert cert().fingerprint == cert().fingerprint

    def test_fingerprint_differs_on_serial(self):
        assert cert(serial=1).fingerprint != cert(serial=2).fingerprint


class TestNameQueries:
    def test_names_dedup(self):
        assert cert().names() == ["example.ru", "www.example.ru"]

    def test_tlds(self):
        c = cert(cn="a.ru", san=("a.ru", "b.com"))
        assert c.tlds() == ["ru", "com"]

    def test_secures_tld_via_san(self):
        # Footnote 6: CN *or* SAN may match.
        c = cert(cn="site.com", san=("site.com", "mirror.ru"))
        assert c.secures_tld(("ru", "xn--p1ai"))

    def test_secures_rf(self):
        c = cert(cn="пример.рф", san=())
        assert c.secures_tld(("ru", "рф"))

    def test_not_matching(self):
        c = cert(cn="site.com", san=("site.com",))
        assert not c.secures_tld(("ru", "xn--p1ai"))

    def test_registered_domains(self):
        c = cert(cn="a.b.example.ru", san=("a.b.example.ru", "www.example.ru"))
        assert c.registered_domains() == ["example.ru"]


class TestValidity:
    def test_bounds_inclusive(self):
        c = cert()
        assert c.is_valid_on("2022-01-01")
        assert c.is_valid_on("2022-04-01")
        assert not c.is_valid_on("2022-04-02")
        assert not c.is_valid_on("2021-12-31")

    def test_validity_days(self):
        assert cert().validity_days == 90


class TestChains:
    def test_chain_to_root(self):
        root_dn = DistinguishedName("Root", "Test CA", "US")
        root = cert(serial=10, issuer=root_dn, cn="Test Root", san=(), is_ca=True)
        root.issuer_cert = root
        intermediate = cert(
            serial=11, issuer=root_dn, cn="Test Sub", san=(), is_ca=True,
            issuer_cert=root,
        )
        leaf = cert(serial=12, issuer_cert=intermediate)
        chain = leaf.chain()
        assert chain == [leaf, intermediate, root]
        assert leaf.root() is root
        assert leaf.chain_contains_organization("Test CA")
        assert not leaf.chain_contains_organization("Other CA")

    def test_self_signed_root_chain_is_single(self):
        root = cert(serial=20, cn="Root", san=(), is_ca=True)
        root.issuer_cert = root
        assert root.chain() == [root]
