"""Tests for repro.pki.ca: issuance and revocation."""

import datetime as dt

import pytest

from repro.errors import IssuanceError, RevocationError
from repro.pki.ca import CaPolicy, CertificateAuthority
from repro.pki.crl import RevocationReason
from repro.pki.ocsp import OcspStatus


@pytest.fixture
def ca():
    return CertificateAuthority(
        "digicert",
        "DigiCert",
        "US",
        CaPolicy(validity_days=365, brands=("DigiCert CA1", "RapidSSL", "GeoTrust")),
    )


class TestIssue:
    def test_basic(self, ca):
        cert = ca.issue(["example.ru", "www.example.ru"], "2022-01-10")
        assert cert.subject_cn == "example.ru"
        assert cert.issuer.organization == "DigiCert"
        assert cert.issuer.common_name == "DigiCert CA1"
        assert cert.not_after == dt.date(2023, 1, 10)

    def test_brand_selection(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10", brand="RapidSSL")
        assert cert.issuer.common_name == "RapidSSL"

    def test_unknown_brand_rejected(self, ca):
        with pytest.raises(IssuanceError):
            ca.issue(["example.ru"], "2022-01-10", brand="NoSuchBrand")

    def test_empty_names_rejected(self, ca):
        with pytest.raises(IssuanceError):
            ca.issue([], "2022-01-10")

    def test_serials_unique_and_increasing(self, ca):
        serials = [ca.issue(["x.ru"], "2022-01-10").serial for _ in range(5)]
        assert serials == sorted(serials)
        assert len(set(serials)) == 5

    def test_chain_reaches_this_cas_root(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10")
        assert cert.root() is ca.root
        assert cert.chain_contains_organization("DigiCert")

    def test_validity_override(self, ca):
        cert = ca.issue(["x.ru"], "2022-01-10", validity_days=90)
        assert cert.validity_days == 90

    def test_issued_count(self, ca):
        ca.issue(["a.ru"], "2022-01-10")
        ca.issue(["b.ru"], "2022-01-11")
        assert ca.issued_count() == 2
        assert len(ca.issued_certificates()) == 2


class TestRevoke:
    def test_revocation_flow(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10")
        ca.revoke(cert, "2022-03-01", RevocationReason.PRIVILEGE_WITHDRAWN)
        assert ca.crl.is_revoked(cert.serial)
        assert ca.ocsp.status(cert, dt.date(2022, 3, 2)) is OcspStatus.REVOKED

    def test_status_good_before_revocation_date(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10")
        ca.revoke(cert, "2022-03-01")
        assert ca.ocsp.status(cert, dt.date(2022, 2, 1)) is OcspStatus.GOOD

    def test_foreign_cert_rejected(self, ca):
        other = CertificateAuthority("le", "Let's Encrypt", "US")
        cert = other.issue(["example.ru"], "2022-01-10")
        with pytest.raises(RevocationError):
            ca.revoke(cert, "2022-03-01")

    def test_double_revocation_rejected(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10")
        ca.revoke(cert, "2022-03-01")
        with pytest.raises(RevocationError):
            ca.revoke(cert, "2022-03-02")

    def test_revocation_before_issuance_rejected(self, ca):
        cert = ca.issue(["example.ru"], "2022-01-10")
        with pytest.raises(RevocationError):
            ca.revoke(cert, "2021-12-31")


class TestPolicy:
    def test_default_brand(self):
        ca = CertificateAuthority("x", "X Corp", "US")
        assert ca.brands == ["X Corp CA"]

    def test_ct_logging_flag(self):
        policy = CaPolicy(ct_logging=False, brands=("Sub",))
        ca = CertificateAuthority("ru", "Russian Trusted Root CA", "RU", policy)
        assert not ca.policy.ct_logging

    def test_bad_validity_rejected(self):
        with pytest.raises(IssuanceError):
            CaPolicy(validity_days=0)


class TestSctEmbedding:
    def test_issue_with_ct_logs_embeds_scts(self):
        from repro.ctlog.log import CtLog

        ca = CertificateAuthority("le", "Let's Encrypt", "US")
        logs = [CtLog("argon"), CtLog("xenon")]
        cert = ca.issue(["example.ru"], "2022-01-10", ct_logs=logs)
        assert len(cert.scts) == 2
        assert {sct.log_id for sct in cert.scts} == {"argon", "xenon"}
        assert all(log.contains(cert) for log in logs)

    def test_non_logging_ca_embeds_nothing(self):
        from repro.ctlog.log import CtLog

        policy = CaPolicy(ct_logging=False, brands=("Sub",))
        russian = CertificateAuthority("ru", "Russian Trusted Root CA", "RU", policy)
        log = CtLog("argon")
        cert = russian.issue(["bank.ru"], "2022-03-05", ct_logs=[log])
        assert cert.scts == ()
        assert not log.contains(cert)

    def test_default_issue_has_no_scts(self, ca):
        assert ca.issue(["example.ru"], "2022-01-10").scts == ()
