"""The shipped library: stable ids, distinct identities, registration rules."""

import pytest

from repro.archive.manifest import scenario_fingerprint
from repro.errors import ScenarioError
from repro.scenario import (
    LIBRARY,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_ids,
    world_digest,
)

TEST_SCALE = 30000.0

#: The minimum library the PR contract names.
REQUIRED_IDS = {"baseline", "depeering", "ixp-disconnect", "no-invasion"}


def _small(spec: ScenarioSpec) -> ScenarioSpec:
    return spec.with_config(scale=TEST_SCALE, with_pki=False)


class TestLibraryShape:
    def test_required_scenarios_ship(self):
        assert REQUIRED_IDS <= set(LIBRARY)

    def test_ids_are_canonical_and_baseline_first(self):
        ids = scenario_ids()
        assert ids[0] == "baseline"
        assert ids == ["baseline"] + sorted(ids[1:])
        assert set(ids) == set(LIBRARY)

    def test_baseline_is_the_identity(self):
        spec = get_scenario("baseline")
        assert not spec.has_deltas()
        config = spec.compile()
        assert config.variant is None
        assert config.scenario_id == "baseline"
        assert config.spec_digest is None

    def test_every_spec_compiles_and_round_trips(self):
        for name, spec in LIBRARY.items():
            config = spec.compile()
            assert config.scenario_id == name
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_spec_digests_are_distinct(self):
        digests = {spec.digest() for spec in LIBRARY.values()}
        assert len(digests) == len(LIBRARY)


class TestFingerprints:
    def test_baseline_fingerprint_is_the_legacy_five_tuple(self):
        fingerprint = scenario_fingerprint(_small(get_scenario("baseline")).compile())
        # No scenario/spec_digest keys: archives built under the baseline
        # id stay byte-identical to pre-scenario-engine archives.
        assert sorted(fingerprint) == [
            "geo_lag_days", "netnod_mode", "sanctioned_domain_count",
            "scale", "seed",
        ]

    def test_counterfactual_fingerprints_carry_identity(self):
        fingerprints = set()
        for name in scenario_ids():
            fingerprint = scenario_fingerprint(_small(LIBRARY[name]).compile())
            if name != "baseline":
                assert fingerprint["scenario"] == name
                assert fingerprint["spec_digest"] == LIBRARY[name].digest()
            fingerprints.add(tuple(sorted(fingerprint.items())))
        assert len(fingerprints) == len(LIBRARY)


class TestWorldDigests:
    def test_distinct_specs_build_distinct_worlds(self):
        digests = {
            name: world_digest(_small(spec).build())
            for name, spec in LIBRARY.items()
        }
        assert len(set(digests.values())) == len(digests), digests


class TestRegistration:
    def test_register_is_append_only(self):
        baseline = get_scenario("baseline")
        clash = ScenarioSpec.from_dict(
            {**baseline.to_dict(), "title": "imposter"}
        )
        with pytest.raises(ScenarioError, match="append-only"):
            register_scenario(clash)

    def test_same_spec_reregisters_cleanly(self):
        assert register_scenario(get_scenario("depeering")) is not None
