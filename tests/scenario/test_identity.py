"""The byte-identity and determinism contracts.

The defining constraint of the scenario engine: the ``baseline`` spec
compiles to a world whose archive shards are byte-identical to the
pre-scenario-engine ad-hoc config path, and any spec builds the same
bytes in any process.
"""

import os
import pickle
import subprocess
import sys
import warnings

import pytest

from repro.archive import ArchiveBuilder
from repro.errors import ArchiveMismatchError
from repro.experiments import ExperimentContext
from repro.scenario import ScenarioSpec, archive_digest, world_digest
from repro.sim import ConflictScenarioConfig, build_world

TEST_SCALE = 30000.0

#: A short build range: three conflict-window days per archive.
RANGE = ("2022-03-01", "2022-03-03", 1)


def _spec(name: str) -> ScenarioSpec:
    return ScenarioSpec.resolve(name).with_config(
        scale=TEST_SCALE, with_pki=False
    )


class TestBaselineByteIdentity:
    def test_world_digest_matches_the_ad_hoc_config_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = build_world(
                ConflictScenarioConfig(scale=TEST_SCALE, with_pki=False)
            )
        assert world_digest(_spec("baseline").build()) == world_digest(legacy)

    def test_archive_bytes_match_the_ad_hoc_config_path(self, tmp_path):
        legacy_dir = str(tmp_path / "legacy")
        spec_dir = str(tmp_path / "spec")
        ArchiveBuilder(
            legacy_dir,
            ConflictScenarioConfig(scale=TEST_SCALE, with_pki=False),
        ).build(*RANGE)
        ArchiveBuilder(spec_dir, _spec("baseline").compile()).build(*RANGE)
        assert archive_digest(legacy_dir) == archive_digest(spec_dir)

    def test_counterfactual_archives_diverge(self, tmp_path):
        base_dir = str(tmp_path / "baseline")
        cf_dir = str(tmp_path / "depeering")
        ArchiveBuilder(base_dir, _spec("baseline").compile()).build(*RANGE)
        ArchiveBuilder(cf_dir, _spec("depeering").compile()).build(*RANGE)
        assert archive_digest(base_dir) != archive_digest(cf_dir)

    def test_cross_scenario_reads_are_refused(self, tmp_path):
        directory = str(tmp_path / "baseline")
        ArchiveBuilder(directory, _spec("baseline").compile()).build(*RANGE)
        with pytest.raises(ArchiveMismatchError):
            ExperimentContext(
                scenario=_spec("ixp-disconnect"), archive=directory
            )


class TestDeterminism:
    def test_identical_digests_across_two_processes(self):
        local = world_digest(_spec("depeering").build())
        snippet = (
            "from repro.scenario import ScenarioSpec, world_digest\n"
            "spec = ScenarioSpec.resolve('depeering').with_config("
            f"scale={TEST_SCALE!r}, with_pki=False)\n"
            "print(world_digest(spec.build()))\n"
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        remote = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert remote == local

    def test_compiled_configs_survive_pickling(self):
        # Sweep worker processes receive the config by pickle and rebuild
        # the world; a variant that loses state in transit would silently
        # rebuild a different counterfactual.
        config = _spec("ixp-disconnect").compile()
        clone = pickle.loads(pickle.dumps(config))
        assert clone.scenario_id == config.scenario_id
        assert clone.spec_digest == config.spec_digest
        assert world_digest(build_world(clone)) == world_digest(
            build_world(config)
        )
