"""ScenarioSpec: validation, canonical JSON round-trips, digests."""

import datetime as _dt
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScenarioError
from repro.scenario import (
    FlowSpec,
    ProviderExit,
    PulseSpec,
    ScenarioSpec,
    WaveSpec,
)


class TestValidation:
    def test_name_must_be_kebab_case(self):
        for bad in ("", "Invasion", "no_invasion", "-lead", "a" * 65):
            with pytest.raises(ScenarioError):
                ScenarioSpec(name=bad)

    def test_intensity_must_be_positive(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="x", migration_intensity=0.0)

    def test_baseline_name_is_reserved_for_the_identity(self):
        with pytest.raises(ScenarioError, match="baseline"):
            ScenarioSpec(name="baseline", conflict=False)
        with pytest.raises(ScenarioError, match="baseline"):
            ScenarioSpec(name="baseline", migration_intensity=2.0)
        # ...but the delta-free baseline itself is fine.
        assert not ScenarioSpec(name="baseline").has_deltas()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="bogus"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})
        with pytest.raises(ScenarioError, match="bogus"):
            ScenarioSpec.from_dict({"name": "x", "config": {"bogus": 1}})
        with pytest.raises(ScenarioError, match="bogus"):
            ScenarioSpec.from_dict({"name": "x", "world": {"bogus": 1}})

    def test_flow_field_and_pp_validation(self):
        with pytest.raises(ScenarioError):
            FlowSpec("mx", ["a"], "b", 1.0, "2022-03-01", "2022-03-08")
        with pytest.raises(ScenarioError):
            FlowSpec("dns", [], "b", 1.0, "2022-03-01", "2022-03-08")
        with pytest.raises(ScenarioError):
            FlowSpec("dns", ["a"], "b", 0.0, "2022-03-01", "2022-03-08")

    def test_pulse_needs_exactly_one_of_fraction_count(self):
        with pytest.raises(ScenarioError):
            PulseSpec("dns", ["a"], "b", "2022-03-01")
        with pytest.raises(ScenarioError):
            PulseSpec("dns", ["a"], "b", "2022-03-01", fraction=0.5, count=3)

    def test_wave_count_positive(self):
        with pytest.raises(ScenarioError):
            WaveSpec("2022-03-01", 0)

    def test_provider_exit_unknown_plans_fail_at_compile(self):
        spec = ScenarioSpec(
            name="ghost-exit",
            provider_exits=[ProviderExit("nonexistent", "2022-03-01")],
        )
        with pytest.raises(ScenarioError, match="resolves to no flows"):
            spec.compile()

    def test_with_config_rejects_unknown_knobs(self):
        spec = ScenarioSpec(name="x", conflict=False)
        with pytest.raises(ScenarioError, match="workers"):
            spec.with_config(workers=4)


class TestRoundTrip:
    def _sample(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="sample",
            title="Sample",
            description="round-trip sample",
            scale=30000.0,
            migration_intensity=1.5,
            provider_exits=[ProviderExit("cloudflare", "2022-04-04")],
            extra_flows=[
                FlowSpec("dns", ["hetzner_dns"], "rucenter_dns", 1.2,
                         "2022-03-01", "2022-03-15"),
            ],
            extra_pulses=[
                PulseSpec("hosting", ["hetzner_h"], "timeweb_h",
                          "2022-03-10", fraction=0.25),
            ],
            sanction_waves=[WaveSpec("2022-03-01", 40)],
            notes=[("2022-03-01", "actor", "text")],
        )

    def test_dict_round_trip(self):
        spec = self._sample()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_preserves_digest(self):
        spec = self._sample()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_digest_covers_only_the_world_block(self):
        spec = self._sample()
        rescaled = spec.with_config(scale=500.0, seed=7)
        assert rescaled.scale == 500.0 and rescaled.seed == 7
        # Same world deltas => same digest; scale/seed live in the
        # archive fingerprint's own fields, not the digest.
        assert rescaled.digest() == spec.digest()

    def test_digest_moves_with_the_world(self):
        spec = self._sample()
        payload = spec.to_dict()
        payload["name"] = "sample-2"
        payload["world"]["migration_intensity"] = 2.0
        assert ScenarioSpec.from_dict(payload).digest() != spec.digest()

    def test_resolve_by_path(self, tmp_path):
        spec = self._sample()
        path = tmp_path / "sample.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert ScenarioSpec.resolve(str(path)) == spec

    def test_resolve_unknown_id_lists_the_library(self):
        with pytest.raises(ScenarioError, match="baseline"):
            ScenarioSpec.resolve("definitely-not-a-scenario")


# Constrained generators: real plan keys, study-window dates, sane values.
_DATES = st.dates(
    min_value=_dt.date(2022, 2, 25),
    max_value=_dt.date(2022, 5, 1),
)
_FLOWS = st.builds(
    lambda field, src, dest, pp, day, span: FlowSpec(
        field, [src], dest, pp, day, day + _dt.timedelta(days=span),
    ),
    st.sampled_from(["dns", "hosting"]),
    st.sampled_from(["hetzner_dns", "hetzner_h"]),
    st.sampled_from(["rucenter_dns", "timeweb_h"]),
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    _DATES,
    st.integers(min_value=1, max_value=30),
)
_WAVES = st.lists(
    st.builds(WaveSpec, _DATES, st.integers(min_value=1, max_value=60)),
    min_size=1, max_size=4,
)
_SPECS = st.builds(
    lambda conflict, intensity, flows, waves, with_waves: ScenarioSpec(
        name="prop-spec",
        conflict=conflict,
        migration_intensity=intensity,
        extra_flows=flows,
        sanction_waves=waves if with_waves else None,
    ),
    st.booleans(),
    st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    st.lists(_FLOWS, max_size=3),
    _WAVES,
    st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(_SPECS)
def test_property_json_round_trip(spec):
    """Any constructible spec survives JSON canonicalisation exactly."""
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.digest() == spec.digest()
    assert again.to_json() == spec.to_json()
