"""Tests for repro.net.rib: longest-prefix-match routing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net.ip import MAX_IPV4, parse_ipv4
from repro.net.prefix import Prefix
from repro.net.rib import Route, RoutingTable


def make_table(*entries):
    table = RoutingTable()
    for text, asn in entries:
        table.announce(Prefix.parse(text), asn)
    return table


class TestLookup:
    def test_exact(self):
        table = make_table(("10.0.0.0/8", 100))
        assert table.lookup(parse_ipv4("10.1.2.3")) == 100

    def test_miss(self):
        table = make_table(("10.0.0.0/8", 100))
        assert table.lookup(parse_ipv4("11.0.0.0")) is None

    def test_longest_prefix_wins(self):
        table = make_table(("10.0.0.0/8", 100), ("10.1.0.0/16", 200))
        assert table.lookup(parse_ipv4("10.1.2.3")) == 200
        assert table.lookup(parse_ipv4("10.2.2.3")) == 100

    def test_default_route(self):
        table = make_table(("0.0.0.0/0", 1), ("10.0.0.0/8", 100))
        assert table.lookup(parse_ipv4("192.168.1.1")) == 1

    def test_host_route(self):
        table = make_table(("10.0.0.0/8", 100), ("10.0.0.1/32", 999))
        assert table.lookup(parse_ipv4("10.0.0.1")) == 999

    def test_bad_address_rejected(self):
        with pytest.raises(AddressError):
            make_table(("10.0.0.0/8", 1)).lookup(-5)

    def test_lookup_route_returns_matched_prefix(self):
        table = make_table(("10.0.0.0/8", 100), ("10.1.0.0/16", 200))
        route = table.lookup_route(parse_ipv4("10.1.0.1"))
        assert route == Route(Prefix.parse("10.1.0.0/16"), 200)

    def test_lookup_many_preserves_order(self):
        table = make_table(("10.0.0.0/8", 100))
        results = table.lookup_many(
            [parse_ipv4("10.0.0.1"), parse_ipv4("11.0.0.1")]
        )
        assert results == [100, None]


class TestMutation:
    def test_replace(self):
        table = make_table(("10.0.0.0/8", 100))
        table.announce(Prefix.parse("10.0.0.0/8"), 300)
        assert table.lookup(parse_ipv4("10.0.0.1")) == 300
        assert len(table) == 1

    def test_withdraw(self):
        table = make_table(("10.0.0.0/8", 100), ("10.1.0.0/16", 200))
        table.withdraw(Prefix.parse("10.1.0.0/16"))
        assert table.lookup(parse_ipv4("10.1.0.1")) == 100

    def test_withdraw_missing_is_noop(self):
        table = make_table(("10.0.0.0/8", 100))
        table.withdraw(Prefix.parse("11.0.0.0/8"))
        assert len(table) == 1

    def test_bad_asn_rejected(self):
        with pytest.raises(AddressError):
            make_table().announce(Prefix.parse("10.0.0.0/8"), -1)


class TestAsArrays:
    def test_sorted_export(self):
        table = make_table(("20.0.0.0/16", 2), ("10.0.0.0/16", 1))
        starts, ends, asns = table.as_arrays()
        assert list(asns) == [1, 2]
        assert starts[0] < starts[1]

    def test_rejects_overlap(self):
        table = make_table(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        with pytest.raises(AddressError):
            table.as_arrays()

    def test_empty(self):
        starts, ends, asns = RoutingTable().as_arrays()
        assert len(starts) == len(ends) == len(asns) == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=MAX_IPV4),
            st.integers(min_value=8, max_value=28),
            st.integers(min_value=1, max_value=65000),
        ),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=0, max_value=MAX_IPV4),
)
def test_lookup_matches_naive_linear_scan(raw_routes, probe):
    """Property: dict-per-length LPM equals brute-force most-specific match."""
    table = RoutingTable()
    routes = []
    for network, length, asn in raw_routes:
        prefix = Prefix(network & Prefix.mask_for(length), length)
        table.announce(prefix, asn)
        routes.append((prefix, asn))
    # Replay replacements: later announcement for the same prefix wins.
    effective = {}
    for prefix, asn in routes:
        effective[prefix] = asn
    best = None
    for prefix, asn in effective.items():
        if prefix.contains(probe):
            if best is None or prefix.length > best[0].length:
                best = (prefix, asn)
    expected = best[1] if best else None
    assert table.lookup(probe) == expected
