"""Tests for repro.net.ip: IPv4 parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net.ip import (
    MAX_IPV4,
    format_ipv4,
    format_many,
    is_valid_ipv4_int,
    parse_ipv4,
    parse_many,
)


class TestParse:
    def test_basic(self):
        assert parse_ipv4("1.2.3.4") == 0x01020304

    def test_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_max(self):
        assert parse_ipv4("255.255.255.255") == MAX_IPV4

    @pytest.mark.parametrize(
        "text",
        ["1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.-4", "a.b.c.d", "01.2.3.4", ""],
    )
    def test_rejects_invalid(self, text):
        with pytest.raises(AddressError):
            parse_ipv4(text)


class TestFormat:
    def test_basic(self):
        assert format_ipv4(0x01020304) == "1.2.3.4"

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(MAX_IPV4 + 1)

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            format_ipv4(-1)


class TestRoundtrip:
    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_format_parse_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    def test_many(self):
        values = [0, 1, MAX_IPV4]
        assert parse_many(format_many(values)) == values


class TestValidation:
    def test_valid(self):
        assert is_valid_ipv4_int(0)
        assert is_valid_ipv4_int(MAX_IPV4)

    def test_invalid(self):
        assert not is_valid_ipv4_int(-1)
        assert not is_valid_ipv4_int(MAX_IPV4 + 1)
        assert not is_valid_ipv4_int("1.2.3.4")
