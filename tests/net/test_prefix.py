"""Tests for repro.net.prefix: CIDR blocks and the allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError, AllocationError
from repro.net.ip import parse_ipv4
from repro.net.prefix import Prefix, PrefixAllocator, summarize


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"

    def test_bounds(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert prefix.first == parse_ipv4("192.168.1.0")
        assert prefix.last == parse_ipv4("192.168.1.255")
        assert prefix.size == 256

    def test_contains(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(parse_ipv4("10.255.0.1"))
        assert not prefix.contains(parse_ipv4("11.0.0.0"))

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(parse_ipv4("10.0.0.1"), 8)

    def test_bad_length_rejected(self):
        with pytest.raises(AddressError):
            Prefix(0, 33)

    def test_slash_zero_covers_everything(self):
        assert Prefix.parse("0.0.0.0/0").size == 2**32

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.0.0.0/8")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_subnets(self):
        subnets = list(Prefix.parse("10.0.0.0/30").subnets(31))
        assert [str(s) for s in subnets] == ["10.0.0.0/31", "10.0.0.2/31"]

    def test_subnets_wrong_direction_rejected(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_immutable(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            prefix.length = 9

    def test_equality_and_hash(self):
        assert Prefix.parse("10.0.0.0/8") == Prefix.parse("10.0.0.0/8")
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1

    @given(st.integers(min_value=0, max_value=32))
    def test_mask_bit_count(self, length):
        assert bin(Prefix.mask_for(length)).count("1") == length


class TestAllocator:
    def test_sequential_non_overlapping(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        a = allocator.allocate(16)
        b = allocator.allocate(16)
        assert not a.overlaps(b)
        assert a.first < b.first

    def test_alignment(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        allocator.allocate(24)
        big = allocator.allocate(16)
        assert big.network % big.size == 0

    def test_exhaustion(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/30"))
        allocator.allocate(31)
        allocator.allocate(31)
        with pytest.raises(AllocationError):
            allocator.allocate(31)

    def test_too_large_rejected(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        with pytest.raises(AllocationError):
            allocator.allocate(8)

    def test_allocate_sized(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        block = allocator.allocate_sized(300)
        assert block.size == 512

    def test_allocate_sized_rejects_zero(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        with pytest.raises(AllocationError):
            allocator.allocate_sized(0)

    @given(st.lists(st.integers(min_value=20, max_value=28), min_size=1, max_size=30))
    def test_all_allocations_disjoint_and_inside_parent(self, lengths):
        parent = Prefix.parse("10.0.0.0/8")
        allocator = PrefixAllocator(parent)
        blocks = [allocator.allocate(length) for length in lengths]
        for i, a in enumerate(blocks):
            assert parent.contains_prefix(a)
            for b in blocks[i + 1 :]:
                assert not a.overlaps(b)


class TestSummarize:
    def test_empty(self):
        assert summarize([]) is None

    def test_single(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert summarize([prefix]) == prefix

    def test_pair(self):
        result = summarize([Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")])
        assert result == Prefix.parse("10.0.0.0/23")

    def test_covers_all_inputs(self):
        prefixes = [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.9.0.0/24")]
        result = summarize(prefixes)
        assert all(result.contains_prefix(p) for p in prefixes)
