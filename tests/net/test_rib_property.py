"""Stateful property test: RoutingTable vs a dict-of-prefixes model."""

from hypothesis import given, settings, strategies as st

from repro.net.prefix import Prefix
from repro.net.rib import RoutingTable

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["announce", "withdraw"]),
        st.integers(min_value=0, max_value=2**16 - 1),  # network high bits
        st.integers(min_value=12, max_value=24),        # prefix length
        st.integers(min_value=1, max_value=999),        # asn
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(_OPS, st.integers(min_value=0, max_value=2**32 - 1))
def test_mutation_sequence_matches_model(operations, probe):
    """Property: after any announce/withdraw sequence, lookup == model."""
    table = RoutingTable()
    model = {}
    for op, high, length, asn in operations:
        network = (high << 16) & Prefix.mask_for(length)
        prefix = Prefix(network, length)
        if op == "announce":
            table.announce(prefix, asn)
            model[prefix] = asn
        else:
            table.withdraw(prefix)
            model.pop(prefix, None)

    best = None
    for prefix, asn in model.items():
        if prefix.contains(probe):
            if best is None or prefix.length > best[0].length:
                best = (prefix, asn)
    expected = best[1] if best else None
    assert table.lookup(probe) == expected
    assert len(table) == len(model)
