"""Tests for repro.net.asn: the AS metadata registry."""

import pytest

from repro.errors import AddressError
from repro.net.asn import ASInfo, ASRegistry


@pytest.fixture
def registry():
    reg = ASRegistry()
    reg.register_all(
        [
            ASInfo(13335, "Cloudflare", "US", "cloudflare"),
            ASInfo(16509, "Amazon", "US", "amazon"),
            ASInfo(197695, "REG.RU", "RU", "regru"),
        ]
    )
    return reg


class TestASInfo:
    def test_fields(self):
        info = ASInfo(47846, "Sedo", "DE", "sedo")
        assert info.asn == 47846
        assert info.country == "DE"

    def test_rejects_bad_asn(self):
        with pytest.raises(AddressError):
            ASInfo(-1, "x", "US", "x")

    def test_rejects_bad_country(self):
        with pytest.raises(AddressError):
            ASInfo(1, "x", "usa", "x")

    def test_equality(self):
        assert ASInfo(1, "a", "US", "a") == ASInfo(1, "a", "US", "a")


class TestRegistry:
    def test_contains_and_get(self, registry):
        assert 13335 in registry
        assert registry.get(13335).name == "Cloudflare"

    def test_get_missing(self, registry):
        assert registry.get(99999) is None

    def test_name_fallback(self, registry):
        assert registry.name_of(99999) == "AS99999"

    def test_country_of(self, registry):
        assert registry.country_of(197695) == "RU"
        assert registry.country_of(4242) is None

    def test_asns_in_country(self, registry):
        assert registry.asns_in_country("US") == [13335, 16509]

    def test_iteration_sorted_by_asn(self, registry):
        asns = [info.asn for info in registry]
        assert asns == sorted(asns)

    def test_register_replaces(self, registry):
        registry.register(ASInfo(13335, "CF", "US", "cloudflare"))
        assert registry.get(13335).name == "CF"
        assert len(registry) == 3
