"""Tests for repro.core.trustedca."""

import datetime as dt

import pytest

from repro.core.trustedca import analyze_trusted_ca
from repro.dns.name import DomainName
from repro.pki.ca import CaPolicy, CertificateAuthority
from repro.scanner.cuids import UniversalScanDataset
from repro.scanner.tls import ScanRecord, TlsScanner


@pytest.fixture
def dataset():
    russian = CertificateAuthority(
        "ru", "Russian Trusted Root CA", "RU",
        CaPolicy(ct_logging=False, brands=("Sub",)),
        established="2022-03-01",
    )
    le = CertificateAuthority("le", "Let's Encrypt", "US")
    certs = [
        russian.issue(["bank.ru"], "2022-03-05"),
        russian.issue(["fund.ru"], "2022-03-08"),
        russian.issue(["пример.рф"], "2022-03-10"),
        russian.issue(["affiliate.su"], "2022-03-12"),
        le.issue(["normal.ru"], "2022-03-01"),
    ]

    def view(date):
        return [(1000 + i, cert) for i, cert in enumerate(certs)]

    data = UniversalScanDataset()
    data.run_sweeps(TlsScanner(view, response_rate=1.0), "2022-03-15", "2022-03-15")
    return data


class TestReport:
    def test_counts(self, dataset):
        report = analyze_trusted_ca(
            dataset,
            "Russian Trusted Root CA",
            [DomainName.parse("bank.ru")],
            comparison_issued_elsewhere=800_000,
        )
        assert report.certificate_count == 4
        assert report.ru_domains == {"bank.ru", "fund.ru"}
        assert report.rf_domains == {"xn--e1afmkfd.xn--p1ai"}
        assert report.other_domains == {"affiliate.su"}

    def test_sanctioned_coverage(self, dataset):
        report = analyze_trusted_ca(
            dataset,
            "Russian Trusted Root CA",
            [DomainName.parse("bank.ru"), DomainName.parse("unsecured.ru")],
        )
        assert report.sanctioned_secured == {"bank.ru"}
        assert report.sanctioned_coverage == pytest.approx(50.0)

    def test_le_certs_not_counted(self, dataset):
        report = analyze_trusted_ca(dataset, "Russian Trusted Root CA", [])
        names = {
            name for cert in report.certificates for name in cert.names()
        }
        assert "normal.ru" not in names

    def test_issuance_window(self, dataset):
        report = analyze_trusted_ca(dataset, "Russian Trusted Root CA", [])
        first, last = report.issuance_window()
        assert first == dt.date(2022, 3, 5)
        assert last == dt.date(2022, 3, 12)

    def test_empty_dataset(self):
        report = analyze_trusted_ca(
            UniversalScanDataset(), "Russian Trusted Root CA", []
        )
        assert report.certificate_count == 0
        assert report.issuance_window() == (None, None)
        assert report.sanctioned_coverage == 0.0
