"""Tests for repro.core.issuance."""

import datetime as dt

import pytest

from repro.core.issuance import (
    daily_issuance_average,
    issuance_by_phase,
    issuance_timelines,
    top_issuers_table,
)
from repro.ctlog.log import CtLog
from repro.ctlog.monitor import CtMonitor
from repro.errors import AnalysisError
from repro.pki.ca import CertificateAuthority
from repro.timeline import Phase


@pytest.fixture
def monitor():
    le = CertificateAuthority("le", "Let's Encrypt", "US")
    digicert = CertificateAuthority("dc", "DigiCert", "US")
    log = CtLog("argon")
    # Pre-conflict: 3 LE + 1 DigiCert; pre-sanctions: 2 LE + 1 DigiCert;
    # post-sanctions: 1 LE.
    for day in ("2022-01-10", "2022-01-11", "2022-02-01"):
        log.add_chain(le.issue(["a.ru"], day), day)
    for day in ("2022-01-15", "2022-03-10"):
        log.add_chain(digicert.issue(["b.ru"], day), day)
    for day in ("2022-03-01", "2022-03-12"):
        log.add_chain(le.issue(["c.ru"], day), day)
    log.add_chain(le.issue(["d.ru"], "2022-04-15"), "2022-04-15")
    monitor = CtMonitor([log], lambda cert: cert.secures_tld(("ru", "xn--p1ai")))
    monitor.poll()
    return monitor


class TestPhases:
    def test_counts_per_phase(self, monitor):
        phases = issuance_by_phase(monitor)
        assert phases[Phase.PRE_CONFLICT].total == 4
        assert phases[Phase.PRE_SANCTIONS].total == 3
        assert phases[Phase.POST_SANCTIONS].total == 1

    def test_digicert_in_pre_sanctions(self, monitor):
        phases = issuance_by_phase(monitor)
        assert phases[Phase.PRE_SANCTIONS].counts.get("DigiCert") == 1

    def test_shares(self, monitor):
        phases = issuance_by_phase(monitor)
        assert phases[Phase.PRE_CONFLICT].share("Let's Encrypt") == 75.0

    def test_window_clipping(self, monitor):
        phases = issuance_by_phase(
            monitor, window_start=dt.date(2022, 3, 1), window_end=dt.date(2022, 3, 31)
        )
        assert phases[Phase.PRE_CONFLICT].total == 0
        assert phases[Phase.PRE_SANCTIONS].total == 3


class TestTable:
    def test_other_cas_row(self, monitor):
        table = top_issuers_table(issuance_by_phase(monitor), k=1)
        rows = table[Phase.PRE_CONFLICT]
        assert rows[0][0] == "Let's Encrypt"
        assert rows[-1][0] == "Other CAs"
        assert rows[-1][1] == 1  # DigiCert folded into Other

    def test_daily_average(self, monitor):
        averages = daily_issuance_average(issuance_by_phase(monitor))
        assert averages[Phase.PRE_CONFLICT] == pytest.approx(4 / 54, rel=0.01)


class TestTimelines:
    def test_top_k_ordering(self, monitor):
        timelines = issuance_timelines(monitor, top_k=2)
        assert [t.issuer for t in timelines] == ["Let's Encrypt", "DigiCert"]

    def test_active_days(self, monitor):
        timelines = {t.issuer: t for t in issuance_timelines(monitor)}
        digicert = timelines["DigiCert"]
        assert digicert.active_days() == [dt.date(2022, 1, 15), dt.date(2022, 3, 10)]
        assert digicert.last_active_day() == dt.date(2022, 3, 10)

    def test_stopped_before(self, monitor):
        timelines = {t.issuer: t for t in issuance_timelines(monitor)}
        assert timelines["DigiCert"].stopped_before(dt.date(2022, 3, 26))
        assert not timelines["Let's Encrypt"].stopped_before(dt.date(2022, 3, 26))

    def test_gap_after(self, monitor):
        timelines = {t.issuer: t for t in issuance_timelines(monitor)}
        assert timelines["DigiCert"].gap_after(dt.date(2022, 3, 15), window_days=30)
        assert not timelines["Let's Encrypt"].gap_after(
            dt.date(2022, 3, 1), window_days=30
        )

    def test_bad_top_k(self, monitor):
        with pytest.raises(AnalysisError):
            issuance_timelines(monitor, top_k=0)
