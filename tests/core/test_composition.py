"""Tests for repro.core.composition."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.core.composition import (
    CompositionPoint,
    CompositionSeries,
    collect_composition,
)
from repro.errors import AnalysisError
from repro.measurement.fast import FastCollector


class TestPoint:
    def test_total(self):
        point = CompositionPoint(dt.date(2022, 1, 1), 70, 10, 20)
        assert point.total == 100

    def test_share(self):
        point = CompositionPoint(dt.date(2022, 1, 1), 70, 10, 20)
        assert point.share("full") == 70.0

    def test_share_empty(self):
        point = CompositionPoint(dt.date(2022, 1, 1), 0, 0, 0)
        assert point.share("full") == 0.0

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000))
    def test_shares_sum_to_100(self, full, part, non):
        point = CompositionPoint(dt.date(2022, 1, 1), full, part, non)
        if point.total:
            assert point.share("full") + point.share("part") + point.share(
                "non"
            ) == pytest.approx(100.0)


class TestSeries:
    def test_chronological_enforced(self):
        series = CompositionSeries()
        series.add_counts(dt.date(2022, 1, 2), 1, 0, 0)
        with pytest.raises(AnalysisError):
            series.add_counts(dt.date(2022, 1, 1), 1, 0, 0)

    def test_at_and_nearest(self):
        series = CompositionSeries()
        series.add_counts(dt.date(2022, 1, 1), 1, 0, 0)
        series.add_counts(dt.date(2022, 1, 8), 0, 1, 0)
        assert series.at(dt.date(2022, 1, 8)).part == 1
        assert series.nearest(dt.date(2022, 1, 7)).part == 1
        with pytest.raises(AnalysisError):
            series.at(dt.date(2022, 1, 5))

    def test_nearest_out_of_range_clamps(self):
        series = CompositionSeries()
        series.add_counts(dt.date(2022, 1, 1), 1, 0, 0)
        series.add_counts(dt.date(2022, 1, 8), 0, 1, 0)
        assert series.nearest(dt.date(2021, 12, 1)).full == 1
        assert series.nearest(dt.date(2022, 2, 1)).part == 1

    def test_nearest_tie_prefers_earlier(self):
        series = CompositionSeries()
        series.add_counts(dt.date(2022, 1, 1), 1, 0, 0)
        series.add_counts(dt.date(2022, 1, 5), 0, 1, 0)
        # 2022-01-03 is equidistant; the earlier point wins (historic
        # min()-scan behaviour).
        assert series.nearest(dt.date(2022, 1, 3)).full == 1

    def test_indexed_lookup_matches_linear_scan(self):
        series = CompositionSeries()
        base = dt.date(2022, 1, 1)
        for day in range(0, 60, 7):
            series.add_counts(base + dt.timedelta(days=day), day, 1, 2)
        points = series.points()
        for probe_day in range(-3, 65):
            probe = base + dt.timedelta(days=probe_day)
            expected = min(points, key=lambda p: abs((p.date - probe).days))
            assert series.nearest(probe) is expected
            exact = [p for p in points if p.date == probe]
            if exact:
                assert series.at(probe) is exact[0]
            else:
                with pytest.raises(AnalysisError):
                    series.at(probe)

    def test_net_change(self):
        series = CompositionSeries()
        series.add_counts(dt.date(2022, 1, 1), 50, 25, 25)
        series.add_counts(dt.date(2022, 1, 8), 75, 15, 10)
        assert series.net_change("full") == pytest.approx(25.0)

    def test_empty_series_rejections(self):
        series = CompositionSeries()
        with pytest.raises(AnalysisError):
            series.first()
        with pytest.raises(AnalysisError):
            series.nearest(dt.date(2022, 1, 1))


class TestCollect:
    def test_counts_conserved(self, tiny_world):
        collector = FastCollector(tiny_world)
        snapshots = list(collector.sweep("2022-02-01", "2022-03-15", 7))
        series = collect_composition(snapshots, kind="ns")
        for snapshot, point in zip(snapshots, series):
            assert point.total == len(snapshot)

    def test_subset_restricts_total(self, tiny_world):
        collector = FastCollector(tiny_world)
        snapshots = list(collector.sweep("2022-02-01", "2022-02-15", 7))
        series = collect_composition(snapshots, subset_indices=range(107))
        assert all(point.total == 107 for point in series)

    def test_unknown_kind_rejected(self, tiny_world):
        collector = FastCollector(tiny_world)
        snapshots = list(collector.sweep("2022-02-01", "2022-02-08", 7))
        with pytest.raises(AnalysisError):
            collect_composition(snapshots, kind="bogus")

    def test_hosting_kind(self, tiny_world):
        collector = FastCollector(tiny_world)
        snapshots = list(collector.sweep("2022-02-01", "2022-02-08", 7))
        series = collect_composition(snapshots, kind="hosting")
        # Hosting is overwhelmingly single-component: partial is rare.
        assert series.first().share("part") < 2.0
