"""Tests for repro.core.tlddep."""

import datetime as dt

import pytest

from repro.core.tlddep import (
    TldSharePoint,
    collect_tld_composition,
    collect_tld_shares,
)
from repro.errors import AnalysisError
from repro.measurement.fast import FastCollector


@pytest.fixture(scope="module")
def snapshots(tiny_world):
    collector = FastCollector(tiny_world)
    return list(collector.sweep("2022-02-01", "2022-03-15", 7))


class TestComposition:
    def test_totals_match_population(self, snapshots):
        series = collect_tld_composition(snapshots)
        for snapshot, point in zip(snapshots, series):
            assert point.total == len(snapshot)


class TestShares:
    def test_ru_dominates(self, snapshots):
        shares = collect_tld_shares(snapshots)
        assert shares.last().share("ru") > 60.0

    def test_shares_can_exceed_100_in_sum(self, snapshots):
        # A domain with NS in two TLDs counts once per TLD.
        shares = collect_tld_shares(snapshots)
        total = sum(
            shares.last().share(tld) for tld in shares.last().counts
        )
        assert total > 100.0

    def test_each_share_at_most_100(self, snapshots):
        shares = collect_tld_shares(snapshots)
        for point in shares:
            for tld in point.counts:
                assert 0.0 <= point.share(tld) <= 100.0

    def test_top_tlds_ranked(self, snapshots):
        shares = collect_tld_shares(snapshots)
        top = shares.top_tlds(3)
        assert top[0] == "ru"
        counts = shares.last().counts
        assert counts[top[0]] >= counts[top[1]] >= counts[top[2]]

    def test_share_series_length(self, snapshots):
        shares = collect_tld_shares(snapshots)
        assert len(shares.share_series("ru")) == len(snapshots)

    def test_tlds_seen(self, snapshots):
        shares = collect_tld_shares(snapshots)
        seen = shares.tlds_seen()
        assert "ru" in seen and "com" in seen and "pro" in seen

    def test_point_share_missing_tld(self):
        point = TldSharePoint(dt.date(2022, 1, 1), 100, {"ru": 80})
        assert point.share("zz") == 0.0

    def test_chronological_enforced(self):
        from repro.core.tlddep import TldShareSeries

        series = TldShareSeries()
        series.add(TldSharePoint(dt.date(2022, 1, 2), 1, {}))
        with pytest.raises(AnalysisError):
            series.add(TldSharePoint(dt.date(2022, 1, 1), 1, {}))

    def test_subset(self, snapshots):
        shares = collect_tld_shares(snapshots, subset_indices=range(107))
        assert shares.last().total == 107
