"""Tests for repro.core.countrydist."""

import pytest

from repro.core.countrydist import collect_country_shares
from repro.errors import AnalysisError
from repro.measurement.fast import FastCollector


@pytest.fixture(scope="module")
def snapshots(tiny_world):
    collector = FastCollector(tiny_world)
    return list(collector.sweep("2022-02-22", "2022-04-01", 7))


class TestCollect:
    def test_ru_dominates_hosting(self, snapshots):
        series = collect_country_shares(snapshots, kind="hosting")
        assert series.first().share("RU") > 60.0

    def test_ns_kind(self, snapshots):
        series = collect_country_shares(snapshots, kind="ns")
        assert series.first().share("RU") > 60.0
        # Sweden present pre-Netnod-cutoff through rucenter_cloud.
        assert series.first().share("SE") > 0.5

    def test_sweden_vanishes_after_netnod(self, snapshots):
        series = collect_country_shares(snapshots, kind="ns")
        assert series.last().share("SE") < series.first().share("SE")

    def test_unknown_kind_rejected(self, snapshots):
        with pytest.raises(AnalysisError):
            collect_country_shares(snapshots, kind="galaxy")

    def test_shares_bounded(self, snapshots):
        series = collect_country_shares(snapshots, kind="hosting")
        for point in series:
            for country in point.counts:
                assert 0.0 <= point.share(country) <= 100.0

    def test_subset(self, snapshots):
        series = collect_country_shares(
            snapshots, kind="ns", subset_indices=range(107)
        )
        assert series.first().total == 107

    def test_net_change(self, snapshots):
        series = collect_country_shares(snapshots, kind="hosting")
        assert series.net_change("RU") == pytest.approx(
            series.last().share("RU") - series.first().share("RU")
        )

    def test_countries_seen(self, snapshots):
        series = collect_country_shares(snapshots, kind="hosting")
        seen = series.countries_seen()
        assert {"RU", "US", "DE"} <= set(seen)
