"""Tests for repro.core.labels, including fast/record-form agreement."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.core.labels import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    classify_flags,
    classify_hosting_geo,
    classify_ns_geo,
    classify_ns_tld,
    label_name,
    snapshot_hosting_geo_labels,
    snapshot_ns_geo_labels,
    snapshot_ns_tld_labels,
)
from repro.dns.name import DomainName
from repro.errors import AnalysisError
from repro.geo.database import GeoDatabaseBuilder
from repro.measurement.fast import FastCollector
from repro.measurement.records import DomainMeasurement


@pytest.fixture
def geo():
    return (
        GeoDatabaseBuilder()
        .add_range(0, 99, "RU")
        .add_range(100, 199, "SE")
        .build()
    )


def measurement(ns_addresses=(10,), apex=(20,), ns_names=("ns1.reg.ru",)):
    return DomainMeasurement(
        dt.date(2022, 3, 1),
        DomainName.parse("example.ru"),
        ns_names,
        ns_addresses,
        apex,
    )


class TestRecordForm:
    def test_ns_geo_full(self, geo):
        assert classify_ns_geo(measurement(ns_addresses=(10, 20)), geo) == LABEL_FULL

    def test_ns_geo_part(self, geo):
        assert classify_ns_geo(measurement(ns_addresses=(10, 150)), geo) == LABEL_PART

    def test_ns_geo_non(self, geo):
        assert classify_ns_geo(measurement(ns_addresses=(150,)), geo) == LABEL_NON

    def test_hosting_geo(self, geo):
        assert classify_hosting_geo(measurement(apex=(150,)), geo) == LABEL_NON

    def test_ns_tld(self):
        assert classify_ns_tld(measurement(ns_names=("ns1.reg.ru",))) == LABEL_FULL
        assert (
            classify_ns_tld(
                measurement(ns_names=("ns1.reg.ru", "a.ns.cloudflare.com"))
            )
            == LABEL_PART
        )
        assert (
            classify_ns_tld(measurement(ns_names=("a.ns.cloudflare.com",)))
            == LABEL_NON
        )

    def test_su_counts_as_russian(self):
        assert classify_ns_tld(measurement(ns_names=("ns1.old.su",))) == LABEL_FULL

    def test_empty_rejected(self, geo):
        with pytest.raises(AnalysisError):
            classify_ns_geo(measurement(ns_addresses=()), geo)

    def test_label_names(self):
        assert label_name(LABEL_FULL) == "full"
        assert label_name(LABEL_PART) == "part"
        assert label_name(LABEL_NON) == "non"

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_classify_flags_total(self, flags):
        assert classify_flags(tuple(flags)) in (LABEL_FULL, LABEL_PART, LABEL_NON)


class TestSnapshotAgreement:
    """The vectorised labels must equal record-level classification."""

    def test_agreement_on_sample(self, tiny_world):
        collector = FastCollector(tiny_world)
        for date in ("2019-07-01", "2022-03-04"):
            snapshot = collector.collect(date)
            sample = snapshot.measured[:: max(len(snapshot.measured) // 60, 1)]
            ns_fast = snapshot_ns_geo_labels(snapshot, sample)
            host_fast = snapshot_hosting_geo_labels(snapshot, sample)
            tld_fast = snapshot_ns_tld_labels(snapshot, sample)
            geo = snapshot.epoch.geo
            for position, index in enumerate(sample):
                record = snapshot.measurement_for(int(index))
                assert classify_ns_geo(record, geo) == ns_fast[position]
                assert classify_hosting_geo(record, geo) == host_fast[position]
                assert classify_ns_tld(record) == tld_fast[position]
