"""Tests for repro.core.topasn."""

import pytest

from repro.core.topasn import asn_members, collect_asn_shares
from repro.measurement.fast import FastCollector


@pytest.fixture(scope="module")
def setup(tiny_world):
    collector = FastCollector(tiny_world)
    snapshots = list(collector.sweep("2022-02-22", "2022-03-20", 7))
    return tiny_world, collector, snapshots


class TestMembers:
    def test_members_are_measured_domains(self, setup):
        world, collector, snapshots = setup
        snapshot = snapshots[0]
        members = asn_members(snapshot, 13335)
        assert set(members) <= set(snapshot.measured)

    def test_members_actually_in_asn(self, setup):
        world, collector, snapshots = setup
        snapshot = snapshots[0]
        for index in asn_members(snapshot, 13335)[:10]:
            plan = world.hosting_plans.plan(int(snapshot.hosting_ids[index]))
            assert 13335 in plan.asns()


class TestShares:
    def test_counts_and_shares_consistent(self, setup):
        world, collector, snapshots = setup
        series = collect_asn_shares(snapshots, [13335, 197695])
        point = series.first()
        for asn in (13335, 197695):
            assert point.share(asn) == pytest.approx(
                100.0 * point.counts[asn] / point.total
            )

    def test_series_tracks_membership(self, setup):
        world, collector, snapshots = setup
        series = collect_asn_shares(snapshots, [13335])
        expected = [len(asn_members(s, 13335)) for s in snapshots]
        assert series.count_series(13335) == expected

    def test_untracked_asn_zero(self, setup):
        world, collector, snapshots = setup
        series = collect_asn_shares(snapshots, [13335])
        assert series.first().share(99999) == 0.0

    def test_dual_homed_counted_in_both(self, setup):
        world, collector, snapshots = setup
        dual_asns = world.hosting_plans.plan(
            world.hosting_plans.id_of("dual_ru_de")
        ).asns()
        assert len(dual_asns) == 2
        snapshot = snapshots[0]
        dual_members = [
            int(i)
            for i in snapshot.measured
            if snapshot.hosting_ids[i] == world.hosting_plans.id_of("dual_ru_de")
        ]
        for asn in dual_asns:
            members = set(int(x) for x in asn_members(snapshot, asn))
            assert set(dual_members) <= members
