"""Tests for repro.core.revocation (Table 2 logic)."""

import datetime as dt

import pytest

from repro.core.revocation import analyze_revocations
from repro.dns.name import DomainName
from repro.pki.ca import CertificateAuthority


@pytest.fixture
def setup():
    le = CertificateAuthority("le", "Let's Encrypt", "US")
    digicert = CertificateAuthority("dc", "DigiCert", "US")
    sanctioned = [DomainName.parse("bank.ru")]

    certs = []
    # LE: 3 certs incl 1 sanctioned; 1 non-sanctioned revoked.
    certs.append(le.issue(["a.ru"], "2022-01-01", validity_days=90))
    revoked_le = le.issue(["b.ru"], "2022-01-05", validity_days=90)
    le.revoke(revoked_le, "2022-03-01")
    certs.append(revoked_le)
    certs.append(le.issue(["portal.bank.ru", "bank.ru"], "2022-02-01", validity_days=90))
    # DigiCert: 2 sanctioned certs, both revoked (full revoker).
    for n in ("x.bank.ru", "y.bank.ru"):
        cert = digicert.issue([n, "bank.ru"], "2022-01-20", validity_days=365)
        digicert.revoke(cert, "2022-02-25")
        certs.append(cert)
    # An expired-before-cutoff cert that must be excluded.
    certs.append(le.issue(["old.ru"], "2021-10-01", validity_days=90))
    # A non-.ru cert that must be excluded.
    certs.append(le.issue(["other.com"], "2022-02-01", validity_days=90))

    table = analyze_revocations(certs, [le, digicert], sanctioned)
    return table


class TestTable:
    def test_population_filtering(self, setup):
        # LE: 3 in-window .ru certs (old.ru expired 2021-12-30; other.com excluded).
        assert setup.row("Let's Encrypt").issued == 3

    def test_revoked_counts(self, setup):
        assert setup.row("Let's Encrypt").revoked == 1
        assert setup.row("DigiCert").revoked == 2

    def test_sanctioned_split(self, setup):
        le = setup.row("Let's Encrypt")
        assert le.sanctioned_issued == 1
        assert le.sanctioned_revoked == 0
        dc = setup.row("DigiCert")
        assert dc.sanctioned_issued == 2
        assert dc.sanctioned_revoked == 2

    def test_rates(self, setup):
        dc = setup.row("DigiCert")
        assert dc.revocation_rate == 100.0
        assert dc.sanctioned_revocation_rate == 100.0
        le = setup.row("Let's Encrypt")
        assert le.revocation_rate == pytest.approx(100 / 3)
        assert le.nonsanctioned_revocation_rate == pytest.approx(50.0)

    def test_top_by_revocations(self, setup):
        top = setup.top_by_revocations(1)
        assert top[0].issuer == "DigiCert"

    def test_missing_issuer_row_is_zero(self, setup):
        row = setup.row("Sectigo")
        assert row.issued == 0
        assert row.revocation_rate == 0.0
        assert row.sanctioned_revocation_rate == 0.0
