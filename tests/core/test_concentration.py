"""Tests for repro.core.concentration."""

import pytest
from hypothesis import given, strategies as st

from repro.core.concentration import (
    ConcentrationReport,
    analyze_market,
    concentration_ratio,
    hhi,
)
from repro.errors import AnalysisError


class TestHhi:
    def test_monopoly(self):
        assert hhi({"only": 100}) == pytest.approx(1.0)

    def test_duopoly(self):
        assert hhi({"a": 50, "b": 50}) == pytest.approx(0.5)

    def test_empty_market_rejected(self):
        with pytest.raises(AnalysisError):
            hhi({})
        with pytest.raises(AnalysisError):
            hhi({"a": 0})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=10,
        )
    )
    def test_bounds(self, counts):
        value = hhi(counts)
        assert 1.0 / len(counts) - 1e-9 <= value <= 1.0 + 1e-9


class TestConcentrationRatio:
    def test_cr1(self):
        assert concentration_ratio({"a": 60, "b": 30, "c": 10}, 1) == pytest.approx(0.6)

    def test_crk_saturates(self):
        assert concentration_ratio({"a": 60, "b": 40}, 5) == pytest.approx(1.0)

    def test_bad_k(self):
        with pytest.raises(AnalysisError):
            concentration_ratio({"a": 1}, 0)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.integers(min_value=1, max_value=100),
            min_size=2,
            max_size=8,
        )
    )
    def test_monotone_in_k(self, counts):
        values = [concentration_ratio(counts, k) for k in range(1, len(counts) + 1)]
        assert values == sorted(values)


class TestReport:
    def test_leader_and_flags(self):
        report = analyze_market("CAs", {"LE": 99, "GS": 1})
        assert report.leader == "LE"
        assert report.highly_concentrated
        assert report.participants == 2
        assert report.effective_competitors == pytest.approx(1 / report.hhi)

    def test_balanced_market_not_concentrated(self):
        counts = {f"p{i}": 10 for i in range(10)}
        report = analyze_market("hosting", counts)
        assert not report.highly_concentrated
