"""Tests for repro.core.summary."""

import datetime as dt

import pytest

from repro.core.composition import CompositionSeries
from repro.core.summary import compute_headline_stats
from repro.core.tlddep import TldSharePoint, TldShareSeries
from repro.errors import AnalysisError


def series(points):
    result = CompositionSeries()
    for date, full, part, non in points:
        result.add_counts(dt.date.fromisoformat(date), full, part, non)
    return result


@pytest.fixture
def stats():
    hosting = series([("2017-06-18", 71, 0, 29), ("2022-05-25", 73, 0, 27)])
    ns = series([("2017-06-18", 67, 17, 16), ("2022-05-25", 74, 11, 15)])
    tld = series([("2017-06-18", 60, 19, 21), ("2022-05-25", 54, 27, 19)])
    shares = TldShareSeries()
    shares.add(TldSharePoint(dt.date(2017, 6, 18), 100, {"ru": 79, "com": 17}))
    shares.add(TldSharePoint(dt.date(2022, 5, 25), 100, {"ru": 78, "com": 25}))
    return compute_headline_stats(hosting, ns, tld, shares)


class TestHeadlines:
    def test_hosting_start(self, stats):
        assert stats.hosting_full_start == pytest.approx(71.0)

    def test_ns_change(self, stats):
        assert stats.ns_full_start == pytest.approx(67.0)
        assert stats.ns_full_end == pytest.approx(74.0)
        assert stats.ns_full_change == pytest.approx(7.0)

    def test_tld_changes(self, stats):
        assert stats.tld_full_change == pytest.approx(-6.0)
        assert stats.tld_part_change == pytest.approx(8.0)

    def test_top_tlds(self, stats):
        assert stats.top_tld_start["ru"] == pytest.approx(79.0)
        assert stats.top_tld_end["com"] == pytest.approx(25.0)

    def test_domain_totals(self, stats):
        assert stats.domains_start == 100
        assert stats.domains_end == 100

    def test_as_dict_roundable(self, stats):
        flat = stats.as_dict()
        assert flat["ns_full_change"] == 7.0
        assert isinstance(flat["top_tld_start"], dict)

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            compute_headline_stats(
                CompositionSeries(), CompositionSeries(),
                CompositionSeries(), TldShareSeries(),
            )
