"""Tests for repro.core.movement."""

import datetime as dt

import pytest

from repro.core.movement import analyze_movement, transition_matrix
from repro.core.topasn import asn_members
from repro.errors import AnalysisError
from repro.measurement.fast import FastCollector


@pytest.fixture(scope="module")
def collector(tiny_world):
    return FastCollector(tiny_world)


SEDO = 47846
FROM = dt.date(2022, 3, 8)
TO = dt.date(2022, 5, 25)


class TestAccounting:
    def test_partition_of_original_set(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        assert report.original == report.remained + report.relocated + report.expired

    def test_original_matches_members(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        snapshot = collector.collect(FROM)
        assert report.original == len(asn_members(snapshot, SEDO))

    def test_shares(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        assert 0.0 <= report.remained_share <= 1.0
        assert report.remained_share + report.relocated_share <= 1.0

    def test_destinations_sum_to_relocated(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        assert sum(report.relocation_destinations.values()) == report.relocated

    def test_inflow_split(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        assert report.inflow_total == report.inflow_relocated + report.inflow_new

    def test_empty_window_rejected(self, collector):
        with pytest.raises(AnalysisError):
            analyze_movement(collector, SEDO, FROM, FROM)

    def test_top_destinations_ordering(self, collector):
        report = analyze_movement(collector, SEDO, FROM, TO)
        tops = report.top_destinations(3)
        counts = [count for _, count in tops]
        assert counts == sorted(counts, reverse=True)

    def test_destination_share(self, collector, tiny_world):
        report = analyze_movement(collector, SEDO, FROM, TO)
        serverel = tiny_world.catalog.get("serverel").primary_asn
        if report.relocated:
            assert 0.0 <= report.destination_share(serverel) <= 1.0

    def test_symmetric_window_consistency(self, collector, tiny_world):
        """Arrivals into Serverel include Sedo's leavers."""
        serverel = tiny_world.catalog.get("serverel").primary_asn
        sedo_report = analyze_movement(collector, SEDO, FROM, TO)
        serverel_report = analyze_movement(collector, serverel, FROM, TO)
        sedo_to_serverel = sedo_report.relocation_destinations.get(serverel, 0)
        assert serverel_report.inflow_relocated >= sedo_to_serverel


class TestTransitionMatrix:
    def test_diagonal_dominates(self, collector):
        matrix = transition_matrix(collector, FROM, TO)
        stayed = sum(c for (a, b), c in matrix.items() if a == b)
        moved = sum(c for (a, b), c in matrix.items() if a != b)
        assert stayed > moved  # most of the Internet does not move

    def test_consistent_with_analyze_movement(self, collector):
        matrix = transition_matrix(collector, FROM, TO)
        report = analyze_movement(collector, SEDO, FROM, TO)
        sedo_outflow = sum(
            c for (a, b), c in matrix.items() if a == SEDO and b != SEDO
        )
        # analyze_movement counts membership by *any* component ASN while
        # the matrix uses the primary ASN, so they agree up to the tiny
        # dual-homed cohort.
        assert abs(sedo_outflow - report.relocated) <= 3

    def test_min_count_filters(self, collector):
        full = transition_matrix(collector, FROM, TO, min_count=1)
        filtered = transition_matrix(collector, FROM, TO, min_count=5)
        assert set(filtered) <= set(full)
        assert all(count >= 5 for count in filtered.values())

    def test_empty_window_rejected(self, collector):
        import pytest as _pytest

        with _pytest.raises(Exception):
            transition_matrix(collector, FROM, FROM)
