"""Tests for repro.providers.catalog: the standard market."""

import pytest

from repro.errors import ScenarioError
from repro.providers.catalog import ProviderCatalog, standard_catalog
from repro.providers.provider import Provider, Role


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog()


class TestPaperProviders:
    """The ASNs the paper names must be present and correctly labelled."""

    @pytest.mark.parametrize(
        "key,asn,country",
        [
            ("amazon", 16509, "US"),
            ("sedo", 47846, "DE"),
            ("cloudflare", 13335, "US"),
            ("regru", 197695, "RU"),
            ("rucenter", 48287, "RU"),
            ("timeweb", 9123, "RU"),
            ("beget", 198610, "RU"),
            ("hetzner", 24940, "DE"),
            ("linode", 63949, "US"),
            ("netnod", 8674, "SE"),
            ("serverel", 50867, "NL"),
        ],
    )
    def test_asn_and_country(self, catalog, key, asn, country):
        provider = catalog.get(key)
        assert asn in provider.asns
        assert provider.country == country

    def test_google_has_both_asns(self, catalog):
        assert catalog.get("google").asns == (15169, 396982)

    def test_rucenter_cloud_outsourced_to_netnod_segment(self, catalog):
        cloud = catalog.get("rucenter_cloud")
        assert all(h.infra == "netnodcloud" for h in cloud.ns_hosts)
        assert all(h.tld == "ru" for h in cloud.ns_hosts)

    def test_beget_ns_under_com(self, catalog):
        assert {h.tld for h in catalog.get("beget").ns_hosts} == {"com"}

    def test_route53_spans_many_tlds(self, catalog):
        tlds = {h.tld for h in catalog.get("amazon").ns_hosts}
        assert {"com", "net", "org", "uk"} <= tlds

    def test_sedo_is_parking(self, catalog):
        assert Role.PARKING in catalog.get("sedo").roles


class TestCatalogMechanics:
    def test_unknown_key_raises(self, catalog):
        with pytest.raises(ScenarioError):
            catalog.get("nope")

    def test_try_get(self, catalog):
        assert catalog.try_get("nope") is None

    def test_by_asn(self, catalog):
        assert catalog.by_asn(13335).key == "cloudflare"
        assert catalog.by_asn(999999) is None

    def test_asns_unique_except_rucenter_cloud(self, catalog):
        # rucenter_cloud is a *service* of RU-CENTER, so it shares AS48287;
        # every other ASN belongs to exactly one provider.
        seen = {}
        shared = []
        for provider in catalog:
            for asn in provider.asns:
                if asn in seen:
                    shared.append((asn, seen[asn], provider.key))
                seen[asn] = provider.key
        assert shared == [(48287, "rucenter", "rucenter_cloud")]

    def test_no_duplicate_ns_hostnames(self, catalog):
        seen = set()
        for provider in catalog:
            for host in provider.ns_hosts:
                assert host.hostname not in seen
                seen.add(host.hostname)

    def test_duplicate_key_rejected(self):
        provider = Provider("dup", "Dup", "US", [1], Role.HOSTING)
        with pytest.raises(ScenarioError):
            ProviderCatalog([provider, provider])

    def test_as_registry_covers_all(self, catalog):
        registry = catalog.as_registry()
        for provider in catalog:
            for asn in provider.asns:
                assert registry.get(asn).country == provider.country

    def test_hosting_and_dns_partitions(self, catalog):
        assert len(catalog.hosting_providers()) > 20
        assert len(catalog.dns_providers()) > 20


class TestLongTail:
    def test_longtail_providers_span_many_tlds(self, catalog):
        tlds = set()
        for key in ("longtail1", "longtail2", "longtail3"):
            tlds.update(host.tld for host in catalog.get(key).ns_hosts)
        assert len(tlds) == 15  # five distinct TLDs per farm

    def test_longtail_tlds_not_russian(self, catalog):
        from repro.registry.tld import is_russian_tld

        for key in ("longtail1", "longtail2", "longtail3"):
            for host in catalog.get(key).ns_hosts:
                assert not is_russian_tld(host.tld)
