"""Tests for repro.providers.addressing: the address plan."""

import pytest

from repro.errors import ScenarioError
from repro.geo.countries import RU
from repro.providers.addressing import AddressPlan
from repro.providers.catalog import standard_catalog


@pytest.fixture(scope="module")
def plan():
    return AddressPlan(standard_catalog())


class TestAllocations:
    def test_every_asn_has_a_prefix(self, plan):
        for provider in plan.catalog:
            for asn in provider.asns:
                prefix = plan.prefix_of_asn(asn)
                assert prefix.length == 16

    def test_prefixes_disjoint(self, plan):
        prefixes = [
            plan.prefix_of_asn(asn)
            for provider in plan.catalog
            for asn in provider.asns
        ]
        unique = set(prefixes)
        ordered = sorted(unique)
        for a, b in zip(ordered, ordered[1:]):
            assert not a.overlaps(b)

    def test_hosting_pool_inside_asn_prefix(self, plan):
        prefix = plan.prefix_of_asn(197695)
        pool = plan.hosting_pool(197695)
        assert prefix.contains_prefix(pool)
        assert pool.length == 17

    def test_unknown_asn_rejected(self, plan):
        with pytest.raises(ScenarioError):
            plan.prefix_of_asn(424242)


class TestConsistency:
    def test_routing_and_geo_agree(self, plan):
        """The paper's key invariant: IP -> ASN and IP -> country line up."""
        routing = plan.routing_table()
        geo = plan.geo_database()
        registry = plan.catalog.as_registry()
        for provider in plan.catalog:
            address = plan.hosting_pool(provider.primary_asn).first + 7
            assert routing.lookup(address) == provider.primary_asn
            assert geo.lookup(address) == registry.country_of(provider.primary_asn)

    def test_ns_addresses_inside_infra_network(self, plan):
        routing = plan.routing_table()
        for hostname in plan.ns_hostnames():
            host = plan.ns_host(hostname)
            infra = plan.catalog.get(host.infra)
            assert routing.lookup(plan.ns_address(hostname)) == infra.primary_asn

    def test_cloud_ns_geolocates_to_sweden_initially(self, plan):
        address = plan.ns_address("ns4-cloud.nic.ru")
        assert plan.geo_database().lookup(address) == "SE"


class TestHostingAddresses:
    def test_deterministic(self, plan):
        a = plan.hosting_address("regru", "example.ru")
        b = plan.hosting_address("regru", "example.ru")
        assert a == b

    def test_inside_pool(self, plan):
        address = plan.hosting_address("cloudflare", "example.ru")
        assert plan.hosting_pool(13335).contains(address)

    def test_differs_per_provider(self, plan):
        assert plan.hosting_address("regru", "example.ru") != plan.hosting_address(
            "timeweb", "example.ru"
        )

    def test_multi_asn_provider(self, plan):
        a = plan.hosting_address("google", "example.ru", asn=15169)
        b = plan.hosting_address("google", "example.ru", asn=396982)
        assert plan.hosting_pool(15169).contains(a)
        assert plan.hosting_pool(396982).contains(b)

    def test_dns_only_provider_rejected(self, plan):
        with pytest.raises(ScenarioError):
            plan.hosting_address("netnod", "example.ru")


class TestNsHostMoves:
    def test_netnod_renumbering(self):
        plan = AddressPlan(standard_catalog())
        old_address = plan.ns_address("ns4-cloud.nic.ru")
        assert plan.country_of_address(old_address) == "SE"
        old, new = plan.move_ns_host("ns4-cloud.nic.ru", "rucenter")
        assert old == old_address
        assert plan.ns_address("ns4-cloud.nic.ru") == new
        assert plan.country_of_address(new) == RU
        assert plan.routing_table().lookup(new) == 48287

    def test_unknown_host_rejected(self, plan):
        with pytest.raises(ScenarioError):
            plan.ns_address("ns1.unknown.example")
