"""Tests for repro.providers.provider."""

import pytest

from repro.errors import ScenarioError
from repro.providers.provider import NsHost, Provider, Role


class TestNsHost:
    def test_infra_defaults_to_owner(self):
        host = NsHost("ns1.reg.ru", "regru")
        assert host.infra == "regru"

    def test_outsourced_infra(self):
        host = NsHost("ns4-cloud.nic.ru", "rucenter_cloud", "netnod")
        assert host.owner == "rucenter_cloud"
        assert host.infra == "netnod"

    def test_tld(self):
        assert NsHost("alice.ns.cloudflare.com", "cloudflare").tld == "com"


class TestProvider:
    def test_primary_asn(self):
        provider = Provider("google", "Google", "US", [15169, 396982], Role.HOSTING)
        assert provider.primary_asn == 15169

    def test_needs_asn(self):
        with pytest.raises(ScenarioError):
            Provider("x", "X", "US", [], Role.HOSTING)

    def test_dns_role_needs_hosts(self):
        with pytest.raises(ScenarioError):
            Provider("x", "X", "US", [1], Role.DNS)

    def test_roles(self):
        hosting = Provider("h", "H", "US", [1], Role.HOSTING)
        parking = Provider("p", "P", "DE", [2], Role.PARKING)
        dns = Provider("d", "D", "US", [3], Role.DNS, ["ns1.d.com"])
        assert hosting.offers_hosting and not hosting.offers_dns
        assert parking.offers_hosting
        assert dns.offers_dns and not dns.offers_hosting

    def test_ns_hosts_inherit_infra(self):
        provider = Provider(
            "cloud", "Cloud", "RU", [1], Role.DNS,
            ["ns1.cloud.ru", "ns2.cloud.ru"], ns_infra="other",
        )
        assert all(host.infra == "other" for host in provider.ns_hosts)
