#!/usr/bin/env python
"""End-to-end smoke for the scenario engine (CI scenario-sweep job).

Three claims, checked against real processes and real bytes:

1. **Baseline byte-identity** — an archive built from
   ``ScenarioSpec.resolve("baseline")`` is byte-identical to one built
   from the legacy ad-hoc ``ConflictScenarioConfig`` path (digest over
   every shard file).
2. **Cross-scenario serving** — ``repro serve --scenario-archive``
   answers ``/v2/scenarios``, per-scenario ``/v2/query``, and a
   ``/v2/diff`` joining two worlds, all over HTTP from disk.
3. **Cache walls** — repeats inside one scenario hit the result cache;
   the same spec under another scenario never does.

Run from the repository root::

    PYTHONPATH=src python scripts/scenario_smoke.py

Exit code 0 means every check passed.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import warnings

sys.path.insert(0, "src")

from repro.archive import ArchiveBuilder  # noqa: E402
from repro.client import ClientError, QueryClient  # noqa: E402
from repro.scenario import ScenarioSpec, archive_digest  # noqa: E402
from repro.sim import ConflictScenarioConfig  # noqa: E402

SCALE = 20000.0
CADENCE = 90
COUNTERFACTUAL = "no-invasion"

#: A three-day conflict-window slice is plenty for the identity check.
IDENTITY_RANGE = ("2022-03-01", "2022-03-03", 1)

ARGS = ["--scale", str(int(SCALE)), "--no-pki", "--cadence", str(CADENCE)]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_baseline_identity(scratch: str) -> None:
    print("+ checking baseline archive byte-identity (spec vs ad-hoc config)")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_config = ConflictScenarioConfig(scale=SCALE, with_pki=False)
    spec_config = (
        ScenarioSpec.resolve("baseline")
        .with_config(scale=SCALE, with_pki=False)
        .compile()
    )
    legacy_dir = f"{scratch}/identity-legacy"
    spec_dir = f"{scratch}/identity-spec"
    ArchiveBuilder(legacy_dir, legacy_config).build(*IDENTITY_RANGE)
    ArchiveBuilder(spec_dir, spec_config).build(*IDENTITY_RANGE)
    legacy = archive_digest(legacy_dir)
    spec = archive_digest(spec_dir)
    if legacy != spec:
        fail(f"baseline archives diverged: legacy {legacy} != spec {spec}")
    print(f"+ byte-identity ok (archive digest {spec[:16]}...)")


def build_archive(scenario: str, directory: str) -> None:
    print(f"+ building {scenario!r} archive at {directory}")
    build = subprocess.run(
        [sys.executable, "-m", "repro", "--scenario", scenario, *ARGS,
         "archive", "build", directory],
        stdout=subprocess.PIPE,
    )
    if build.returncode != 0:
        fail(f"{scenario!r} archive build exited {build.returncode}")


def wait_for_port(process: subprocess.Popen) -> int:
    line = process.stdout.readline().decode()
    if not line.startswith("serving on http://"):
        fail(f"unexpected serve banner: {line!r}")
    return int(line.rsplit(":", 1)[1])


def fetch(client: QueryClient, spec) -> tuple[dict, str]:
    """(envelope, x-cache) for one query spec, failing on any error."""
    try:
        response = client.query(spec)
    except ClientError as exc:
        fail(f"query {spec} failed: {exc}")
    if response.status != 200:
        fail(f"query {spec} returned {response.status}: {response.body!r}")
    return json.loads(response.body), response.headers.get("x-cache", "")


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        check_baseline_identity(scratch)

        baseline_dir = f"{scratch}/baseline"
        counterfactual_dir = f"{scratch}/{COUNTERFACTUAL}"
        build_archive("baseline", baseline_dir)
        build_archive(COUNTERFACTUAL, counterfactual_dir)

        print("+ starting repro serve with both worlds")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *ARGS, "serve",
             "--archive", baseline_dir, "--port", "0",
             "--scenario-archive", f"{COUNTERFACTUAL}={counterfactual_dir}"],
            stdout=subprocess.PIPE,
        )
        try:
            port = wait_for_port(process)
            client = QueryClient(
                f"http://127.0.0.1:{port}", timeout=60.0, retries=3,
                deadline_ms=30_000,
            )
            print(f"+ serving on http://127.0.0.1:{port}")
            client.wait_ready(deadline_seconds=30.0)

            listing = json.loads(client.scenarios().body)
            ids = [entry["id"] for entry in listing["scenarios"]]
            if ids != ["baseline", COUNTERFACTUAL]:
                fail(f"/v2/scenarios listed {ids}")
            print(f"+ /v2/scenarios ok ({', '.join(ids)})")

            base, _ = fetch(client, {"kind": "headline"})
            counterfactual, first_cache = fetch(
                client, {"kind": "headline", "scenario": COUNTERFACTUAL}
            )
            if first_cache == "hit":
                fail("first counterfactual query hit the baseline cache")
            base_end = base["data"]["ns_full_end"]
            cf_end = counterfactual["data"]["ns_full_end"]
            if base_end == cf_end:
                fail(f"worlds answered identically (ns_full_end={base_end})")
            repeat, repeat_cache = fetch(
                client, {"kind": "headline", "scenario": COUNTERFACTUAL}
            )
            if repeat_cache != "hit" or repeat != counterfactual:
                fail("counterfactual repeat missed its own cache")
            print(
                "+ per-scenario queries ok "
                f"(ns_full_end {base_end} vs {cf_end}, cache walls hold)"
            )

            diff, _ = fetch(
                client,
                {"kind": "diff", "experiment": "fig2",
                 "scenario": COUNTERFACTUAL},
            )
            data = diff["data"]
            if data["scenario"] != COUNTERFACTUAL or not data["measured_delta"]:
                fail(f"diff payload malformed: {data}")
            deltas = ", ".join(
                f"{key}={value:+.2f}"
                for key, value in sorted(data["measured_delta"].items())
            )
            print(f"+ cross-scenario diff ok ({deltas})")

            print("+ sending SIGINT")
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=60)
            if code != 0:
                fail(f"serve exited {code} after SIGINT")
            print("PASS: scenario smoke complete")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
