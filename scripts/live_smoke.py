#!/usr/bin/env python
"""End-to-end smoke for live mode: follow, interrupt, resume, converge.

The script builds a one-day seed archive, runs a clean follow over a
three-week conflict window to establish the **reference** (archive
digest + event feed), then repeats the follow with a deterministic
fault plan armed — a doomed mid-window ingest day plus bit-flipped
journal writes — resumes with a clean engine, and asserts the one
invariant live mode promises:

    every interrupted-and-resumed follow converges on the reference
    archive digest and a gapless ``1..N`` event sequence.

The fault seed comes from ``REPRO_FAULT_SEED`` (default 101), so the
CI ``live-chaos`` matrix exercises different injection orderings.  A
metrics document (the engine's profile counters plus the convergence
record) is written to ``--output`` for CI artifact upload.

Run from the repository root::

    PYTHONPATH=src python scripts/live_smoke.py

Exit code 0 means every check passed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, "src")

from repro.archive import ArchiveBuilder, archive_digest  # noqa: E402
from repro.faults import CORRUPT, CRASH, FaultPlan, FaultSpec  # noqa: E402
from repro.live import (  # noqa: E402
    CompositionStepDetector,
    EventLog,
    FollowEngine,
    FollowOptions,
    IssuanceSpikeDetector,
    ProviderExitDetector,
    SanctionsMigrationDetector,
)
from repro.measurement.metrics import SweepMetrics  # noqa: E402
from repro.scenario import ScenarioSpec  # noqa: E402

SCALE = 20000.0
SEED_DAY = "2022-02-20"
FOLLOW_START = "2022-02-21"
FOLLOW_END = "2022-03-10"
#: Doomed by the fault plan: every ingest attempt for this day fails.
DOOMED_DAY = "2022-02-25"


def detectors():
    """Thresholds tuned so the 1:20000 window emits a non-empty feed."""
    return [
        ProviderExitDetector(min_count=2, exit_fraction=0.5),
        CompositionStepDetector(threshold=0.002),
        IssuanceSpikeDetector(spike_fraction=0.01, min_jump=1),
        SanctionsMigrationDetector(min_burst=1, burst_fraction=0.0),
    ]


def build_config():
    return (
        ScenarioSpec.resolve("baseline")
        .with_config(scale=SCALE, with_pki=False)
        .compile()
    )


def make_engine(directory, config, faults=None, metrics=None, retries=1):
    options = FollowOptions(
        start=FOLLOW_START, end=FOLLOW_END, cadence_days=1,
        interval_seconds=0.0, retries=retries, backoff=0.001,
    )
    engine = FollowEngine(
        directory, config, options=options, detectors=detectors(),
        faults=faults, metrics=metrics,
    )
    engine.resume()
    return engine


def seed(directory, config):
    ArchiveBuilder(directory, config).build(SEED_DAY, SEED_DAY, 1)


def follow_clean(directory, config):
    """The uninterrupted reference run."""
    seed(directory, config)
    engine = make_engine(directory, config)
    engine.run()
    assert engine.done, "reference follow did not finish its window"
    events = EventLog(directory).load()
    assert events, "reference follow emitted no events — detectors too dull"
    seqs = [event.seq for event in events]
    assert seqs == list(range(1, len(seqs) + 1)), f"gapped feed: {seqs}"
    return archive_digest(directory), [event.to_line() for event in events]


def follow_faulted(directory, config, fault_seed, metrics):
    """Interrupted run: doomed ingest day + corrupted journal writes."""
    seed(directory, config)
    plan = FaultPlan(fault_seed, {
        "live.ingest_day": FaultSpec(CRASH, rate=1.0, match=DOOMED_DAY),
        "live.journal_write.bytes": FaultSpec(
            CORRUPT, rate=1.0, max_injections=2
        ),
    })
    doomed = make_engine(directory, config, faults=plan, metrics=metrics)
    doomed.run(max_cycles=10)
    assert doomed.consecutive_failures > 0, "the doomed day did not fail"
    checkpoint = doomed.last_checkpoint()
    assert checkpoint is not None
    assert checkpoint.date.isoformat() < DOOMED_DAY
    injected = {
        site: plan.injected(site)
        for site in ("live.ingest_day", "live.journal_write.bytes")
    }
    assert injected["live.journal_write.bytes"] == 2, (
        "journal corruption was not exercised"
    )

    # A fresh, fault-free engine resumes from the journal.
    resumed = make_engine(directory, config, metrics=metrics)
    resumed.run()
    assert resumed.done, "resumed follow did not finish its window"
    return injected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="live-metrics.json")
    args = parser.parse_args()
    fault_seed = int(os.environ.get("REPRO_FAULT_SEED", "101"))

    config = build_config()
    metrics = SweepMetrics()
    with tempfile.TemporaryDirectory(prefix="live-smoke-") as root:
        reference_dir = os.path.join(root, "reference")
        faulted_dir = os.path.join(root, "faulted")

        digest, lines = follow_clean(reference_dir, config)
        print(f"reference: digest {digest[:16]}… {len(lines)} events")

        injected = follow_faulted(faulted_dir, config, fault_seed, metrics)
        print(f"faulted run (seed {fault_seed}): injected {injected}")

        resumed_digest = archive_digest(faulted_dir)
        resumed_lines = [
            event.to_line() for event in EventLog(faulted_dir).load()
        ]
        assert resumed_digest == digest, (
            f"digest diverged: {resumed_digest} != {digest}"
        )
        assert resumed_lines == lines, "event feed diverged after resume"
        seqs = [
            event.seq for event in EventLog(faulted_dir).load()
        ]
        assert seqs == list(range(1, len(seqs) + 1)), f"gapped feed: {seqs}"
        print(f"converged: digest match, {len(seqs)} gapless events")

        document = {
            "fault_seed": fault_seed,
            "reference_digest": digest,
            "events": len(seqs),
            "injected": injected,
            "counters": metrics.summary().get("counters", {}),
            "recovery": metrics.summary().get("recovery", {}),
        }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
