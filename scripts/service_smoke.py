#!/usr/bin/env python
"""End-to-end smoke for ``repro serve``: build a tiny archive, start the
service as a real subprocess, drive a scripted query mix (including one
coalesced concurrent burst), check /metrics counters, and shut it down
with SIGINT.

Run from the repository root (CI runs it as the service-smoke job)::

    PYTHONPATH=src python scripts/service_smoke.py

Exit code 0 means every check passed.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

SCALE = "5000"
CADENCE = "90"
ARGS = ["--scale", SCALE, "--no-pki", "--cadence", CADENCE]

#: One request per endpoint class (the scripted mix).
QUERY_MIX = [
    "/healthz",
    "/",
    "/v1/experiments",
    "/v1/headline",
    "/v1/series/ns_composition?start=2022-01-01&end=2022-06-01",
    "/v1/records/2022-03-04?tld=ru&limit=5",
    "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=5",
    "/v1/query?kind=catalog",
]

COALESCED_PATH = "/v1/records/2022-03-03?tld=ru&limit=10"
COALESCED_BURST = 8


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fetch(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        if response.status != 200:
            fail(f"{path} returned {response.status}")
        return response.read()


def wait_for_port(process: subprocess.Popen) -> int:
    """Read the announced port off the serve banner."""
    line = process.stdout.readline().decode()
    if not line.startswith("serving on http://"):
        fail(f"unexpected serve banner: {line!r}")
    return int(line.rsplit(":", 1)[1])


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        archive = f"{scratch}/archive"
        print(f"+ building archive at {archive}")
        build = subprocess.run(
            [sys.executable, "-m", "repro", *ARGS, "archive", "build",
             archive],
            stdout=subprocess.PIPE,
        )
        if build.returncode != 0:
            fail(f"archive build exited {build.returncode}")

        print("+ starting repro serve")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *ARGS, "serve",
             "--archive", archive, "--port", "0"],
            stdout=subprocess.PIPE,
        )
        try:
            port = wait_for_port(process)
            base = f"http://127.0.0.1:{port}"
            print(f"+ serving on {base}")

            for path in QUERY_MIX:
                payload = json.loads(fetch(base, path))
                if "error" in payload:
                    fail(f"{path} answered with an error: {payload}")
            print(f"+ query mix ok ({len(QUERY_MIX)} requests)")

            # One coalesced concurrent burst: identical requests racing.
            with ThreadPoolExecutor(max_workers=COALESCED_BURST) as pool:
                bodies = set(
                    pool.map(
                        lambda _: fetch(base, COALESCED_PATH),
                        range(COALESCED_BURST),
                    )
                )
            if len(bodies) != 1:
                fail("coalesced burst produced diverging answers")
            print(f"+ concurrent burst ok ({COALESCED_BURST} identical requests)")

            # Fetch twice: an endpoint's own request is recorded after
            # its response renders, so the second read sees the first.
            fetch(base, "/metrics")
            metrics = json.loads(fetch(base, "/metrics"))["metrics"]
            counters = metrics.get("counters", {})
            if counters.get("requests_total", 0) <= 0:
                fail(f"requests_total not counted: {counters}")
            if counters.get("requests_coalesced", 0) <= 0:
                fail(f"burst did not coalesce: {counters}")
            endpoints = metrics.get("endpoints", {})
            for endpoint in ("headline", "records", "query", "metrics"):
                if endpoints.get(endpoint, {}).get("requests", 0) <= 0:
                    fail(f"endpoint {endpoint!r} not counted: {endpoints}")
            hits = metrics["caches"]["query_results"]["hits"]
            if hits < COALESCED_BURST - 1:
                fail(f"expected >= {COALESCED_BURST - 1} cache hits, saw {hits}")
            print(
                "+ metrics ok "
                f"(total={counters['requests_total']}, "
                f"coalesced={counters['requests_coalesced']}, hits={hits})"
            )

            print("+ sending SIGINT")
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=60)
            if code != 0:
                fail(f"serve exited {code} after SIGINT")
            print("+ graceful shutdown ok")

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    urllib.request.urlopen(base + "/healthz", timeout=1)
                    fail("service still answering after shutdown")
                except urllib.error.URLError:
                    break
            print("PASS: service smoke complete")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
