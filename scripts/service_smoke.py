#!/usr/bin/env python
"""End-to-end smoke for ``repro serve``: build a tiny archive, start the
service as a real subprocess *with one targeted fault injected*, drive a
scripted query mix through the resilient :class:`repro.client.QueryClient`
(including one coalesced concurrent burst), check /metrics counters, and
shut the server down with SIGINT.

The injected fault is a deterministic ``service.compute`` STALL on the
headline query: the smoke run must absorb it inside the overall request
deadline — proving the serving deadline machinery and the client retry
policy compose — and ``/metrics`` must report the injection.

Run from the repository root (CI runs it as the service-smoke job)::

    PYTHONPATH=src python scripts/service_smoke.py

Exit code 0 means every check passed.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, "src")

from repro.client import ClientError, QueryClient  # noqa: E402

SCALE = "5000"
CADENCE = "90"
ARGS = ["--scale", SCALE, "--no-pki", "--cadence", CADENCE]

#: Deterministic fault plan for the serve subprocess: every headline
#: computation stalls for 300 ms; nothing else is touched.
FAULT_SEED = "11"
FAULT_FLAGS = ["--fault-seed", FAULT_SEED, "--fault-rate", "1.0"]
SERVE_FAULT_FLAGS = ["--fault-match", '"kind":"headline"', "--fault-stall-ms", "300"]

#: Per-request time budget the client attaches; generous enough to absorb
#: the injected stall, tight enough to catch a hang.
DEADLINE_MS = 20_000

#: One request per endpoint class (the scripted mix).
QUERY_MIX = [
    "/healthz",
    "/",
    "/v1/experiments",
    "/v1/headline",
    "/v1/series/ns_composition?start=2022-01-01&end=2022-06-01",
    "/v1/records/2022-03-04?tld=ru&limit=5",
    "/v1/records/2022-03-04?tld=%D1%80%D1%84&limit=5",
    "/v1/query?kind=catalog",
]

COALESCED_PATH = "/v1/records/2022-03-03?tld=ru&limit=10"
COALESCED_BURST = 8


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_client(port: int) -> QueryClient:
    return QueryClient(
        f"http://127.0.0.1:{port}",
        timeout=60.0,
        retries=3,
        deadline_ms=DEADLINE_MS,
        seed=int(FAULT_SEED),
    )


def fetch(client: QueryClient, path: str) -> bytes:
    try:
        response = client.get(path)
    except ClientError as exc:
        fail(f"{path} failed: {exc}")
    if response.status != 200:
        fail(f"{path} returned {response.status}")
    return response.body


def wait_for_port(process: subprocess.Popen) -> int:
    """Read the announced port off the serve banner."""
    line = process.stdout.readline().decode()
    if not line.startswith("serving on http://"):
        fail(f"unexpected serve banner: {line!r}")
    return int(line.rsplit(":", 1)[1])


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        archive = f"{scratch}/archive"
        print(f"+ building archive at {archive}")
        build = subprocess.run(
            [sys.executable, "-m", "repro", *ARGS, "archive", "build",
             archive],
            stdout=subprocess.PIPE,
        )
        if build.returncode != 0:
            fail(f"archive build exited {build.returncode}")

        print("+ starting repro serve (with one injected STALL fault)")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *ARGS, *FAULT_FLAGS, "serve",
             "--archive", archive, "--port", "0", *SERVE_FAULT_FLAGS],
            stdout=subprocess.PIPE,
        )
        try:
            port = wait_for_port(process)
            client = make_client(port)
            print(f"+ serving on http://127.0.0.1:{port}")
            client.wait_ready(deadline_seconds=30.0)

            started = time.monotonic()
            for path in QUERY_MIX:
                payload = json.loads(fetch(client, path))
                if "error" in payload:
                    fail(f"{path} answered with an error: {payload}")
            elapsed = time.monotonic() - started
            if elapsed > DEADLINE_MS / 1000.0:
                fail(f"query mix overran the deadline budget: {elapsed:.1f}s")
            print(
                f"+ query mix ok ({len(QUERY_MIX)} requests in {elapsed:.1f}s, "
                "injected stall absorbed)"
            )

            # One coalesced concurrent burst: identical requests racing,
            # each thread with its own client.
            def burst_fetch(_):
                return fetch(make_client(port), COALESCED_PATH)

            with ThreadPoolExecutor(max_workers=COALESCED_BURST) as pool:
                bodies = set(pool.map(burst_fetch, range(COALESCED_BURST)))
            if len(bodies) != 1:
                fail("coalesced burst produced diverging answers")
            print(f"+ concurrent burst ok ({COALESCED_BURST} identical requests)")

            # Fetch twice: an endpoint's own request is recorded after
            # its response renders, so the second read sees the first.
            fetch(client, "/metrics")
            payload = json.loads(fetch(client, "/metrics"))
            metrics = payload["metrics"]
            counters = metrics.get("counters", {})
            if counters.get("requests_total", 0) <= 0:
                fail(f"requests_total not counted: {counters}")
            if counters.get("requests_coalesced", 0) <= 0:
                fail(f"burst did not coalesce: {counters}")
            endpoints = metrics.get("endpoints", {})
            for endpoint in ("headline", "records", "query", "metrics"):
                if endpoints.get(endpoint, {}).get("requests", 0) <= 0:
                    fail(f"endpoint {endpoint!r} not counted: {endpoints}")
            hits = metrics["caches"]["query_results"]["hits"]
            if hits < COALESCED_BURST - 1:
                fail(f"expected >= {COALESCED_BURST - 1} cache hits, saw {hits}")

            # The injected stall must be visible in the recovery section,
            # and the serving state must still be healthy: the fault was
            # absorbed, not merely dodged.
            injected = metrics.get("recovery", {}).get("faults_injected", 0)
            if injected < 1:
                fail(f"no injected fault reported in /metrics: {metrics}")
            service = payload.get("service", {})
            if service.get("state") != "ready":
                fail(f"service degraded after absorbing the stall: {service}")
            if service.get("breaker", {}).get("state") != "closed":
                fail(f"breaker not closed: {service}")
            print(
                "+ metrics ok "
                f"(total={counters['requests_total']}, "
                f"coalesced={counters['requests_coalesced']}, hits={hits}, "
                f"faults_injected={injected})"
            )

            print("+ sending SIGINT")
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=60)
            if code != 0:
                fail(f"serve exited {code} after SIGINT")
            print("+ graceful shutdown ok")

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=1
                    )
                    fail("service still answering after shutdown")
                except urllib.error.URLError:
                    break
            print("PASS: service smoke complete")
            return 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
