"""Deterministic fault injection for the sweep/archive pipeline.

See :mod:`repro.faults.plan` for the model: a :class:`FaultPlan` makes
pure seed-derived decisions per injection site, the hot paths carry
cheap no-op hooks when no plan is attached, and every fault the
default plan can inject is recovered in-path (documented in
``docs/faults.md``).
"""

from .plan import (
    CORRUPT,
    CRASH,
    IO_ERROR,
    KILL,
    KINDS,
    SERVICE_SITES,
    SITES,
    STALL,
    FaultPlan,
    FaultSpec,
    TransientIOError,
    WorkerCrashed,
    default_plan,
    mark_worker_process,
    service_plan,
    sync_fault_metrics,
)

__all__ = [
    "IO_ERROR",
    "CRASH",
    "KILL",
    "CORRUPT",
    "STALL",
    "KINDS",
    "SITES",
    "SERVICE_SITES",
    "FaultPlan",
    "FaultSpec",
    "TransientIOError",
    "WorkerCrashed",
    "default_plan",
    "service_plan",
    "mark_worker_process",
    "sync_fault_metrics",
]
