"""Seed-driven deterministic fault injection.

A :class:`FaultPlan` decides, per **injection site**, whether a hot-path
operation should experience a transient IO error, a worker crash, a
hard worker kill, corrupted bytes, or a stall.  Decisions are *pure
functions* of ``(seed, site, key)`` — the key carries the work item's
identity plus its attempt number (``"2022-03-04.shard#1"``), so the
same fault seed reproduces the identical injected-fault sequence no
matter how chunks interleave across workers, and a retry of the same
operation re-rolls under a fresh key instead of hitting the same fault
forever.

Hot paths hold an ``Optional[FaultPlan]``; when it is ``None`` the hook
is a single ``is not None`` check, so the disabled pipeline pays
nothing.  The plan is picklable (site specs and seed only); each
process accumulates its own injection log.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..errors import FaultError
from ..rng import derive_rng

__all__ = [
    "IO_ERROR",
    "CRASH",
    "KILL",
    "CORRUPT",
    "STALL",
    "KINDS",
    "SITES",
    "SERVICE_SITES",
    "TransientIOError",
    "WorkerCrashed",
    "FaultSpec",
    "FaultPlan",
    "default_plan",
    "service_plan",
    "sync_fault_metrics",
]

# ----------------------------------------------------------------------
# Fault kinds
# ----------------------------------------------------------------------

#: Raise :class:`TransientIOError` (an ``OSError``) at the site.
IO_ERROR = "io-error"
#: Raise :class:`WorkerCrashed` at the site (a survivable crash).
CRASH = "crash"
#: ``os._exit`` inside a worker process (downgraded to :data:`CRASH`
#: in the driving process, which must survive to recover).
KILL = "kill"
#: Flip one deterministic bit of the bytes passing the site.
CORRUPT = "corrupt"
#: Sleep ``stall_seconds`` at the site, then continue.
STALL = "stall"

KINDS = (IO_ERROR, CRASH, KILL, CORRUPT, STALL)

#: Known injection sites and what faulting there simulates.
SITES = {
    "sweep.chunk": "chunk evaluation, serial or inside a worker process",
    "sweep.pool": "process-pool round startup in the driving process",
    "shard.write": "shard write, mid-way through the temp file",
    "shard.write.bytes": "shard bytes on their way to disk (corruption)",
    "manifest.write": "manifest write, mid-way through the temp file",
    "manifest.write.bytes": "manifest bytes on their way to disk (corruption)",
    "shard.read": "shard read from an opened archive (transient IO)",
    "service.compute": "query computation entering the serving worker pool",
    "service.worker_crash": (
        "serving worker process dies mid-query (hard KILL; the "
        "multi-process supervisor must restart it)"
    ),
    "service.archive_read": (
        "service-level archive day read (fails the query; unlike "
        "shard.read it is not retried in-path, so the breaker sees it)"
    ),
    "service.response_write": "HTTP response bytes on their way to the client",
    "live.ingest_day": "follow-engine day ingest, before the incremental build",
    "live.journal_write": "follow journal checkpoint, mid-way through the temp file",
    "live.journal_write.bytes": "follow journal bytes on their way to disk (corruption)",
    "live.detector": "change detector pass over the day's summary delta",
    "live.sse_write": "SSE event frame bytes, mid-way through the write",
}

#: The injection sites the serving path owns (``repro serve``).
SERVICE_SITES = (
    "service.compute", "service.worker_crash",
    "service.archive_read", "service.response_write",
)

#: Set in worker processes so :data:`KILL` knows it may really die.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (enables hard :data:`KILL`)."""
    global _IN_WORKER
    _IN_WORKER = True


class TransientIOError(OSError):
    """An injected transient IO failure (retry-able by construction)."""


class WorkerCrashed(RuntimeError):
    """An injected worker crash (the unit of work died mid-flight)."""


class FaultSpec:
    """How one site misbehaves: kind, probability, budget, targeting."""

    __slots__ = ("kind", "rate", "max_injections", "stall_seconds", "match")

    def __init__(
        self,
        kind: str,
        rate: float = 1.0,
        max_injections: int = 64,
        stall_seconds: float = 0.005,
        match: Optional[str] = None,
    ) -> None:
        if kind not in KINDS:
            raise FaultError(f"unknown fault kind {kind!r} (known: {KINDS})")
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1]: {rate}")
        if max_injections < 0:
            raise FaultError(f"max_injections must be >= 0: {max_injections}")
        self.kind = kind
        self.rate = float(rate)
        #: Per-plan-instance safety cap, not part of the decision
        #: function: a fresh copy of the plan (e.g. in a new worker)
        #: starts with a fresh budget.
        self.max_injections = int(max_injections)
        self.stall_seconds = float(stall_seconds)
        #: Only keys containing this substring are eligible (lets tests
        #: target one chunk or one attempt deterministically).
        self.match = match

    def __getstate__(self):
        return (self.kind, self.rate, self.max_injections,
                self.stall_seconds, self.match)

    def __setstate__(self, state) -> None:
        (self.kind, self.rate, self.max_injections,
         self.stall_seconds, self.match) = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSpec):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:
        return (
            f"FaultSpec({self.kind!r}, rate={self.rate}, "
            f"max={self.max_injections}, match={self.match!r})"
        )


class FaultPlan:
    """Deterministic per-site fault decisions derived from one seed."""

    def __init__(
        self,
        seed: int,
        sites: Optional[Dict[str, FaultSpec]] = None,
        enabled: bool = True,
    ) -> None:
        self.seed = int(seed)
        self.sites: Dict[str, FaultSpec] = dict(sites or {})
        for site in self.sites:
            if site not in SITES:
                raise FaultError(
                    f"unknown injection site {site!r} "
                    f"(known: {', '.join(sorted(SITES))})"
                )
        self.enabled = bool(enabled)
        #: Injections fired in *this process*, in firing order.
        self.events: List[Tuple[str, str, str]] = []
        #: Events already mirrored into SweepMetrics (see
        #: :func:`sync_fault_metrics`).
        self.reported = 0

    # The plan crosses process boundaries with the executor arguments;
    # only the decision inputs travel — each process logs its own
    # injections and starts with a fresh budget.
    def __getstate__(self):
        return {"seed": self.seed, "sites": self.sites, "enabled": self.enabled}

    def __setstate__(self, state) -> None:
        self.seed = state["seed"]
        self.sites = state["sites"]
        self.enabled = state["enabled"]
        self.events = []
        self.reported = 0

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def injected(self, site: Optional[str] = None) -> int:
        """Injections fired in this process (optionally for one site)."""
        if site is None:
            return len(self.events)
        return sum(1 for fired_site, _, _ in self.events if fired_site == site)

    def decide(self, site: str, key: str = "") -> Optional[str]:
        """The fault kind to inject at ``(site, key)``, or ``None``.

        Pure in ``(seed, site, key)`` apart from the per-instance
        injection budget, so any two processes holding the same plan
        agree on every decision.
        """
        if not self.enabled:
            return None
        spec = self.sites.get(site)
        if spec is None:
            return None
        if spec.match is not None and spec.match not in key:
            return None
        if self.injected(site) >= spec.max_injections:
            return None
        if spec.rate < 1.0:
            roll = derive_rng(self.seed, "faults", site, key).random()
            if roll >= spec.rate:
                return None
        return spec.kind

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _record(self, site: str, key: str, kind: str) -> None:
        self.events.append((site, key, kind))

    def check(self, site: str, key: str = "") -> None:
        """Fire the site's fault, if the plan schedules one here.

        Raising kinds raise; :data:`STALL` sleeps; :data:`KILL` exits
        the process when it is a pool worker and degrades to
        :data:`CRASH` in the driving process.  :data:`CORRUPT` is only
        meaningful for byte streams — route those through
        :meth:`corrupt_bytes` instead.
        """
        kind = self.decide(site, key)
        if kind is None:
            return
        self._record(site, key, kind)
        if kind == STALL:
            time.sleep(self.sites[site].stall_seconds)
            return
        if kind == IO_ERROR:
            raise TransientIOError(f"injected transient IO error at {site} [{key}]")
        if kind == KILL and _IN_WORKER:
            os._exit(73)
        if kind in (CRASH, KILL):
            raise WorkerCrashed(f"injected worker crash at {site} [{key}]")
        raise FaultError(
            f"site {site} schedules {kind!r}, which needs corrupt_bytes()"
        )

    def corrupt_bytes(self, site: str, key: str, data: bytes) -> bytes:
        """Return ``data``, bit-flipped if the plan corrupts this site.

        Non-:data:`CORRUPT` kinds configured on a byte site behave as
        in :meth:`check` (raise or stall) so specs compose freely.
        """
        kind = self.decide(site, key)
        if kind is None or not data:
            return data
        if kind != CORRUPT:
            self.check(site, key)
            return data
        self._record(site, key, kind)
        position = int(
            derive_rng(self.seed, "faults", site, key, "position").integers(len(data))
        )
        mutated = bytearray(data)
        mutated[position] ^= 1 << int(
            derive_rng(self.seed, "faults", site, key, "bit").integers(8)
        )
        return bytes(mutated)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, sites={sorted(self.sites)}, "
            f"injected={len(self.events)})"
        )


def default_plan(seed: int, rate: float = 0.05) -> FaultPlan:
    """The fault mix ``--fault-seed`` enables: every recoverable site.

    All sites self-heal in-path (retry, read-back verify, pool
    degradation), so a pipeline run under the default plan converges to
    output bit-identical to a fault-free run.
    """
    return FaultPlan(
        seed,
        {
            "sweep.chunk": FaultSpec(CRASH, rate),
            "sweep.pool": FaultSpec(CRASH, rate / 4.0, max_injections=2),
            "shard.write": FaultSpec(IO_ERROR, rate),
            "shard.write.bytes": FaultSpec(CORRUPT, rate),
            "manifest.write": FaultSpec(IO_ERROR, rate),
            "manifest.write.bytes": FaultSpec(CORRUPT, rate),
            "shard.read": FaultSpec(IO_ERROR, rate),
            # Live follow sites: every one self-heals in-path too (the
            # engine retries the day under a fresh key, the journal
            # write read-back-verifies, the detector re-runs), so a
            # follow run under the default plan converges to the same
            # archive digest and event sequence as a fault-free run.
            "live.ingest_day": FaultSpec(IO_ERROR, rate),
            "live.journal_write": FaultSpec(IO_ERROR, rate),
            "live.journal_write.bytes": FaultSpec(CORRUPT, rate),
            "live.detector": FaultSpec(IO_ERROR, rate),
            # Aborted SSE frames are recovered by the *client*
            # (Last-Event-ID reconnect), not in-path, so the budget is
            # bounded the same way service.response_write's is.
            "live.sse_write": FaultSpec(IO_ERROR, rate, max_injections=2),
        },
    )


def service_plan(
    seed: int,
    rate: float = 0.05,
    stall_seconds: float = 0.05,
    match: Optional[str] = None,
    crash_match: Optional[str] = None,
) -> FaultPlan:
    """The fault mix ``repro serve --fault-seed`` enables.

    Only the service-layer sites fire: computations stall, archive day
    reads fail with transient IO errors that the serving path (unlike
    the build path) does *not* retry internally — they surface as
    classified failures so the circuit breaker and the client retry
    policy do the recovering — and a bounded number of response writes
    abort mid-flight.  ``match`` restricts every site to keys containing
    the substring (a date, a spec fragment, a path), which is how the
    chaos suite targets one query deterministically.

    ``crash_match`` additionally arms ``service.worker_crash`` — a hard
    :data:`KILL` of the serving worker process — against exactly one
    matching query.  It is opt-in and never part of the default mix:
    every other site self-heals inside the worker, but a kill needs the
    multi-process supervisor to restart the process, so arming it under
    a single-process ``repro serve`` would take the whole server down.
    """
    sites = {
        "service.compute": FaultSpec(
            STALL, rate, stall_seconds=stall_seconds, match=match
        ),
        "service.archive_read": FaultSpec(IO_ERROR, rate, match=match),
        "service.response_write": FaultSpec(
            IO_ERROR, rate, max_injections=2, match=match
        ),
    }
    if crash_match is not None:
        sites["service.worker_crash"] = FaultSpec(
            KILL, 1.0, max_injections=1, match=crash_match
        )
    return FaultPlan(seed, sites)


def sync_fault_metrics(plan: Optional[FaultPlan], metrics) -> None:
    """Mirror this process's new injections into ``metrics``.

    Called at the end of engine runs and archive builds; counts only
    the driving process (worker-side injections surface here as the
    chunk retries and pool failures they cause).
    """
    if plan is None or metrics is None:
        return
    fresh = plan.injected() - plan.reported
    if fresh > 0:
        metrics.record_recovery("faults_injected", fresh)
        plan.reported = plan.injected()
