"""Declarative counterfactual scenarios (see :mod:`repro.scenario.spec`).

The public surface:

* :class:`ScenarioSpec` — a seed-pure, JSON round-trippable description
  of one world; :meth:`ScenarioSpec.resolve` turns a library id or a
  spec-file path into a spec, :meth:`ScenarioSpec.compile` into the
  :class:`~repro.sim.conflict.ConflictScenarioConfig` the simulator and
  archive fingerprints consume.
* The shipped library (:data:`LIBRARY`, :func:`get_scenario`,
  :func:`scenario_ids`): ``baseline``, ``no-invasion``, ``depeering``,
  ``ixp-disconnect``, ``sanctions-early``.
* Digest helpers (:func:`world_digest`, :func:`archive_digest`) that
  reduce the engine's byte-identity contracts to comparable hashes.
"""

from .digest import archive_digest, world_digest
from .library import LIBRARY, get_scenario, register_scenario, scenario_ids
from .spec import FlowSpec, ProviderExit, PulseSpec, ScenarioSpec, WaveSpec

__all__ = [
    "ScenarioSpec",
    "ProviderExit",
    "FlowSpec",
    "PulseSpec",
    "WaveSpec",
    "LIBRARY",
    "get_scenario",
    "register_scenario",
    "scenario_ids",
    "world_digest",
    "archive_digest",
]
