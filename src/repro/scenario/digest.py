"""Deterministic digests over worlds and archives.

The scenario engine's contract is byte-level: the same spec builds the
same world in any process, and the baseline spec builds archives
byte-identical to the pre-scenario-engine path.  These helpers reduce
both claims to comparable hex strings — a world digest hashes canonical
shard encodings of probe-day snapshots (the exact bytes an archive
build would persist), and an archive digest hashes the on-disk manifest
and every shard file.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import os
from typing import Optional, Sequence

from ..archive.kernel import summarize_snapshot
from ..archive.manifest import MANIFEST_NAME
from ..archive.shard import DayShardRecord, encode_shard
from ..errors import ArchiveError, ScenarioError
from ..measurement.fast import FastCollector
from ..timeline import DateLike, as_date

__all__ = ["PROBE_DATES", "world_digest", "archive_digest"]

#: Default probe days: study start, conflict eve, mid-conflict, study end.
PROBE_DATES = (
    _dt.date(2017, 6, 18),
    _dt.date(2022, 2, 22),
    _dt.date(2022, 3, 15),
    _dt.date(2022, 5, 25),
)


def world_digest(
    world,
    dates: Sequence[DateLike] = PROBE_DATES,
    collector: Optional[FastCollector] = None,
) -> str:
    """SHA-256 over canonical shard encodings of ``world`` on ``dates``.

    Two worlds share a digest iff an archive built from them would share
    shard bytes for the probe days: the current (v3) encoding, columns
    plus the pre-aggregated :class:`~repro.archive.summary.DaySummary`
    — which is where scenario deltas that only move the sanctions
    timeline (``listed_count``) show up.
    """
    if not dates:
        raise ScenarioError("world_digest needs at least one probe date")
    collector = collector or FastCollector(world)
    hasher = hashlib.sha256()
    for date in dates:
        snapshot = collector.collect(as_date(date))
        record = DayShardRecord.from_snapshot(snapshot)
        record.summary = summarize_snapshot(snapshot)
        blob, _crc = encode_shard(record)
        hasher.update(blob)
    return hasher.hexdigest()


def archive_digest(path: str) -> str:
    """SHA-256 over an archive directory's manifest and shard bytes.

    Files are hashed in sorted-name order with name framing, so two
    archives share a digest iff they are file-for-file byte-identical.
    """
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise ArchiveError(f"no archive manifest at {manifest_path}")
    hasher = hashlib.sha256()
    names = sorted(
        name for name in os.listdir(path)
        if name == MANIFEST_NAME or name.endswith(".shard")
    )
    for name in names:
        hasher.update(name.encode("utf-8") + b"\0")
        with open(os.path.join(path, name), "rb") as handle:
            hasher.update(handle.read())
    return hasher.hexdigest()
