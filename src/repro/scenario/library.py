"""The shipped scenario library.

Every entry is a :class:`~repro.scenario.spec.ScenarioSpec` registered
under its stable canonical id — the id the archive fingerprint embeds,
the query API's ``scenario`` dimension names, and ``repro scenario
list|show|sweep`` exposes.  The counterfactuals are drawn from the
related work PAPERS.md names: operator de-peering and
digital-sovereignty actions (arXiv 2305.17666) and the RIPE NCC / IXP
disconnection debate (arXiv 2211.06123).

Registering a new scenario is additive: ids are append-only, and a
spec's world block must never change once archives have been built
under its id (change the world, mint a new id — the spec digest in the
fingerprint exists to catch exactly this drift).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ScenarioError
from .spec import FlowSpec, ProviderExit, ScenarioSpec, WaveSpec

__all__ = ["LIBRARY", "get_scenario", "scenario_ids", "register_scenario"]


def _build_library() -> Dict[str, ScenarioSpec]:
    specs = [
        ScenarioSpec(
            name="baseline",
            title="The historical timeline",
            description=(
                "The calibrated reproduction of the paper: the February "
                "2022 invasion, the provider exits of Sections 3.2-3.4, "
                "the sanctions waves, and the WebPKI shifts of Section 4. "
                "Compiles to the identity config — archives built under "
                "this id are byte-identical to pre-scenario-engine ones."
            ),
        ),
        ScenarioSpec(
            name="no-invasion",
            title="The invasion never happens",
            description=(
                "A pure counterfactual control: pre-conflict drifts "
                "(Figure 2/3's TLD-dependency externalisation) continue "
                "undisturbed, no provider exits, no sanctions "
                "designations, no CA pull-outs, no Russian state CA. "
                "Diffing any experiment against this world isolates the "
                "conflict's total effect."
            ),
            conflict=False,
        ),
        ScenarioSpec(
            name="depeering",
            title="Escalated operator de-peering",
            description=(
                "The de-peering debate of arXiv 2305.17666 escalates: "
                "every historical exit runs at 1.6x volume, and the two "
                "big Western operators that historically stayed "
                "(Cloudflare's 'business as usual', GoDaddy's partial "
                "wind-down) pull out of .ru entirely in early April."
            ),
            migration_intensity=1.6,
            provider_exits=[
                ProviderExit(
                    "cloudflare", "2022-04-04",
                    dns_refuge="rucenter_dns", hosting_refuge="timeweb_h",
                    dns_pp=2.4, hosting_pp=4.8, duration_days=28,
                ),
                ProviderExit(
                    "godaddy", "2022-04-04",
                    dns_refuge="regru_dns", hosting_refuge="ruhost3_h",
                    dns_pp=0.6, hosting_pp=2.2, duration_days=28,
                ),
            ],
            notes=[
                ("2022-04-04", "Cloudflare",
                 "de-peers from Russian networks and drops .ru customers"),
                ("2022-04-04", "GoDaddy",
                 "terminates remaining Russian DNS and hosting service"),
            ],
        ),
        ScenarioSpec(
            name="ixp-disconnect",
            title="IXP disconnection and routing isolation",
            description=(
                "The infrastructure-sanction scenario of arXiv 2211.06123: "
                "instead of renumbering, the Netnod prefix is transferred "
                "and geolocation snapshots lag a week; the ProDNS anycast "
                "mesh withdraws from Russian-facing service faster and "
                "more completely than history."
            ),
            netnod_mode="transfer",
            geo_lag_days=7,
            migration_intensity=1.25,
            extra_flows=[
                FlowSpec(
                    "dns", ["prodns_anycast"], "prodns_ru", 4.5,
                    "2022-03-05", "2022-03-19",
                ),
            ],
            notes=[
                ("2022-03-03", "IXPs",
                 "exchange-point disconnections force prefix transfers; "
                 "geolocation lags by a week"),
                ("2022-03-05", "ProDNS",
                 "anycast mesh withdraws from Russian-facing service"),
            ],
        ),
        ScenarioSpec(
            name="sanctions-early",
            title="Sanctions land three weeks earlier",
            description=(
                "The designation waves are advanced ~three weeks and "
                "front-loaded, probing how much of the observed "
                "repatriation is sanctions-driven rather than "
                "exit-driven."
            ),
            sanction_waves=[
                WaveSpec("2022-02-24", 80),
                WaveSpec("2022-03-04", 15),
                WaveSpec("2022-03-16", 12),
            ],
            notes=[
                ("2022-02-24", "sanctions",
                 "coordinated designations land on invasion day"),
            ],
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Canonical id -> spec.  Treat as append-only.
LIBRARY: Dict[str, ScenarioSpec] = _build_library()


def scenario_ids() -> List[str]:
    """All library ids, baseline first, then alphabetical."""
    rest = sorted(name for name in LIBRARY if name != "baseline")
    return ["baseline"] + rest


def get_scenario(name: str) -> ScenarioSpec:
    """Look one spec up by canonical id."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; shipped: {', '.join(scenario_ids())} "
            "(or pass a path to a spec JSON file)"
        ) from None


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry (tests, user libraries)."""
    if spec.name in LIBRARY and LIBRARY[spec.name] != spec:
        raise ScenarioError(
            f"scenario id {spec.name!r} is already registered "
            "with a different spec; ids are append-only"
        )
    LIBRARY[spec.name] = spec
    return spec
