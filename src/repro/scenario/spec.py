"""Declarative, seed-pure scenario specifications.

A :class:`ScenarioSpec` is a plain-data description of one world: the
config knobs (scale, seed, netnod handling, sanctioned-domain census)
plus a ``world`` block of counterfactual deltas (conflict on/off,
migration intensity, provider exits, extra flows/pulses, sanction
waves).  Specs are JSON round-trippable, canonically ordered, and carry
no randomness of their own — :meth:`ScenarioSpec.compile` folds them
into a :class:`~repro.sim.conflict.ConflictScenarioConfig` whose RNG
streams are derived from the seed exactly as before, so the same spec
builds bit-identical worlds in any process.

This mirrors what :class:`repro.faults.FaultPlan` did for fault
injection: intent lives in a declarative object, mechanics stay in the
simulator.  The ``baseline`` spec compiles to a config with no variant
at all, which is the byte-identity contract the archive digest tests
pin.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..sim.conflict import ConflictScenarioConfig
from ..sim.events import Field
from ..sim.flows import Flow, Pulse
from ..sim.variant import ScenarioVariant
from ..timeline import as_date

__all__ = ["ScenarioSpec", "ProviderExit", "FlowSpec", "PulseSpec", "WaveSpec"]

#: Canonical scenario ids: kebab-case, led by a letter or digit.
_ID_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]{0,63}$")

_FIELD_NAMES = {"dns": Field.DNS, "hosting": Field.HOSTING}

#: Config knobs a spec may carry (subset of ConflictScenarioConfig).
_CONFIG_KEYS = (
    "scale", "seed", "geo_lag_days", "netnod_mode", "with_pki",
    "sanctioned_domain_count",
)


def _iso(value, field: str) -> str:
    try:
        return as_date(value).isoformat()
    except Exception as exc:
        raise ScenarioError(f"bad {field!r} date {value!r}: {exc}") from exc


def _require_keys(payload: Dict, known: Sequence[str], where: str) -> None:
    if not isinstance(payload, dict):
        raise ScenarioError(f"{where} must be an object, got {type(payload).__name__}")
    unknown = set(payload) - set(known)
    if unknown:
        raise ScenarioError(f"unknown {where} field(s): {', '.join(sorted(unknown))}")


class FlowSpec:
    """Declarative form of one gradual :class:`~repro.sim.flows.Flow`."""

    __slots__ = ("field", "sources", "dest", "total_pp", "start", "end")

    def __init__(self, field, sources, dest, total_pp, start, end) -> None:
        if field not in _FIELD_NAMES:
            raise ScenarioError(f"flow field must be dns/hosting, got {field!r}")
        self.field = field
        self.sources = tuple(str(source) for source in sources)
        self.dest = str(dest)
        self.total_pp = float(total_pp)
        self.start = _iso(start, "flow start")
        self.end = _iso(end, "flow end")
        if not self.sources:
            raise ScenarioError("flow needs at least one source plan")
        if self.total_pp <= 0:
            raise ScenarioError(f"flow total_pp must be positive: {self.total_pp}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "field": self.field, "sources": list(self.sources),
            "dest": self.dest, "total_pp": self.total_pp,
            "start": self.start, "end": self.end,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowSpec":
        _require_keys(payload, ("field", "sources", "dest", "total_pp", "start", "end"),
                      "flow")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ScenarioError(f"malformed flow spec: {exc}") from exc

    def resolve(self) -> Flow:
        return Flow(
            _FIELD_NAMES[self.field], self.sources, self.dest,
            self.total_pp, self.start, self.end,
        )


class PulseSpec:
    """Declarative form of one instantaneous :class:`~repro.sim.flows.Pulse`."""

    __slots__ = ("field", "sources", "dest", "day", "fraction", "count")

    def __init__(self, field, sources, dest, day, fraction=None, count=None) -> None:
        if field not in _FIELD_NAMES:
            raise ScenarioError(f"pulse field must be dns/hosting, got {field!r}")
        self.field = field
        self.sources = tuple(str(source) for source in sources)
        self.dest = str(dest)
        self.day = _iso(day, "pulse day")
        self.fraction = float(fraction) if fraction is not None else None
        self.count = int(count) if count is not None else None
        if not self.sources:
            raise ScenarioError("pulse needs at least one source plan")
        if (self.fraction is None) == (self.count is None):
            raise ScenarioError("pulse needs exactly one of fraction/count")

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "field": self.field, "sources": list(self.sources),
            "dest": self.dest, "day": self.day,
        }
        if self.fraction is not None:
            payload["fraction"] = self.fraction
        if self.count is not None:
            payload["count"] = self.count
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PulseSpec":
        _require_keys(payload, ("field", "sources", "dest", "day", "fraction", "count"),
                      "pulse")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ScenarioError(f"malformed pulse spec: {exc}") from exc

    def resolve(self) -> Pulse:
        return Pulse(
            _FIELD_NAMES[self.field], self.sources, self.dest, self.day,
            fraction=self.fraction, count=self.count,
        )


class ProviderExit:
    """One provider leaving the Russian market on a date.

    Compiles to a DNS flow (``<provider>_dns`` plan to ``dns_refuge``, if
    the provider has a single-provider DNS plan) and a hosting flow
    (``<provider>_h`` to ``hosting_refuge``), each moving ``*_pp``
    percentage points of the population over ``duration_days``.
    """

    __slots__ = (
        "provider", "date", "dns_refuge", "hosting_refuge",
        "dns_pp", "hosting_pp", "duration_days",
    )

    def __init__(
        self,
        provider: str,
        date,
        dns_refuge: str = "rucenter_dns",
        hosting_refuge: str = "timeweb_h",
        dns_pp: float = 1.0,
        hosting_pp: float = 1.0,
        duration_days: int = 21,
    ) -> None:
        self.provider = str(provider)
        self.date = _iso(date, "exit date")
        self.dns_refuge = str(dns_refuge)
        self.hosting_refuge = str(hosting_refuge)
        self.dns_pp = float(dns_pp)
        self.hosting_pp = float(hosting_pp)
        self.duration_days = int(duration_days)
        if self.duration_days < 1:
            raise ScenarioError(f"exit duration must be >= 1 day: {duration_days}")
        if self.dns_pp < 0 or self.hosting_pp < 0:
            raise ScenarioError("exit pp values must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        return {
            "provider": self.provider, "date": self.date,
            "dns_refuge": self.dns_refuge, "hosting_refuge": self.hosting_refuge,
            "dns_pp": self.dns_pp, "hosting_pp": self.hosting_pp,
            "duration_days": self.duration_days,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProviderExit":
        _require_keys(
            payload,
            ("provider", "date", "dns_refuge", "hosting_refuge",
             "dns_pp", "hosting_pp", "duration_days"),
            "provider exit",
        )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ScenarioError(f"malformed provider exit: {exc}") from exc

    def resolve(self, dns_plan_keys, hosting_plan_keys) -> Tuple[List[Flow], List[Pulse]]:
        start = as_date(self.date)
        end = start + _dt.timedelta(days=self.duration_days)
        flows: List[Flow] = []
        dns_plan = f"{self.provider}_dns"
        if self.dns_pp > 0 and dns_plan in dns_plan_keys:
            flows.append(Flow(Field.DNS, [dns_plan], self.dns_refuge,
                              self.dns_pp, start, end))
        hosting_plan = f"{self.provider}_h"
        if self.hosting_pp > 0 and hosting_plan in hosting_plan_keys:
            flows.append(Flow(Field.HOSTING, [hosting_plan], self.hosting_refuge,
                              self.hosting_pp, start, end))
        if not flows:
            raise ScenarioError(
                f"provider exit {self.provider!r} resolves to no flows "
                f"(no {dns_plan!r}/{hosting_plan!r} plan, or zero pp)"
            )
        return flows, []


class WaveSpec:
    """One sanctions designation wave: a date and a domain count."""

    __slots__ = ("date", "count")

    def __init__(self, date, count) -> None:
        self.date = _iso(date, "wave date")
        self.count = int(count)
        if self.count < 1:
            raise ScenarioError(f"wave count must be >= 1: {count}")

    def as_dict(self) -> List[object]:
        return [self.date, self.count]

    @classmethod
    def from_item(cls, payload) -> "WaveSpec":
        if isinstance(payload, dict):
            _require_keys(payload, ("date", "count"), "sanction wave")
            return cls(payload.get("date"), payload.get("count", 0))
        try:
            date, count = payload
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"sanction wave must be [date, count], got {payload!r}"
            ) from exc
        return cls(date, count)


class ScenarioSpec:
    """One named, declarative counterfactual scenario.

    ``name`` is the canonical id the archive fingerprint, the query
    API's ``scenario`` dimension, and the CLI all use.  The reserved
    name ``baseline`` may only describe the delta-free historical world.
    """

    __slots__ = (
        "name", "title", "description",
        "scale", "seed", "geo_lag_days", "netnod_mode", "with_pki",
        "sanctioned_domain_count",
        "conflict", "migration_intensity", "provider_exits",
        "extra_flows", "extra_pulses", "sanction_waves", "notes",
    )

    def __init__(
        self,
        name: str,
        title: str = "",
        description: str = "",
        scale: float = 250.0,
        seed: int = 20220224,
        geo_lag_days: int = 0,
        netnod_mode: str = "renumber",
        with_pki: bool = True,
        sanctioned_domain_count: int = 107,
        conflict: bool = True,
        migration_intensity: float = 1.0,
        provider_exits: Sequence[ProviderExit] = (),
        extra_flows: Sequence[FlowSpec] = (),
        extra_pulses: Sequence[PulseSpec] = (),
        sanction_waves: Optional[Sequence[WaveSpec]] = None,
        notes: Sequence[Tuple[str, str, str]] = (),
    ) -> None:
        if not _ID_PATTERN.match(str(name)):
            raise ScenarioError(
                f"scenario name {name!r} is not a canonical id "
                "(kebab-case: [a-z0-9][a-z0-9-]*, max 64 chars)"
            )
        self.name = str(name)
        self.title = str(title)
        self.description = str(description)
        self.scale = float(scale)
        self.seed = int(seed)
        self.geo_lag_days = int(geo_lag_days)
        self.netnod_mode = str(netnod_mode)
        self.with_pki = bool(with_pki)
        self.sanctioned_domain_count = int(sanctioned_domain_count)
        self.conflict = bool(conflict)
        self.migration_intensity = float(migration_intensity)
        self.provider_exits = tuple(provider_exits)
        self.extra_flows = tuple(extra_flows)
        self.extra_pulses = tuple(extra_pulses)
        self.sanction_waves = (
            None if sanction_waves is None else tuple(sanction_waves)
        )
        self.notes = tuple(
            (_iso(date, "note date"), str(actor), str(text))
            for date, actor, text in notes
        )
        if self.migration_intensity <= 0:
            raise ScenarioError(
                f"migration_intensity must be positive: {migration_intensity}"
            )
        if self.name == "baseline" and self.has_deltas():
            # The one reserved name: "baseline" is the identity scenario
            # whose archives must stay byte-identical to historical ones,
            # so it cannot carry world deltas under that name.
            raise ScenarioError(
                "the 'baseline' scenario cannot carry world deltas; "
                "give a counterfactual its own name"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def has_deltas(self) -> bool:
        """True when the world block departs from the calibrated history."""
        return (
            not self.conflict
            or self.migration_intensity != 1.0
            or bool(self.provider_exits)
            or bool(self.extra_flows)
            or bool(self.extra_pulses)
            or self.sanction_waves is not None
        )

    def to_dict(self) -> Dict[str, object]:
        """Canonical nested dict (every key present, stable order)."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "config": {
                "scale": self.scale,
                "seed": self.seed,
                "geo_lag_days": self.geo_lag_days,
                "netnod_mode": self.netnod_mode,
                "with_pki": self.with_pki,
                "sanctioned_domain_count": self.sanctioned_domain_count,
            },
            "world": {
                "conflict": self.conflict,
                "migration_intensity": self.migration_intensity,
                "provider_exits": [exit.as_dict() for exit in self.provider_exits],
                "extra_flows": [flow.as_dict() for flow in self.extra_flows],
                "extra_pulses": [pulse.as_dict() for pulse in self.extra_pulses],
                "sanction_waves": (
                    None if self.sanction_waves is None
                    else [wave.as_dict() for wave in self.sanction_waves]
                ),
                "notes": [list(note) for note in self.notes],
            },
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable identity of the *world deltas* (config knobs excluded).

        Two specs that build the same world at different scales share
        runtime parameters but not worlds, so scale/seed/etc. live in
        the fingerprint's own fields; the digest covers only what the
        declarative world block adds on top.
        """
        payload = self.to_dict()["world"]
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        _require_keys(payload, ("name", "title", "description", "config", "world"),
                      "scenario spec")
        if "name" not in payload:
            raise ScenarioError("scenario spec needs a 'name'")
        config = dict(payload.get("config") or {})
        _require_keys(config, _CONFIG_KEYS, "scenario config")
        world = dict(payload.get("world") or {})
        _require_keys(
            world,
            ("conflict", "migration_intensity", "provider_exits",
             "extra_flows", "extra_pulses", "sanction_waves", "notes"),
            "scenario world",
        )
        waves = world.get("sanction_waves")
        return cls(
            name=payload["name"],
            title=payload.get("title", ""),
            description=payload.get("description", ""),
            **config,
            conflict=world.get("conflict", True),
            migration_intensity=world.get("migration_intensity", 1.0),
            provider_exits=[
                ProviderExit.from_dict(item)
                for item in world.get("provider_exits", ())
            ],
            extra_flows=[
                FlowSpec.from_dict(item) for item in world.get("extra_flows", ())
            ],
            extra_pulses=[
                PulseSpec.from_dict(item) for item in world.get("extra_pulses", ())
            ],
            sanction_waves=(
                None if waves is None
                else [WaveSpec.from_item(item) for item in waves]
            ),
            notes=world.get("notes", ()),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(f"scenario spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Read a spec from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ScenarioError(f"cannot read scenario spec {path}: {exc}") from exc
        return cls.from_json(text)

    @classmethod
    def resolve(cls, name_or_path: str) -> "ScenarioSpec":
        """The one entry point call sites use: library id or JSON file path.

        A canonical id resolves through the shipped library; anything
        with a path separator or ``.json`` suffix loads from disk.
        """
        text = str(name_or_path)
        if "/" in text or text.endswith(".json"):
            return cls.load(text)
        from .library import get_scenario

        return get_scenario(text)

    def with_config(self, **overrides) -> "ScenarioSpec":
        """A copy with runtime config knobs replaced (scale, seed, ...)."""
        unknown = set(overrides) - set(_CONFIG_KEYS)
        if unknown:
            raise ScenarioError(
                f"unknown config override(s): {', '.join(sorted(unknown))}"
            )
        payload = self.to_dict()
        payload["config"].update(
            {key: value for key, value in overrides.items() if value is not None}
        )
        return type(self).from_dict(payload)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def compile(self) -> ConflictScenarioConfig:
        """Fold the spec into a :class:`ConflictScenarioConfig`.

        The baseline spec compiles with ``variant=None`` — the identical
        config an ad-hoc ``ConflictScenarioConfig(...)`` call produced
        before the scenario engine, which is the byte-identity contract.
        """
        variant = self._variant()
        return ConflictScenarioConfig(
            scale=self.scale,
            seed=self.seed,
            geo_lag_days=self.geo_lag_days,
            netnod_mode=self.netnod_mode,
            with_pki=self.with_pki,
            sanctioned_domain_count=self.sanctioned_domain_count,
            variant=variant,
            scenario_id=self.name,
            spec_digest=self.digest() if self.name != "baseline" else None,
            from_spec=True,
        )

    def build(self):
        """Compile and build the world (convenience for library callers)."""
        from ..sim.conflict import build_scenario

        return build_scenario(self.compile())

    def _variant(self) -> Optional[ScenarioVariant]:
        if not self.has_deltas():
            return None
        extra_flows: List[Flow] = []
        extra_pulses: List[Pulse] = []
        if self.provider_exits:
            dns_keys, hosting_keys = _plan_keys()
            for exit in self.provider_exits:
                flows, pulses = exit.resolve(dns_keys, hosting_keys)
                extra_flows.extend(flows)
                extra_pulses.extend(pulses)
        extra_flows.extend(flow.resolve() for flow in self.extra_flows)
        extra_pulses.extend(pulse.resolve() for pulse in self.extra_pulses)
        waves = (
            None if self.sanction_waves is None
            else [(as_date(wave.date), wave.count) for wave in self.sanction_waves]
        )
        notes = [(as_date(date), actor, text) for date, actor, text in self.notes]
        return ScenarioVariant(
            conflict=self.conflict,
            intensity=self.migration_intensity,
            extra_flows=extra_flows,
            extra_pulses=extra_pulses,
            sanction_waves=waves,
            notes=notes,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())

    def __repr__(self) -> str:
        return f"ScenarioSpec({self.name!r}, digest={self.digest()})"


_PLAN_KEYS: Optional[Tuple[frozenset, frozenset]] = None


def _plan_keys() -> Tuple[frozenset, frozenset]:
    """The standard plan-table keys, for fail-fast exit validation."""
    global _PLAN_KEYS
    if _PLAN_KEYS is None:
        from ..providers.catalog import standard_catalog
        from ..sim.conflict import _dns_plans, _hosting_plans

        catalog = standard_catalog()
        _PLAN_KEYS = (
            frozenset(plan.key for plan in _dns_plans(catalog).plans()),
            frozenset(plan.key for plan in _hosting_plans(catalog).plans()),
        )
    return _PLAN_KEYS
