"""Sanctions substrate: designated entities and merged list queries."""

from .entity import Designation, SanctionedEntity, SanctionsAuthority
from .lists import SanctionsList

__all__ = [
    "Designation",
    "SanctionedEntity",
    "SanctionsAuthority",
    "SanctionsList",
]
