"""Sanctioned entities and their designations."""

from __future__ import annotations

import datetime as _dt
import enum
from typing import List, Sequence

from ..dns.name import DomainName
from ..timeline import DateLike, as_date

__all__ = ["SanctionsAuthority", "Designation", "SanctionedEntity"]


class SanctionsAuthority(enum.Enum):
    """Who issued the designation."""

    US_OFAC_SDN = "US OFAC SDN"
    UK_SANCTIONS_LIST = "UK Sanctions List"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Designation:
    """One listing action by one authority."""

    __slots__ = ("authority", "listed_on", "program")

    def __init__(
        self,
        authority: SanctionsAuthority,
        listed_on: DateLike,
        program: str = "RUSSIA-EO14024",
    ) -> None:
        self.authority = authority
        self.listed_on = as_date(listed_on)
        self.program = program

    def __repr__(self) -> str:
        return f"Designation({self.authority} {self.listed_on})"


class SanctionedEntity:
    """A sanctioned organisation and the domains attributed to it."""

    __slots__ = ("name", "domains", "designations")

    def __init__(
        self,
        name: str,
        domains: Sequence[DomainName],
        designations: Sequence[Designation],
    ) -> None:
        self.name = name
        self.domains = tuple(domains)
        self.designations = tuple(designations)

    def listed_on(self) -> _dt.date:
        """Earliest designation date across authorities."""
        return min(d.listed_on for d in self.designations)

    def is_listed(self, date: DateLike) -> bool:
        """True when at least one designation is in force on ``date``."""
        return any(d.listed_on <= as_date(date) for d in self.designations)

    def authorities(self) -> List[SanctionsAuthority]:
        """All authorities that listed this entity."""
        return sorted({d.authority for d in self.designations}, key=lambda a: a.value)

    def __repr__(self) -> str:
        return f"SanctionedEntity({self.name!r}, {len(self.domains)} domains)"
