"""Sanctions list assembly and queries.

The paper labels 107 unique domains as sanctioned based on the US OFAC SDN
and UK sanctions lists; designations arrived in waves through spring 2022,
so "the sanctioned set" is date-dependent.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..dns.name import DomainName
from ..errors import ScenarioError
from ..timeline import DateLike, as_date
from .entity import Designation, SanctionedEntity, SanctionsAuthority

__all__ = ["SanctionsList"]


class SanctionsList:
    """The merged view over all sanctioning authorities."""

    def __init__(self, entities: Sequence[SanctionedEntity]) -> None:
        self._entities = list(entities)
        self._by_domain: Dict[DomainName, SanctionedEntity] = {}
        for entity in self._entities:
            for domain in entity.domains:
                if domain in self._by_domain:
                    raise ScenarioError(
                        f"domain {domain} attributed to two sanctioned entities"
                    )
                self._by_domain[domain] = entity

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[SanctionedEntity]:
        return iter(self._entities)

    def entities(self) -> List[SanctionedEntity]:
        """All entities, listing order preserved."""
        return list(self._entities)

    def all_domains(self) -> List[DomainName]:
        """Every sanctioned domain regardless of listing date (paper: 107)."""
        return sorted(self._by_domain)

    def domains_listed_as_of(self, date: DateLike) -> List[DomainName]:
        """Domains whose entity was designated on or before ``date``."""
        boundary = as_date(date)
        return sorted(
            domain
            for domain, entity in self._by_domain.items()
            if entity.listed_on() <= boundary
        )

    def is_sanctioned(
        self, domain: DomainName, date: Optional[DateLike] = None
    ) -> bool:
        """True when ``domain`` is attributed to a (listed) entity."""
        entity = self._by_domain.get(domain)
        if entity is None:
            return False
        if date is None:
            return True
        return entity.is_listed(date)

    def entity_for(self, domain: DomainName) -> Optional[SanctionedEntity]:
        """The entity a domain is attributed to, if any."""
        return self._by_domain.get(domain)

    def listing_dates(self) -> List[_dt.date]:
        """Distinct designation dates, ascending (the 'waves')."""
        return sorted({entity.listed_on() for entity in self._entities})

    def domains_by_authority(
        self, authority: SanctionsAuthority
    ) -> List[DomainName]:
        """Domains listed by one specific authority."""
        result: Set[DomainName] = set()
        for entity in self._entities:
            if authority in entity.authorities():
                result.update(entity.domains)
        return sorted(result)
