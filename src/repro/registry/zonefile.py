"""Daily zone-file snapshots: the seed lists for active measurement.

OpenINTEL seeds its daily sweeps from TLD zone files.  A
:class:`ZoneFileSnapshot` is exactly that seed: the set of names delegated
from a registry zone on a given date (per TLD), without any resolution
data.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterator, List

import numpy as np

from ..dns.name import DomainName
from ..timeline import DateLike, as_date
from .population import DomainPopulation
from .tld import TLD_RF, TLD_RU

__all__ = ["ZoneFileSnapshot", "ZoneFileService"]


class ZoneFileSnapshot:
    """The registered names of one day, with per-TLD breakdown."""

    def __init__(
        self, date: _dt.date, indices: np.ndarray, population: DomainPopulation
    ) -> None:
        self.date = date
        self.indices = indices
        self._population = population

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self) -> Iterator[DomainName]:
        for index in self.indices:
            yield self._population.record(int(index)).name

    def names(self) -> List[DomainName]:
        """All registered names on this day."""
        return list(self)

    def count_by_tld(self) -> Dict[str, int]:
        """Registered-name counts per TLD."""
        rf = int(self._population.is_rf[self.indices].sum())
        return {TLD_RU: len(self.indices) - rf, TLD_RF: rf}


class ZoneFileService:
    """Produces :class:`ZoneFileSnapshot` objects from the population."""

    def __init__(self, population: DomainPopulation) -> None:
        self._population = population

    def snapshot(self, date: DateLike) -> ZoneFileSnapshot:
        """The seed list for ``date``."""
        return ZoneFileSnapshot(
            as_date(date),
            self._population.active_indices(date),
            self._population,
        )
