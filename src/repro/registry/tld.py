"""TLD constants for the study.

The measured population is every domain under the Russian Federation
ccTLDs ``.ru`` and ``.рф`` (A-label ``xn--p1ai``).  For the *name-server TLD
dependency* analysis, a TLD counts as Russian when it is administered by
the Russian Federation — which adds the legacy Soviet ``.su`` zone.
"""

from __future__ import annotations

from typing import Optional

from ..dns.idna import to_ascii
from ..dns.name import DomainName

__all__ = [
    "TLD_RU",
    "TLD_RF",
    "TLD_SU",
    "STUDY_TLDS",
    "RUSSIAN_TLDS",
    "is_study_domain",
    "is_russian_tld",
]

#: The ``.ru`` ccTLD label.
TLD_RU = "ru"
#: The ``.рф`` ccTLD label in A-label form.
TLD_RF = "xn--p1ai"
#: The legacy ``.su`` ccTLD label (administered from Russia).
TLD_SU = "su"

#: TLDs whose registrations constitute the measured population.
STUDY_TLDS = frozenset({TLD_RU, TLD_RF})
#: TLDs counted as Russian in the NS TLD-dependency analysis.
RUSSIAN_TLDS = frozenset({TLD_RU, TLD_RF, TLD_SU})


def is_study_domain(name: DomainName) -> bool:
    """True when ``name`` is registered under ``.ru`` or ``.рф``."""
    return name.tld in STUDY_TLDS


def is_russian_tld(tld: Optional[str]) -> bool:
    """True when the (Unicode or A-label) TLD is Russian-administered."""
    if tld is None:
        return False
    return to_ascii(tld.lower().lstrip(".")) in RUSSIAN_TLDS
