"""Synthetic but plausible second-level domain labels.

``.ru`` labels are ASCII syllable compounds; ``.рф`` labels are Cyrillic
syllable compounds, which exercises the IDNA/punycode path everywhere a
name crosses the DNS layer.  Uniqueness is guaranteed by appending a
base-36 counter on collision.
"""

from __future__ import annotations

from typing import Set

import numpy as np

__all__ = ["NameFactory"]

_ASCII_SYLLABLES = [
    "al", "an", "ar", "bor", "dom", "el", "en", "er", "gra", "in",
    "ka", "kom", "lan", "lit", "mar", "mir", "neo", "nik", "on", "or",
    "pro", "ros", "ser", "sib", "sky", "sto", "tek", "tor", "ul", "ve",
    "vol", "za",
]
_CYRILLIC_SYLLABLES = [
    "ал", "бор", "век", "гор", "дом", "ель", "жар", "зол", "ино", "кол",
    "лан", "мир", "нов", "окт", "пол", "рус", "сев", "тор", "уль", "флот",
    "хол", "цен", "чер", "шах", "эко", "юни", "яр",
]
_BASE36 = "0123456789abcdefghijklmnopqrstuvwxyz"


def _base36(value: int) -> str:
    if value == 0:
        return "0"
    digits = []
    while value:
        value, rem = divmod(value, 36)
        digits.append(_BASE36[rem])
    return "".join(reversed(digits))


class NameFactory:
    """Generates unique labels from a numpy RNG."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._issued: Set[str] = set()
        self._counter = 0

    def _compound(self, syllables, count: int) -> str:
        picks = self._rng.integers(0, len(syllables), size=count)
        return "".join(syllables[int(i)] for i in picks)

    def next_ascii(self) -> str:
        """A fresh ASCII label."""
        count = 2 + int(self._rng.integers(0, 2))
        label = self._compound(_ASCII_SYLLABLES, count)
        if self._rng.random() < 0.15:
            label += str(int(self._rng.integers(0, 100)))
        return self._dedupe(label)

    def next_cyrillic(self) -> str:
        """A fresh Cyrillic (U-label) label."""
        count = 2 + int(self._rng.integers(0, 2))
        return self._dedupe(self._compound(_CYRILLIC_SYLLABLES, count))

    def _dedupe(self, label: str) -> str:
        candidate = label
        while candidate in self._issued:
            self._counter += 1
            candidate = f"{label}{_base36(self._counter)}"
        self._issued.add(candidate)
        return candidate
