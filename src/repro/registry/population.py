"""Deterministic registration churn for the ``.ru``/``.рф`` population.

The real study covers ~5 M concurrently registered names (11.7 M unique
across five years).  The generator reproduces those population dynamics at
a configurable scale: an initial cohort active on study day 0, Poisson
daily births against a slow-growth target curve, and exponential lifetimes
so the unique-to-concurrent ratio lands near the paper's ~2.3x.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..dns.name import DomainName
from ..errors import RegistryError
from ..rng import derive_rng
from ..timeline import STUDY_DAYS, DateLike, day_index
from .domain import NEVER, DomainRecord
from .names import NameFactory
from .tld import TLD_RF, TLD_RU

__all__ = ["PopulationConfig", "DomainPopulation"]


class PopulationConfig:
    """Knobs for the population generator."""

    def __init__(
        self,
        seed: int = 20220224,
        initial_count: int = 10_000,
        rf_share: float = 0.04,
        daily_birth_rate: float = 7.2e-4,
        daily_death_rate: float = 7.0e-4,
        horizon_days: int = STUDY_DAYS,
        registrars: Sequence[str] = (
            "REG.RU", "RU-CENTER", "Beget", "Timeweb", "Rusonyx", "Webnames",
        ),
        reserved_names: Sequence[Tuple[str, str]] = (),
    ) -> None:
        if initial_count < 1:
            raise RegistryError(f"initial_count must be positive: {initial_count}")
        if not 0.0 <= rf_share <= 1.0:
            raise RegistryError(f"rf_share out of range: {rf_share}")
        if daily_birth_rate < 0 or daily_death_rate < 0:
            raise RegistryError("rates must be non-negative")
        self.seed = seed
        self.initial_count = initial_count
        self.rf_share = rf_share
        self.daily_birth_rate = daily_birth_rate
        self.daily_death_rate = daily_death_rate
        self.horizon_days = horizon_days
        self.registrars = tuple(registrars)
        #: (label, tld) pairs registered long before the study and never
        #: deleted; they occupy indices 0..len-1 so scenarios can address
        #: them directly (the sanctioned-domain set uses this).
        self.reserved_names = tuple(reserved_names)


class DomainPopulation:
    """The generated registration history, with columnar views."""

    def __init__(self, config: PopulationConfig) -> None:
        self.config = config
        self._records: List[DomainRecord] = []
        self._generate()
        self.created = np.asarray(
            [rec.created_day for rec in self._records], dtype=np.int64
        )
        self.deleted = np.asarray(
            [rec.deleted_day for rec in self._records], dtype=np.int64
        )
        self.is_rf = np.asarray(
            [rec.name.tld == TLD_RF for rec in self._records], dtype=bool
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _generate(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "registry", "population")
        names = NameFactory(derive_rng(cfg.seed, "registry", "names"))

        def make_record(created_day: int) -> None:
            index = len(self._records)
            is_rf = rng.random() < cfg.rf_share
            tld = TLD_RF if is_rf else TLD_RU
            label = names.next_cyrillic() if is_rf else names.next_ascii()
            lifetime = 1 + int(rng.exponential(1.0 / max(cfg.daily_death_rate, 1e-9)))
            deleted_day = created_day + lifetime
            if deleted_day > cfg.horizon_days + 365:
                deleted_day = NEVER
            registrar = cfg.registrars[int(rng.integers(0, len(cfg.registrars)))]
            self._records.append(
                DomainRecord(
                    DomainName((label, tld)),
                    index,
                    created_day,
                    deleted_day,
                    registrar=registrar,
                    registrant=f"org-{index:06d}",
                )
            )

        # Reserved names first: stable, pre-study, never deleted.
        for label, tld in cfg.reserved_names:
            index = len(self._records)
            self._records.append(
                DomainRecord(
                    DomainName((label, tld)),
                    index,
                    created_day=-2000,
                    deleted_day=NEVER,
                    registrar=cfg.registrars[index % len(cfg.registrars)],
                    registrant=f"org-{index:06d}",
                )
            )

        # Initial cohort: registered before the study window opened.
        for _ in range(cfg.initial_count):
            age = int(rng.exponential(900.0)) + 1
            make_record(-age)
        # Their deletion days were drawn relative to creation; resurrect any
        # that died before day 0 (they must be active when the study opens).
        for rec in self._records:
            if rec.deleted_day <= 0:
                rec.deleted_day = 1 + int(
                    rng.exponential(1.0 / max(cfg.daily_death_rate, 1e-9))
                )

        # Daily births against a slow exponential growth target.
        net = cfg.daily_birth_rate - cfg.daily_death_rate
        for day in range(cfg.horizon_days):
            target_active = cfg.initial_count * math.exp(net * day)
            expected = cfg.daily_birth_rate * target_active
            for _ in range(int(rng.poisson(expected))):
                make_record(day)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DomainRecord]:
        return iter(self._records)

    def record(self, index: int) -> DomainRecord:
        """The record with the given index."""
        return self._records[index]

    def by_name(self, name: DomainName) -> DomainRecord:
        """Find a record by domain name (linear; for tests and whois)."""
        for rec in self._records:
            if rec.name == name:
                return rec
        raise RegistryError(f"unknown domain: {name}")

    def active_mask(self, date: DateLike) -> np.ndarray:
        """Boolean mask of records active on ``date``."""
        day = day_index(date)
        return (self.created <= day) & (day < self.deleted)

    def active_count(self, date: DateLike) -> int:
        """Number of active registrations on ``date``."""
        return int(self.active_mask(date).sum())

    def active_indices(self, date: DateLike) -> np.ndarray:
        """Indices of records active on ``date``."""
        return np.flatnonzero(self.active_mask(date))

    def unique_count(self) -> int:
        """Total unique registrations across the whole horizon."""
        return len(self._records)
