"""Registered-domain records and their lifecycle."""

from __future__ import annotations

from typing import Optional

from ..dns.name import DomainName
from ..errors import RegistryError
from ..timeline import DateLike, day_index, from_day_index

__all__ = ["NEVER", "DomainRecord"]

#: Sentinel day index meaning "not deleted within the simulation horizon".
NEVER = 10**9


class DomainRecord:
    """One registration under a simulated ccTLD.

    ``created_day``/``deleted_day`` are study-day indices; a domain is
    *active* on day ``d`` when ``created_day <= d < deleted_day``.
    """

    __slots__ = ("name", "index", "created_day", "deleted_day", "registrar", "registrant")

    def __init__(
        self,
        name: DomainName,
        index: int,
        created_day: int,
        deleted_day: int = NEVER,
        registrar: str = "",
        registrant: str = "",
    ) -> None:
        if deleted_day <= created_day:
            raise RegistryError(
                f"{name}: deleted_day {deleted_day} <= created_day {created_day}"
            )
        self.name = name
        self.index = index
        self.created_day = created_day
        self.deleted_day = deleted_day
        self.registrar = registrar
        self.registrant = registrant

    def is_active(self, date: DateLike) -> bool:
        """True when the registration exists on ``date``."""
        day = day_index(date)
        return self.created_day <= day < self.deleted_day

    @property
    def created_date(self):
        """Creation date as :class:`datetime.date`."""
        return from_day_index(self.created_day)

    @property
    def deleted_date(self) -> Optional[object]:
        """Deletion date, or None when never deleted."""
        if self.deleted_day >= NEVER:
            return None
        return from_day_index(self.deleted_day)

    def __repr__(self) -> str:
        return (
            f"DomainRecord({self.name}, day {self.created_day}.."
            f"{'∞' if self.deleted_day >= NEVER else self.deleted_day})"
        )
