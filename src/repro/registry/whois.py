"""A whois lookup service over the simulated registry.

The paper uses Cisco's Whois Domain API to decide whether domains that
appeared in a provider's network were *newly registered* or merely
relocated, and notes registrant information was only available for about a
sixth of queried names.  Both behaviours are reproduced here.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from ..dns.name import DomainName
from ..errors import RegistryError
from ..rng import stable_hash
from ..timeline import DateLike, as_date
from .domain import DomainRecord
from .population import DomainPopulation

__all__ = ["WhoisRecord", "WhoisService"]


class WhoisRecord:
    """The subset of whois data the analysis consumes."""

    __slots__ = ("name", "created", "registrar", "registrant")

    def __init__(
        self,
        name: DomainName,
        created: _dt.date,
        registrar: str,
        registrant: Optional[str],
    ) -> None:
        self.name = name
        self.created = created
        self.registrar = registrar
        self.registrant = registrant  # None when the registry redacts it

    def __repr__(self) -> str:
        return f"WhoisRecord({self.name}, created {self.created})"


class WhoisService:
    """Whois over the registry, with realistic registrant redaction."""

    #: Fraction of lookups that return registrant data (paper: ~1/6).
    REGISTRANT_DISCLOSURE_RATE = 1.0 / 6.0

    def __init__(self, population: DomainPopulation) -> None:
        self._population = population
        self._by_name = {record.name: record for record in population}

    def lookup(self, name: DomainName) -> WhoisRecord:
        """Whois data for ``name``; raises for never-registered names."""
        record = self._by_name.get(name)
        if record is None:
            raise RegistryError(f"whois: no such domain {name}")
        return self._to_whois(record)

    def try_lookup(self, name: DomainName) -> Optional[WhoisRecord]:
        """Like :meth:`lookup` but returns None for unknown names."""
        record = self._by_name.get(name)
        return self._to_whois(record) if record is not None else None

    def is_newly_registered(self, name: DomainName, since: DateLike) -> bool:
        """True when ``name`` was first registered on/after ``since``."""
        record = self._by_name.get(name)
        if record is None:
            raise RegistryError(f"whois: no such domain {name}")
        return record.created_date >= as_date(since)

    def _to_whois(self, record: DomainRecord) -> WhoisRecord:
        disclose = (
            stable_hash("whois-disclosure", str(record.name)) % 1_000_003
        ) / 1_000_003.0 < self.REGISTRANT_DISCLOSURE_RATE
        return WhoisRecord(
            record.name,
            record.created_date,
            record.registrar,
            record.registrant if disclose else None,
        )
