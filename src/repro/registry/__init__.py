"""Registry substrate: domain lifecycle, population churn, zone seeds, whois."""

from .domain import NEVER, DomainRecord
from .names import NameFactory
from .population import DomainPopulation, PopulationConfig
from .tld import (
    RUSSIAN_TLDS,
    STUDY_TLDS,
    TLD_RF,
    TLD_RU,
    TLD_SU,
    is_russian_tld,
    is_study_domain,
)
from .whois import WhoisRecord, WhoisService
from .zonefile import ZoneFileService, ZoneFileSnapshot

__all__ = [
    "NEVER",
    "DomainRecord",
    "NameFactory",
    "DomainPopulation",
    "PopulationConfig",
    "RUSSIAN_TLDS",
    "STUDY_TLDS",
    "TLD_RF",
    "TLD_RU",
    "TLD_SU",
    "is_russian_tld",
    "is_study_domain",
    "WhoisRecord",
    "WhoisService",
    "ZoneFileService",
    "ZoneFileSnapshot",
]
