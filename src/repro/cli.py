"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show every reproducible artefact,
* ``run <id>`` — regenerate one figure/table and print it
  (``--archive PATH`` replays a persistent measurement archive instead
  of re-simulating the sweeps),
* ``report`` — regenerate EXPERIMENTS.md; with ``--from``/``--to`` it
  instead renders a live follow report (coverage, composition shift,
  change events) from a followed archive (see :mod:`repro.live.report`),
* ``info`` — summarise the built world,
* ``resolve <name> --date D`` — honestly resolve a domain through the
  simulated root/TLD/authoritative hierarchy and show what the
  measurement pipeline records,
* ``archive build|status|verify|repair`` — manage the on-disk
  measurement archive (incremental builds, coverage summary, CRC
  verification, quarantine-and-rebuild repair),
* ``bundle`` — export every artefact plus a machine-readable
  ``bundle.json`` manifest,
* ``query`` — answer one :class:`repro.api.QuerySpec` offline and print
  the canonical JSON envelope (byte-identical to the HTTP service),
* ``serve`` — start the archive-backed HTTP query service; with
  ``--processes N`` a pre-fork supervisor runs N workers over the same
  archive (see :mod:`repro.service` and docs/service.md); with
  ``--follow`` a live follow engine ingests new study days and
  publishes change events at ``/v1/events`` and as an SSE stream
  (see :mod:`repro.live` and docs/live.md),
* ``loadgen`` — offer seed-pure open-loop load to a running service and
  write latency/error/staleness percentiles to
  ``BENCH_service_load.json`` (see :mod:`repro.loadgen`),
* ``scenario list|show|sweep`` — inspect the declarative counterfactual
  scenario library and run cross-scenario experiment grids with
  diff-vs-baseline results (see :mod:`repro.scenario` and
  docs/scenarios.md).

The global ``--scenario ID|PATH`` flag selects which world every other
command builds (``baseline`` reproduces the paper's timeline and stays
byte-identical to the pre-scenario-engine path).

The global ``--fault-seed``/``--fault-rate`` options attach a
deterministic fault-injection plan (see :mod:`repro.faults`) to
whatever pipeline the command drives; exit codes and fault semantics
are documented in ``docs/archive.md`` and ``docs/faults.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .dns.name import DomainName
from .dns.rdata import RRType
from .dns.resolver import IterativeResolver
from .errors import ReproError
from .experiments import EXPERIMENTS, EXTENSIONS, ExperimentContext, run_experiment
from .experiments.report import write_markdown_report
from .sim.dnsbuild import DnsTreeBuilder
from .timeline import as_date

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Where .ru? Assessing the Impact of Conflict "
            "on Russian Domain Infrastructure' (IMC 2022)."
        ),
    )
    parser.add_argument(
        "--scenario", default="baseline", metavar="ID|PATH",
        help=(
            "scenario to build the world from: a canonical library id "
            "(see 'repro scenario list') or a path to a spec JSON file "
            "(default baseline, the calibrated historical timeline)"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help=(
            "population scale denominator (default: the scenario spec's, "
            "250 for the shipped library; benches also run at 1:250)"
        ),
    )
    parser.add_argument(
        "--cadence", type=int, default=7,
        help="sweep cadence in days for longitudinal series (default 7)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for longitudinal sweeps (default 1 = serial)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="scenario seed (default: the spec's, 20220224 for the library)",
    )
    parser.add_argument(
        "--no-pki", action="store_true",
        help="skip the certificate simulation (faster; disables PKI artefacts)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help=(
            "enable deterministic fault injection with this seed "
            "(same seed => identical injected-fault sequence)"
        ),
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.05, metavar="RATE",
        help="per-site fault probability when --fault-seed is set (default 0.05)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artefacts")
    sub.add_parser("info", help="summarise the built world")
    sub.add_parser("timeline", help="print the scripted scenario timeline")

    run_parser = sub.add_parser("run", help="regenerate one artefact")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument(
        "--out", default=None, help="also write the rendering to this file"
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase timing and cache hit-rate metrics",
    )
    run_parser.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the structured metrics summary (JSON) to this file",
    )
    run_parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help="replay sweeps from a measurement archive instead of simulating",
    )

    report_parser = sub.add_parser(
        "report",
        help=(
            "regenerate EXPERIMENTS.md, or render a live follow report "
            "for a date window (--from/--to over a followed archive)"
        ),
    )
    report_parser.add_argument(
        "--output", default="EXPERIMENTS.md", help="output path"
    )
    report_parser.add_argument(
        "--from", dest="from_date", default=None, metavar="DATE",
        help=(
            "start of a live report window (ISO date); with --to, renders "
            "the follow report from --archive instead of EXPERIMENTS.md"
        ),
    )
    report_parser.add_argument(
        "--to", dest="to_date", default=None, metavar="DATE",
        help="end of the live report window (ISO date)",
    )
    report_parser.add_argument(
        "--format", default="md", choices=("md", "csv"),
        help="live report format: md (full report) or csv (event table)",
    )
    report_parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help=(
            "the followed archive directory holding the day summaries "
            "and events.log the live report is rendered from"
        ),
    )

    resolve_parser = sub.add_parser(
        "resolve", help="resolve a domain through the simulated DNS"
    )
    resolve_parser.add_argument("name", help="domain name (Unicode or A-label)")
    resolve_parser.add_argument(
        "--date", default="2022-03-04", help="measurement date (ISO)"
    )

    bundle_parser = sub.add_parser(
        "bundle", help="export every artefact (text + CSV) to a directory"
    )
    bundle_parser.add_argument(
        "--output", default="artifacts", help="output directory"
    )
    bundle_parser.add_argument(
        "--extensions", action="store_true", help="include extension analyses"
    )
    bundle_parser.add_argument(
        "--profile", action="store_true",
        help=(
            "record per-phase timing and cache hit/miss metrics "
            "(including archive shard counters) in bundle.json"
        ),
    )
    bundle_parser.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the structured metrics summary (JSON) to this file",
    )
    bundle_parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help="replay sweeps from a measurement archive instead of simulating",
    )

    query_parser = sub.add_parser(
        "query",
        help="answer one query spec offline (canonical JSON on stdout)",
    )
    query_parser.add_argument(
        "spec", nargs="?", default=None,
        help="query spec as a JSON object (alternative to the flags)",
    )
    query_parser.add_argument(
        "--kind", default=None,
        help="query kind: experiment|series|headline|records|catalog",
    )
    query_parser.add_argument(
        "--experiment", default=None, help="experiment id (kind=experiment)"
    )
    query_parser.add_argument(
        "--series", default=None, help="series name (kind=series)"
    )
    query_parser.add_argument(
        "--start", default=None, help="series range start (ISO date)"
    )
    query_parser.add_argument(
        "--end", default=None, help="series range end (ISO date)"
    )
    query_parser.add_argument(
        "--date", default=None, help="measurement day (kind=records)"
    )
    query_parser.add_argument(
        "--tld", default=None,
        help="TLD filter for records (Unicode or A-label)",
    )
    query_parser.add_argument(
        "--offset", type=int, default=None, help="records page offset"
    )
    query_parser.add_argument(
        "--limit", type=int, default=None, help="records page size"
    )
    query_parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help="replay sweeps from a measurement archive instead of simulating",
    )
    query_parser.add_argument(
        "--url", default=None, metavar="URL",
        help=(
            "execute the query against a running service instead of "
            "computing offline (e.g. http://127.0.0.1:8321); the JSON "
            "printed is byte-identical either way"
        ),
    )
    query_parser.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help="per-request deadline sent as X-Repro-Deadline-Ms (with --url)",
    )
    query_parser.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="retry budget for transient service failures (with --url; default 3)",
    )

    serve_parser = sub.add_parser(
        "serve", help="start the archive-backed HTTP query service"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321,
        help="bind port (default 8321; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--archive", default=None, metavar="PATH",
        help="serve from a measurement archive instead of simulating",
    )
    serve_parser.add_argument(
        "--scenario-archive", action="append", default=None,
        metavar="ID=PATH",
        help=(
            "also serve scenario ID from its own archive at PATH "
            "(repeatable; each world keeps separate caches and answers "
            "/v2 queries carrying scenario=ID)"
        ),
    )
    serve_parser.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help=(
            "serving processes (default 1 = in-process server; N >= 2 "
            "starts a pre-fork supervisor with SO_REUSEPORT workers, "
            "falling back to an inherited socket, then single-process, "
            "where the platform lacks support)"
        ),
    )
    serve_parser.add_argument(
        "--admin-port", type=int, default=0, metavar="PORT",
        help=(
            "supervisor admin port for aggregated /metrics and /healthz "
            "(multi-process only; default 0 picks a free port)"
        ),
    )
    serve_parser.add_argument(
        "--shared-cache", default=None, metavar="DIR",
        help=(
            "directory for the cross-worker shared result cache "
            "(multi-process only; default: a private temp dir)"
        ),
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=4, metavar="N",
        help="worker threads computing queries (default 4)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help=(
            "distinct in-flight queries before new ones get 503 + "
            "Retry-After (default 32)"
        ),
    )
    serve_parser.add_argument(
        "--cache-results", type=int, default=128, metavar="N",
        help="query results kept in the serving LRU (default 128)",
    )
    serve_parser.add_argument(
        "--deadline-ms", type=int, default=30000, metavar="MS",
        help=(
            "default per-request deadline; clients may lower or raise it "
            "per request via X-Repro-Deadline-Ms (default 30000)"
        ),
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="classified failures in the window that open the breaker (default 5)",
    )
    serve_parser.add_argument(
        "--breaker-window", type=float, default=30.0, metavar="SECONDS",
        help="sliding failure window feeding the breaker (default 30)",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=2.0, metavar="SECONDS",
        help="open time before the breaker half-opens for a probe (default 2)",
    )
    serve_parser.add_argument(
        "--fault-match", default=None, metavar="SUBSTRING",
        help=(
            "restrict injected service faults to decision keys containing "
            "this substring (with --fault-seed; see docs/faults.md)"
        ),
    )
    serve_parser.add_argument(
        "--fault-stall-ms", type=int, default=50, metavar="MS",
        help="length of injected service.compute stalls (default 50)",
    )
    serve_parser.add_argument(
        "--fault-crash-match", default=None, metavar="SUBSTRING",
        help=(
            "arm the service.worker_crash KILL site against the one "
            "query whose decision key contains this substring (with "
            "--fault-seed; meant for --processes >= 2, where the "
            "supervisor restarts the killed worker)"
        ),
    )
    serve_parser.add_argument(
        "--follow", action="store_true",
        help=(
            "run the live follow engine alongside serving: ingest each "
            "new study day into --archive, detect day-over-day changes, "
            "and publish them at /v1/events and /v1/events/stream "
            "(requires --archive; with --processes, one leader worker "
            "follows while every worker serves)"
        ),
    )
    serve_parser.add_argument(
        "--follow-start", default="2022-02-24", metavar="DATE",
        help="first day the follow engine ingests (default 2022-02-24)",
    )
    serve_parser.add_argument(
        "--follow-end", default="2022-03-26", metavar="DATE",
        help="last day the follow engine ingests (default 2022-03-26)",
    )
    serve_parser.add_argument(
        "--follow-cadence", type=int, default=1, metavar="DAYS",
        help="simulated days advanced per follow cycle (default 1)",
    )
    serve_parser.add_argument(
        "--follow-interval", type=float, default=0.0, metavar="SECONDS",
        help=(
            "wall-clock pause between follow cycles (default 0 = ingest "
            "as fast as the builder allows)"
        ),
    )
    serve_parser.add_argument(
        "--follow-stall-after", type=int, default=3, metavar="N",
        help=(
            "consecutive failed cycles before /healthz reports the feed "
            "stalled and queries serve with stale headers (default 3)"
        ),
    )
    serve_parser.add_argument(
        "--follow-retries", type=int, default=3, metavar="N",
        help="per-day ingest/detector retry budget (default 3)",
    )
    serve_parser.add_argument(
        "--sse-buffer", type=int, default=None, metavar="N",
        help=(
            "event backlog a slow SSE consumer may accumulate before the "
            "stream skips ahead with an explicit gap frame (default 64)"
        ),
    )
    serve_parser.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the metrics summary (JSON) on shutdown to this file",
    )

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="offer seed-pure open-loop load to a running query service",
    )
    loadgen_parser.add_argument(
        "--url", required=True, metavar="URL",
        help="service base URL (e.g. http://127.0.0.1:8321)",
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=50.0, metavar="QPS",
        help="offered arrival rate in queries/second (default 50)",
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="length of the offered-load window (default 10)",
    )
    loadgen_parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request transport timeout (default 30)",
    )
    loadgen_parser.add_argument(
        "--output", default="BENCH_service_load.json", metavar="PATH",
        help=(
            "where to write the JSON report "
            "(default BENCH_service_load.json; '-' skips the file)"
        ),
    )
    loadgen_parser.add_argument(
        "--max-error-rate", type=float, default=None, metavar="RATE",
        help="exit 1 when the measured error rate exceeds this bound",
    )
    loadgen_parser.add_argument(
        "--max-p99-ms", type=float, default=None, metavar="MS",
        help="exit 1 when p99 latency exceeds this bound (milliseconds)",
    )

    archive_parser = sub.add_parser(
        "archive", help="manage the persistent measurement archive"
    )
    archive_sub = archive_parser.add_subparsers(
        dest="archive_command", required=True
    )
    archive_build = archive_sub.add_parser(
        "build", help="build or extend an archive (incremental, resumable)"
    )
    archive_build.add_argument("path", help="archive directory")
    archive_build.add_argument(
        "--start", default=None,
        help="first day of a custom range (default: the standard plan — "
        "full study at --cadence plus the conflict window daily)",
    )
    archive_build.add_argument(
        "--end", default=None, help="last day of a custom range"
    )
    archive_build.add_argument(
        "--step", type=int, default=1, help="day step of a custom range"
    )
    archive_build.add_argument(
        "--chunk-domains", type=int, default=None, metavar="N",
        help="stream each day's shard in bounded chunks of N domains "
        "(byte-identical output; keeps peak memory flat at large scales)",
    )
    archive_build.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="MB",
        help="advisory memory ceiling: warn on stderr when the build's "
        "peak RSS exceeds this many MiB (the exit code is unchanged)",
    )
    archive_build.add_argument(
        "--profile", action="store_true",
        help="print build/write timing metrics",
    )
    archive_build.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the structured metrics summary (JSON) to this file",
    )
    archive_status = archive_sub.add_parser(
        "status", help="summarise an archive's coverage and size"
    )
    archive_status.add_argument("path", help="archive directory")
    archive_verify = archive_sub.add_parser(
        "verify", help="re-read every shard and check it against the manifest"
    )
    archive_verify.add_argument("path", help="archive directory")
    archive_repair = archive_sub.add_parser(
        "repair",
        help="quarantine damaged shards and rebuild them from the scenario",
    )
    archive_repair.add_argument("path", help="archive directory")
    archive_repair.add_argument(
        "--profile", action="store_true",
        help="print repair timing and recovery metrics",
    )
    archive_repair.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the structured metrics summary (JSON) to this file",
    )

    scenario_parser = sub.add_parser(
        "scenario",
        help="inspect the scenario library and sweep experiments across worlds",
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_sub.add_parser(
        "list", help="list every registered scenario spec"
    )
    scenario_show = scenario_sub.add_parser(
        "show", help="print one spec (canonical JSON, digest, fingerprint)"
    )
    scenario_show.add_argument("id", help="scenario id or spec JSON path")
    scenario_sweep = scenario_sub.add_parser(
        "sweep",
        help=(
            "run an experiment grid across scenarios and diff each "
            "counterfactual against baseline"
        ),
    )
    scenario_sweep.add_argument(
        "--scenarios", default=None, metavar="IDS",
        help=(
            "comma-separated scenario ids/spec paths (default: the whole "
            "shipped library); baseline is always included as the diff base"
        ),
    )
    scenario_sweep.add_argument(
        "--experiments", default="headline,fig1,fig2", metavar="IDS",
        help="comma-separated experiment ids (default headline,fig1,fig2)",
    )
    scenario_sweep.add_argument(
        "--archive-root", default=None, metavar="DIR",
        help=(
            "build (or reuse) one measurement archive per scenario under "
            "DIR/<id> and replay the grid from disk instead of simulating "
            "each query"
        ),
    )
    scenario_sweep.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full grid (including diff payloads) as JSON",
    )
    return parser


def _fault_plan(args: argparse.Namespace, service: bool = False):
    """The CLI-selected fault plan, or None when injection is off.

    ``repro serve`` gets the service-layer mix (compute stalls, archive
    read errors, response-write aborts); every other command gets the
    pipeline mix.
    """
    if getattr(args, "fault_seed", None) is None:
        return None
    if service:
        from .faults import service_plan

        return service_plan(
            args.fault_seed,
            rate=args.fault_rate,
            stall_seconds=args.fault_stall_ms / 1000.0,
            match=args.fault_match,
            crash_match=getattr(args, "fault_crash_match", None),
        )
    from .faults import default_plan

    return default_plan(args.fault_seed, rate=args.fault_rate)


def _write_profile_json(path: Optional[str], metrics) -> None:
    if not path:
        return
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics.summary(), handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Sentinel distinguishing "no archive" from "use args.archive".
_DEFAULT_ARCHIVE = object()


def _scenario_spec(args: argparse.Namespace, scenario: Optional[str] = None):
    """Resolve the CLI's scenario into a spec with flag overrides applied.

    Flags left at their defaults resolve to ``None`` and are skipped by
    :meth:`ScenarioSpec.with_config`, so values a spec *file* sets are
    never stomped by unset CLI defaults.
    """
    from .scenario import ScenarioSpec

    spec = ScenarioSpec.resolve(
        scenario or getattr(args, "scenario", None) or "baseline"
    )
    return spec.with_config(
        scale=args.scale,
        seed=args.seed,
        with_pki=False if args.no_pki else None,
    )


def _context(
    args: argparse.Namespace,
    service: bool = False,
    scenario: Optional[str] = None,
    archive: object = _DEFAULT_ARCHIVE,
) -> ExperimentContext:
    if archive is _DEFAULT_ARCHIVE:
        archive = getattr(args, "archive", None)
    return ExperimentContext(
        scenario=_scenario_spec(args, scenario),
        cadence_days=args.cadence,
        workers=args.workers,
        profile=getattr(args, "profile", False),
        archive=archive,
        faults=_fault_plan(args, service=service),
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    print("paper artefacts:")
    for experiment_id in EXPERIMENTS:
        print(f"  {experiment_id}")
    print("extensions:")
    for experiment_id in EXTENSIONS:
        print(f"  {experiment_id}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    context = _context(args)
    world = context.world
    population = world.population
    print(f"scenario:           {context.scenario_id}")
    print(f"scale:              1:{context.config.scale:g}")
    print(f"domains on day 1:   {population.active_count('2017-06-18'):,}")
    print(f"unique over study:  {population.unique_count():,}")
    print(f"providers:          {len(world.catalog)}")
    print(f"dns plans:          {len(world.dns_plans)}")
    print(f"hosting plans:      {len(world.hosting_plans)}")
    print(f"sanctioned domains: {len(world.sanctions.all_domains())}")
    print(f"infra epochs:       {len(world.epochs())}")
    if world.pki is not None:
        print(f"certificates:       {len(world.pki.store):,}")
        print(f"ct log entries:     {sum(len(log) for log in world.pki.logs):,}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS and args.experiment not in EXTENSIONS:
        print(
            f"unknown experiment {args.experiment!r}; known: "
            f"{', '.join(list(EXPERIMENTS) + list(EXTENSIONS))}",
            file=sys.stderr,
        )
        return 2
    from .errors import ArchiveError

    try:
        context = _context(args)
        result = run_experiment(args.experiment, context)
    except ArchiveError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    text = result.render()
    print(text)
    if args.profile:
        print(context.metrics.render())
    _write_profile_json(getattr(args, "profile_json", None), context.metrics)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.from_date is not None or args.to_date is not None:
        return _live_report(args)
    text = write_markdown_report(_context(args))
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


def _live_report(args: argparse.Namespace) -> int:
    """``repro report --from A --to B``: render the follow report.

    Everything comes from the durable state a follow run left behind
    (day summaries in the archive, ``events.log`` beside them), so the
    same archive always renders byte-identical output.  Prints to
    stdout unless ``--output`` was pointed somewhere explicit.
    """
    from .archive import MeasurementArchive
    from .errors import ArchiveError, LiveError
    from .live import EventLog, compile_report, render_report

    if args.from_date is None or args.to_date is None:
        print("--from and --to must be given together", file=sys.stderr)
        return 2
    if args.archive is None:
        print(
            "a live report needs --archive (the followed archive directory)",
            file=sys.stderr,
        )
        return 2
    try:
        archive = MeasurementArchive(args.archive, faults=_fault_plan(args))
        report = compile_report(
            archive, EventLog(args.archive), args.from_date, args.to_date
        )
        text = render_report(report, args.format)
    except (ArchiveError, LiveError, ReproError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.output != "EXPERIMENTS.md":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    context = _context(args)
    world = context.world
    date = as_date(args.date)
    name = DomainName.parse(args.name)
    try:
        record = world.population.by_name(name)
    except ReproError:
        print(f"{name} is not registered in the simulated registry")
        return 1

    tree = DnsTreeBuilder(world).build(date, [record.index])
    resolver = IterativeResolver(tree.network, tree.root_addresses)
    epoch = world.epoch_at(date)
    registry = world.catalog.as_registry()

    print(f"{name} on {date} (registered {record.created_date}):")
    ns_result = resolver.resolve(name, RRType.NS)
    if not ns_result.ok:
        print(f"  NS lookup: {ns_result.rcode}")
        return 1
    for target in ns_result.ns_targets():
        target_result = resolver.resolve(target, RRType.A)
        for address in target_result.addresses():
            asn = epoch.routing.lookup(address)
            country = epoch.geo.lookup(address)
            print(
                f"  NS {target} -> AS{asn} {registry.name_of(asn or 0)} ({country})"
            )
    apex = resolver.resolve(name, RRType.A)
    for address in apex.addresses():
        asn = epoch.routing.lookup(address)
        country = epoch.geo.lookup(address)
        print(f"  A  -> AS{asn} {registry.name_of(asn or 0)} ({country})")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    context = _context(args)
    manifest = context.world.manifest
    if manifest is None:
        print("this world has no scenario manifest")
        return 1
    print(manifest.render())
    return 0


def _cmd_bundle(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments import run_all

    context = _context(args)
    target = pathlib.Path(args.output)
    target.mkdir(parents=True, exist_ok=True)
    results = run_all(context, include_extensions=args.extensions)
    experiments = []
    for result in results:
        text_path = target / f"{result.experiment_id}.txt"
        text_path.write_text(result.render() + "\n", encoding="utf-8")
        written = result.write_csv(target)
        experiments.append(
            {
                "id": result.experiment_id,
                "title": result.title,
                "paper_reference": result.paper_reference,
                "files": [text_path.name] + [path.name for path in written],
            }
        )

    from .sim.validate import validate_world

    issues = validate_world(context.world)
    (target / "validation.txt").write_text(
        ("world is internally consistent\n" if not issues else
         "\n".join(issues) + "\n"),
        encoding="utf-8",
    )
    extra_files = ["validation.txt"]
    if context.world.manifest is not None:
        (target / "timeline.txt").write_text(
            context.world.manifest.render() + "\n", encoding="utf-8"
        )
        extra_files.append("timeline.txt")

    from .archive.manifest import scenario_fingerprint

    config = context.config
    spec = context.scenario_spec
    manifest = {
        "bundle_format": 2,
        # The canonical scenario identity: the same id + spec digest +
        # fingerprint an archive manifest carries, so bundles and
        # archives built from one world are joinable on it.
        "scenario": {
            "id": context.scenario_id,
            "spec_digest": (
                spec.digest() if spec is not None
                else getattr(config, "spec_digest", None)
            ),
            "fingerprint": scenario_fingerprint(config),
        },
        "run": {
            "scale": config.scale,
            "seed": config.seed,
            "cadence_days": args.cadence,
            "workers": args.workers,
            "with_pki": config.with_pki,
        },
        "include_extensions": bool(args.extensions),
        "experiments": experiments,
        "extra_files": extra_files,
    }
    if args.profile:
        manifest["profile"] = context.metrics.summary()
    (target / "bundle.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _write_profile_json(getattr(args, "profile_json", None), context.metrics)
    print(f"wrote {len(results)} artefacts to {target}/")
    return 0


_QUERY_FLAG_FIELDS = (
    "kind", "experiment", "series", "start", "end",
    "date", "tld", "offset", "limit", "scenario",
)


def _query_spec(args: argparse.Namespace):
    """A QuerySpec from the positional JSON or the individual flags.

    The global ``--scenario`` flag doubles as the spec's scenario
    dimension (the spec layer normalises ``baseline`` back to the
    legacy, scenario-free form), so
    ``repro --scenario depeering query --kind headline`` asks for the
    counterfactual world's numbers.
    """
    from .api import QuerySpec

    if args.spec is not None:
        return QuerySpec.from_json(args.spec)
    payload = {
        field: getattr(args, field)
        for field in _QUERY_FLAG_FIELDS
        if getattr(args, field) is not None
    }
    if "scenario" in payload:
        payload["scenario"] = _canonical_scenario_id(str(payload["scenario"]))
    return QuerySpec.from_dict(payload)


def _canonical_scenario_id(name_or_path: str) -> str:
    """A query-able scenario id for the global ``--scenario`` value.

    Library ids pass through; a spec *file* is loaded and registered so
    the rest of the pipeline (QuerySpec validation, facade routing) can
    address it by its canonical name.
    """
    if "/" not in name_or_path and not name_or_path.endswith(".json"):
        return name_or_path
    from .scenario import ScenarioSpec, register_scenario

    return register_scenario(ScenarioSpec.resolve(name_or_path)).name


def _cmd_query(args: argparse.Namespace) -> int:
    from .errors import QueryError

    try:
        spec = _query_spec(args)
    except QueryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.url is not None:
        return _remote_query(args, spec)
    try:
        # The primary context serves the spec's own scenario; a diff
        # additionally needs the baseline world registered beside it.
        context = _context(args, scenario=spec.scenario_id)
        if spec.kind == "diff" and context.scenario_id != "baseline":
            context.api.register_scenario(
                _context(args, scenario="baseline", archive=None)
            )
        print(context.api.query_json(spec))
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def _remote_query(args: argparse.Namespace, spec) -> int:
    """``repro query --url``: the same spec against a running service.

    Prints exactly the service's canonical JSON body, so offline,
    remote-fresh, and remote-stale answers are byte-identical on
    stdout; stale answers additionally get a note on stderr.
    """
    from .client import ClientError, QueryClient

    client = QueryClient(
        args.url, retries=args.retries, deadline_ms=args.deadline_ms
    )
    try:
        response = client.query(spec)
    except ClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if response.status == 200:
        print(response.text)
        if response.stale:
            print(
                "note: stale answer served from cache (service degraded)",
                file=sys.stderr,
            )
        return 0
    try:
        message = response.json()["error"]["message"]
    except (ValueError, KeyError, TypeError):
        message = response.text
    print(f"HTTP {response.status}: {message}", file=sys.stderr)
    return 2 if response.status < 500 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import MODE_SINGLE, run_service, select_socket_mode

    try:
        context = _context(args, service=True)
        _register_scenario_archives(args, context)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    service_options = dict(
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        cache_results=args.cache_results,
        deadline_ms=args.deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
    )
    if args.sse_buffer is not None:
        service_options["sse_buffer"] = args.sse_buffer
    if args.follow:
        if args.archive is None:
            print(
                "--follow needs --archive: the engine ingests new days "
                "into a persistent archive directory",
                file=sys.stderr,
            )
            return 2
        from .live import FollowOptions

        service_options["follow"] = FollowOptions(
            start=args.follow_start,
            end=args.follow_end,
            cadence_days=args.follow_cadence,
            interval_seconds=args.follow_interval,
            stall_after=args.follow_stall_after,
            retries=args.follow_retries,
        )

    mode, reason = select_socket_mode(args.processes)
    if mode != MODE_SINGLE:
        return _serve_multiprocess(args, context, mode, service_options)
    if args.processes > 1:
        print(f"warning: --processes {args.processes}: {reason}",
              file=sys.stderr)

    def announce(service) -> None:
        print(f"serving on http://{args.host}:{service.port}", flush=True)

    try:
        code = asyncio.run(
            run_service(
                context,
                host=args.host,
                port=args.port,
                ready=announce,
                **service_options,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        code = 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    from .faults import sync_fault_metrics

    sync_fault_metrics(context.faults, context.metrics)
    _write_profile_json(getattr(args, "profile_json", None), context.metrics)
    return code


def _register_scenario_archives(args: argparse.Namespace, context) -> None:
    """Attach each ``--scenario-archive ID=PATH`` world to the facade.

    Registration happens before the service (and, with ``--processes``,
    before the pre-fork supervisor forks its workers), so every worker
    serves the same scenario set with per-scenario caches.
    """
    for item in getattr(args, "scenario_archive", None) or []:
        scenario_id, separator, path = item.partition("=")
        if not separator or not scenario_id or not path:
            raise ValueError(
                f"--scenario-archive wants ID=PATH, got {item!r}"
            )
        extra = _context(
            args, service=True,
            scenario=_canonical_scenario_id(scenario_id), archive=path,
        )
        context.api.register_scenario(extra)


def _serve_multiprocess(
    args: argparse.Namespace, context, mode: str, service_options: dict
) -> int:
    """``repro serve --processes N``: supervisor + pre-fork worker pool."""
    import asyncio

    from .service import run_supervised

    def announce(supervisor) -> None:
        print(f"serving on http://{args.host}:{supervisor.port}", flush=True)
        print(
            f"supervisor ({supervisor.mode}, {supervisor.processes} workers) "
            f"admin on http://127.0.0.1:{supervisor.admin_port}",
            flush=True,
        )

    try:
        return asyncio.run(
            run_supervised(
                context,
                host=args.host,
                port=args.port,
                processes=args.processes,
                ready=announce,
                admin_port=args.admin_port,
                shared_dir=args.shared_cache,
                mode=mode,
                profile_json=getattr(args, "profile_json", None),
                **service_options,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .loadgen import main_report, run_loadgen

    try:
        report = run_loadgen(
            args.url,
            rate=args.rate,
            duration=args.duration,
            seed=args.seed if args.seed is not None else 20220224,
            timeout=args.timeout,
            output=None if args.output == "-" else args.output,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    main_report(report)
    if args.output != "-":
        print(f"wrote {args.output}")
    failed = False
    if (
        args.max_error_rate is not None
        and report["error_rate"] > args.max_error_rate
    ):
        print(
            f"FAIL: error rate {report['error_rate']} exceeds "
            f"--max-error-rate {args.max_error_rate}",
            file=sys.stderr,
        )
        failed = True
    p99 = report["latency_ms"]["p99"]
    if args.max_p99_ms is not None and (p99 is None or p99 > args.max_p99_ms):
        print(
            f"FAIL: p99 {p99}ms exceeds --max-p99-ms {args.max_p99_ms}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from .archive import ArchiveBuilder, MeasurementArchive
    from .archive.builder import standard_plan_dates
    from .errors import ArchiveError, ArchiveMismatchError, RecoveryError
    from .measurement.metrics import SweepMetrics

    faults = _fault_plan(args)
    if args.archive_command == "build":
        config = _scenario_spec(args).with_config(with_pki=False).compile()
        if args.chunk_domains is not None and args.chunk_domains < 1:
            print("--chunk-domains must be >= 1", file=sys.stderr)
            return 2
        metrics = SweepMetrics()
        builder = ArchiveBuilder(
            args.path, config, workers=args.workers, metrics=metrics,
            faults=faults, chunk_domains=args.chunk_domains,
        )
        try:
            if args.start is not None or args.end is not None:
                if args.start is None or args.end is None:
                    print(
                        "--start and --end must be given together", file=sys.stderr
                    )
                    return 2
                report = builder.build(args.start, args.end, args.step)
            else:
                report = builder.build_standard(args.cadence)
        except ArchiveMismatchError as exc:
            print(str(exc), file=sys.stderr)
            return 3
        except (ArchiveError, RecoveryError) as exc:
            print(str(exc), file=sys.stderr)
            return 1
        adopted = (
            f", {len(report.adopted)} adopted from an interrupted build"
            if report.adopted
            else ""
        )
        print(
            f"archived {len(report.written)} days "
            f"({report.bytes_written:,} bytes, {report.segments} segments); "
            f"{len(report.skipped)} already covered{adopted}"
        )
        metrics.sample_rss()
        if args.max_rss_mb is not None:
            peak_mb = metrics.peak_rss_bytes / (1024 * 1024)
            if peak_mb > args.max_rss_mb:
                # Advisory only: the archive on disk is complete and
                # correct; the ceiling flags builds that should move to
                # (or shrink) --chunk-domains.
                print(
                    f"warning: peak RSS {peak_mb:,.1f} MiB exceeded the "
                    f"--max-rss-mb ceiling of {args.max_rss_mb:,.1f} MiB; "
                    "consider a smaller --chunk-domains",
                    file=sys.stderr,
                )
        if args.profile:
            print(metrics.render())
        _write_profile_json(getattr(args, "profile_json", None), metrics)
        return 0

    try:
        archive = MeasurementArchive(args.path, faults=faults)
    except ArchiveError as exc:
        print(str(exc), file=sys.stderr)
        # `status` predates the richer codes and keeps its historical 1;
        # verify/repair use 4 for "no readable manifest at that path".
        return 1 if args.archive_command == "status" else 4

    if args.archive_command == "repair":
        config = _scenario_spec(args).with_config(with_pki=False).compile()
        metrics = SweepMetrics()
        archive.metrics = metrics
        try:
            report = archive.repair(config, workers=args.workers)
        except ArchiveMismatchError as exc:
            print(str(exc), file=sys.stderr)
            return 3
        except (ArchiveError, RecoveryError) as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(
            f"quarantined {len(report.quarantined)} file(s), "
            f"rebuilt {len(report.rebuilt)} day(s)"
        )
        if args.profile:
            print(metrics.render())
        _write_profile_json(getattr(args, "profile_json", None), metrics)
        if not report.ok:
            for problem in report.remaining:
                print(str(problem), file=sys.stderr)
            print(
                f"{len(report.remaining)} problem(s) remain after repair",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.archive_command == "status":
        manifest = archive.manifest
        covered = manifest.covered_dates()
        print(f"archive:        {args.path}")
        print(f"scenario:       {manifest.scenario}")
        print(f"population:     {manifest.population_size:,} domains")
        print(f"days covered:   {len(covered)}")
        if covered:
            print(f"first day:      {covered[0]}")
            print(f"last day:       {covered[-1]}")
        print(f"records:        {manifest.total_records():,}")
        print(f"shard bytes:    {manifest.total_bytes():,}")
        standard = standard_plan_dates(args.cadence)
        missing = manifest.missing_dates(standard)
        print(
            f"standard plan:  {len(standard) - len(missing)}/{len(standard)} "
            f"days present (cadence {args.cadence})"
        )
        return 0

    if args.archive_command == "verify":
        problems = archive.verify()
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"{len(problems)} problem(s) found", file=sys.stderr)
            return 1
        print(
            f"archive ok: {len(archive.manifest.days)} shards, "
            f"{archive.manifest.total_bytes():,} bytes verified"
        )
        return 0

    raise AssertionError(f"unhandled archive command {args.archive_command!r}")


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .errors import ScenarioError

    try:
        if args.scenario_command == "list":
            return _scenario_list()
        if args.scenario_command == "show":
            return _scenario_show(args)
        if args.scenario_command == "sweep":
            return _scenario_sweep(args)
    except ScenarioError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled scenario command {args.scenario_command!r}"
    )


def _scenario_list() -> int:
    from .scenario import LIBRARY, scenario_ids

    width = max(len(name) for name in LIBRARY)
    for scenario_id in scenario_ids():
        spec = LIBRARY[scenario_id]
        print(f"{scenario_id:<{width}}  {spec.digest()}  {spec.title}")
    return 0


def _scenario_show(args: argparse.Namespace) -> int:
    import json

    from .archive.manifest import scenario_fingerprint
    from .scenario import ScenarioSpec

    spec = ScenarioSpec.resolve(args.id)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    print(f"spec digest:  {spec.digest()}")
    fingerprint = scenario_fingerprint(spec.compile())
    print(f"fingerprint:  {json.dumps(fingerprint, sort_keys=True)}")
    return 0


def _scenario_sweep(args: argparse.Namespace) -> int:
    """The cross-scenario experiment grid, diffed against baseline."""
    import json

    from .api.spec import jsonify
    from .errors import ArchiveError
    from .scenario import scenario_ids

    if args.scenarios:
        ids = [
            _canonical_scenario_id(item.strip())
            for item in args.scenarios.split(",")
            if item.strip()
        ]
    else:
        ids = scenario_ids()
    if "baseline" not in ids:
        ids.insert(0, "baseline")  # every diff needs the base world
    experiments = [
        item.strip() for item in args.experiments.split(",") if item.strip()
    ]
    if len(ids) < 2 or not experiments:
        print(
            "scenario sweep needs at least one non-baseline scenario "
            "and one experiment",
            file=sys.stderr,
        )
        return 2

    try:
        contexts = {
            scenario_id: _context(
                args,
                scenario=scenario_id,
                archive=_sweep_archive(args, scenario_id),
            )
            for scenario_id in ids
        }
    except (ArchiveError, ReproError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    root = contexts["baseline"]
    for scenario_id in ids:
        if scenario_id != "baseline":
            root.api.register_scenario(contexts[scenario_id])

    grid: dict = {}
    rows = []
    for experiment_id in experiments:
        grid[experiment_id] = {}
        for scenario_id in ids:
            if scenario_id == "baseline":
                continue
            result = root.api.query(
                {
                    "kind": "diff",
                    "experiment": experiment_id,
                    "scenario": scenario_id,
                }
            )
            data = result.data
            grid[experiment_id][scenario_id] = data
            for metric, delta in sorted(data["measured_delta"].items()):
                rows.append((experiment_id, scenario_id, metric, delta))

    widths = [
        max(len(str(row[column])) for row in rows + [("experiment",
            "scenario", "metric", "delta-vs-baseline")])
        for column in range(4)
    ]
    header = ("experiment", "scenario", "metric", "delta-vs-baseline")
    print("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for experiment_id, scenario_id, metric, delta in rows:
        print(
            f"{experiment_id:<{widths[0]}}  {scenario_id:<{widths[1]}}  "
            f"{metric:<{widths[2]}}  {delta:+g}"
        )

    if args.json:
        payload = {
            "schema_version": 2,
            "scenarios": ids,
            "experiments": experiments,
            "results": jsonify(grid),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _sweep_archive(
    args: argparse.Namespace, scenario_id: str
) -> Optional[str]:
    """Build (or extend) the per-scenario archive for one sweep world."""
    import os

    if not args.archive_root:
        return None
    from .archive import ArchiveBuilder

    path = os.path.join(args.archive_root, scenario_id)
    config = (
        _scenario_spec(args, scenario_id).with_config(with_pki=False).compile()
    )
    builder = ArchiveBuilder(path, config, workers=args.workers)
    report = builder.build_standard(args.cadence)
    if report.written:
        print(
            f"[{scenario_id}] archived {len(report.written)} days "
            f"({report.bytes_written:,} bytes)",
            file=sys.stderr,
        )
    return path


_COMMANDS = {
    "list": _cmd_list,
    "info": _cmd_info,
    "run": _cmd_run,
    "report": _cmd_report,
    "resolve": _cmd_resolve,
    "bundle": _cmd_bundle,
    "timeline": _cmd_timeline,
    "archive": _cmd_archive,
    "scenario": _cmd_scenario,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
