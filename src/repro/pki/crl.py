"""Certificate revocation lists."""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Dict, List, Optional

from ..errors import RevocationError
from ..timeline import DateLike, as_date

__all__ = ["RevocationReason", "RevokedEntry", "CertificateRevocationList"]


class RevocationReason(enum.Enum):
    """RFC 5280 reason codes the simulation uses."""

    UNSPECIFIED = 0
    KEY_COMPROMISE = 1
    AFFILIATION_CHANGED = 3
    SUPERSEDED = 4
    CESSATION_OF_OPERATION = 5
    PRIVILEGE_WITHDRAWN = 9

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


class RevokedEntry:
    """One CRL entry."""

    __slots__ = ("serial", "revoked_on", "reason")

    def __init__(
        self, serial: int, revoked_on: DateLike, reason: RevocationReason
    ) -> None:
        self.serial = serial
        self.revoked_on = as_date(revoked_on)
        self.reason = reason

    def __repr__(self) -> str:
        return f"RevokedEntry(#{self.serial} on {self.revoked_on} ({self.reason}))"


class CertificateRevocationList:
    """The CRL of one issuing CA."""

    def __init__(self, issuer_organization: str) -> None:
        self.issuer_organization = issuer_organization
        self._entries: Dict[int, RevokedEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        serial: int,
        revoked_on: DateLike,
        reason: RevocationReason = RevocationReason.UNSPECIFIED,
    ) -> RevokedEntry:
        """Record a revocation; double revocation is an error."""
        if serial in self._entries:
            raise RevocationError(
                f"serial {serial} already revoked by {self.issuer_organization}"
            )
        entry = RevokedEntry(serial, revoked_on, reason)
        self._entries[serial] = entry
        return entry

    def entry_for(self, serial: int) -> Optional[RevokedEntry]:
        """The entry for ``serial``, or None."""
        return self._entries.get(serial)

    def is_revoked(self, serial: int, at: Optional[DateLike] = None) -> bool:
        """True when ``serial`` is revoked (as of ``at``, when given)."""
        entry = self._entries.get(serial)
        if entry is None:
            return False
        if at is None:
            return True
        return entry.revoked_on <= as_date(at)

    def entries(self) -> List[RevokedEntry]:
        """All entries, ordered by revocation date then serial."""
        return sorted(
            self._entries.values(), key=lambda e: (e.revoked_on, e.serial)
        )
