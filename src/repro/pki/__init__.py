"""WebPKI substrate: certificates, CAs, CRLs, OCSP, certificate store."""

from .ca import CaPolicy, CertificateAuthority
from .certificate import Certificate, DistinguishedName
from .crl import CertificateRevocationList, RevocationReason, RevokedEntry
from .ocsp import OcspResponder, OcspStatus
from .store import CertificateStore

__all__ = [
    "CaPolicy",
    "CertificateAuthority",
    "Certificate",
    "DistinguishedName",
    "CertificateRevocationList",
    "RevocationReason",
    "RevokedEntry",
    "OcspResponder",
    "OcspStatus",
    "CertificateStore",
]
