"""A queryable index of issued certificates (the Censys-index equivalent).

The analysis layer asks the same questions the paper asks of Censys' CT
index: certificates matching ``.ru``/``.рф``, per-issuer tallies, validity
windows, and revocation state joins.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..timeline import DateLike, as_date
from .certificate import Certificate

__all__ = ["CertificateStore"]


class CertificateStore:
    """An append-only collection of end-entity certificates."""

    def __init__(self) -> None:
        self._certificates: List[Certificate] = []
        self._by_fingerprint: Dict[str, Certificate] = {}

    def __len__(self) -> int:
        return len(self._certificates)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self._certificates)

    def add(self, certificate: Certificate) -> None:
        """Index a certificate; duplicates (same fingerprint) are ignored."""
        if certificate.fingerprint in self._by_fingerprint:
            return
        self._by_fingerprint[certificate.fingerprint] = certificate
        self._certificates.append(certificate)

    def add_all(self, certificates: Sequence[Certificate]) -> None:
        """Bulk :meth:`add`."""
        for certificate in certificates:
            self.add(certificate)

    def by_fingerprint(self, fingerprint: str) -> Optional[Certificate]:
        """Certificate with the given fingerprint, or None."""
        return self._by_fingerprint.get(fingerprint)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def filter(
        self, predicate: Callable[[Certificate], bool]
    ) -> List[Certificate]:
        """All certificates satisfying ``predicate``."""
        return [cert for cert in self._certificates if predicate(cert)]

    def matching_tlds(self, tlds: Sequence[str]) -> List[Certificate]:
        """Certificates with a CN or SAN under any of ``tlds``."""
        return self.filter(lambda cert: cert.secures_tld(tlds))

    def issued_between(
        self, start: DateLike, end: DateLike
    ) -> List[Certificate]:
        """Certificates with not_before in [start, end]."""
        lo, hi = as_date(start), as_date(end)
        return self.filter(lambda cert: lo <= cert.not_before <= hi)

    def validity_ending_after(self, cutoff: DateLike) -> List[Certificate]:
        """Certificates whose validity ends after ``cutoff``.

        This is Table 2's population: revocations are tallied across all
        certificates "whose validity ended after February 25, 2022".
        """
        boundary = as_date(cutoff)
        return self.filter(lambda cert: cert.not_after > boundary)

    def count_by_issuer(
        self, certificates: Optional[Sequence[Certificate]] = None
    ) -> Dict[str, int]:
        """Counts keyed by Issuer Organization."""
        counts: Dict[str, int] = {}
        for cert in self._certificates if certificates is None else certificates:
            org = cert.issuer.organization
            counts[org] = counts.get(org, 0) + 1
        return counts
