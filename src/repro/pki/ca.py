"""Certificate authorities: roots, brand intermediates, issuance, revocation.

CAs issue under *brand* common names (the paper notes DigiCert issues as
RapidSSL and GeoTrust, and suspects "isolated dots" in Figure 8 come from
lesser-known brand CNs escaping an issuance stop).  Each brand is an
intermediate certificate chaining to the CA's self-signed root.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional, Sequence

from ..errors import IssuanceError, RevocationError
from ..timeline import DateLike, as_date
from .certificate import Certificate, DistinguishedName
from .crl import CertificateRevocationList, RevocationReason, RevokedEntry
from .ocsp import OcspResponder

__all__ = ["CaPolicy", "CertificateAuthority"]


class CaPolicy:
    """Issuance policy knobs."""

    def __init__(
        self,
        validity_days: int = 365,
        ct_logging: bool = True,
        brands: Sequence[str] = (),
    ) -> None:
        if validity_days < 1:
            raise IssuanceError(f"validity must be positive: {validity_days}")
        self.validity_days = validity_days
        #: Whether issued certificates are submitted to CT logs.  The
        #: Russian Trusted Root CA famously does not log (Section 4.3).
        self.ct_logging = ct_logging
        self.brands = tuple(brands)


class CertificateAuthority:
    """One CA, with its root, brand intermediates, CRL, and OCSP."""

    _ROOT_VALIDITY_DAYS = 25 * 365

    def __init__(
        self,
        key: str,
        organization: str,
        country: str,
        policy: Optional[CaPolicy] = None,
        established: DateLike = _dt.date(2015, 1, 1),
    ) -> None:
        self.key = key
        self.organization = organization
        self.country = country
        self.policy = policy or CaPolicy(brands=(f"{organization} CA",))
        if not self.policy.brands:
            raise IssuanceError(f"CA {key} needs at least one brand")
        established_date = as_date(established)

        self._serial = 1
        root_dn = DistinguishedName(
            f"{organization} Root CA", organization, country
        )
        self.root = Certificate(
            serial=self._next_serial(),
            issuer=root_dn,
            subject_cn=f"{organization} Root CA",
            san=(),
            not_before=established_date,
            not_after=established_date + _dt.timedelta(days=self._ROOT_VALIDITY_DAYS),
            is_ca=True,
        )
        # Self-signed: the chain terminates here.
        self.root.issuer_cert = self.root

        self._intermediates: Dict[str, Certificate] = {}
        for brand in self.policy.brands:
            self._intermediates[brand] = Certificate(
                serial=self._next_serial(),
                issuer=root_dn,
                subject_cn=brand,
                san=(),
                not_before=established_date,
                not_after=established_date
                + _dt.timedelta(days=self._ROOT_VALIDITY_DAYS),
                is_ca=True,
                issuer_cert=self.root,
            )

        self._issued: Dict[int, Certificate] = {}
        self.crl = CertificateRevocationList(organization)
        self.ocsp = OcspResponder(organization, self.crl, self._issued.keys())

    def _next_serial(self) -> int:
        serial = self._serial
        self._serial += 1
        return serial

    @property
    def brands(self) -> List[str]:
        """Issuing brand CNs."""
        return list(self.policy.brands)

    def issued_count(self) -> int:
        """Number of end-entity certificates issued so far."""
        return len(self._issued)

    def issued_certificates(self) -> List[Certificate]:
        """All end-entity certificates, in serial order."""
        return [self._issued[s] for s in sorted(self._issued)]

    # ------------------------------------------------------------------
    # Issuance
    # ------------------------------------------------------------------

    def issue(
        self,
        names: Sequence[str],
        on: DateLike,
        brand: Optional[str] = None,
        validity_days: Optional[int] = None,
        ct_logs: Sequence = (),
    ) -> Certificate:
        """Issue an end-entity certificate for ``names`` dated ``on``.

        The first name becomes the CN; every name appears in the SAN (as
        real CAs do).  When ``ct_logs`` are given and the policy enables
        CT logging, the certificate is submitted (the precertificate
        flow) and the returned SCTs are embedded in ``certificate.scts``.
        """
        if not names:
            raise IssuanceError(f"{self.organization}: no names to certify")
        brand_cn = brand if brand is not None else self.policy.brands[0]
        intermediate = self._intermediates.get(brand_cn)
        if intermediate is None:
            raise IssuanceError(f"{self.organization} has no brand {brand_cn!r}")
        issue_date = as_date(on)
        days = validity_days if validity_days is not None else self.policy.validity_days
        certificate = Certificate(
            serial=self._next_serial(),
            issuer=DistinguishedName(brand_cn, self.organization, self.country),
            subject_cn=names[0],
            san=names,
            not_before=issue_date,
            not_after=issue_date + _dt.timedelta(days=days),
            issuer_cert=intermediate,
        )
        self._issued[certificate.serial] = certificate
        if ct_logs and self.policy.ct_logging:
            certificate.scts = tuple(
                log.add_chain(certificate, issue_date) for log in ct_logs
            )
        return certificate

    # ------------------------------------------------------------------
    # Revocation
    # ------------------------------------------------------------------

    def revoke(
        self,
        certificate: Certificate,
        on: DateLike,
        reason: RevocationReason = RevocationReason.UNSPECIFIED,
    ) -> RevokedEntry:
        """Revoke one of this CA's certificates."""
        if certificate.serial not in self._issued:
            raise RevocationError(
                f"{self.organization} never issued serial {certificate.serial}"
            )
        revoked_on = as_date(on)
        if revoked_on < certificate.not_before:
            raise RevocationError(
                f"cannot revoke serial {certificate.serial} before issuance"
            )
        return self.crl.add(certificate.serial, revoked_on, reason)

    def __repr__(self) -> str:
        return f"CertificateAuthority({self.organization!r}, {len(self._issued)} issued)"
