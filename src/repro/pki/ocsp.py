"""Online Certificate Status Protocol responder (simulated).

The paper reads revocation state from "CRLs and OCSP state as indexed by
Censys"; this responder is the OCSP half, answering GOOD / REVOKED /
UNKNOWN per certificate against its issuing CA's records.
"""

from __future__ import annotations

import enum

from ..timeline import DateLike
from .certificate import Certificate
from .crl import CertificateRevocationList

__all__ = ["OcspStatus", "OcspResponder"]


class OcspStatus(enum.Enum):
    """RFC 6960 certificate status values."""

    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class OcspResponder:
    """Answers status queries for one CA."""

    def __init__(
        self, issuer_organization: str, crl: CertificateRevocationList, known_serials
    ) -> None:
        self._issuer_organization = issuer_organization
        self._crl = crl
        # A live view (set-like) of serials the CA has issued.
        self._known_serials = known_serials

    def status(self, certificate: Certificate, at: DateLike) -> OcspStatus:
        """Status of ``certificate`` as of ``at``."""
        if certificate.issuer.organization != self._issuer_organization:
            return OcspStatus.UNKNOWN
        if certificate.serial not in self._known_serials:
            return OcspStatus.UNKNOWN
        if self._crl.is_revoked(certificate.serial, at):
            return OcspStatus.REVOKED
        return OcspStatus.GOOD
