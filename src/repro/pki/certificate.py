"""X.509-style certificates (the fields the paper's analysis reads).

A certificate here is not DER — it is the tuple of fields the study
extracts from CT logs and scan data: serial, issuer DN (with the Issuer
Organization used to attribute CAs), subject CN, SANs, validity window,
and the issuing chain (used to detect the Russian Trusted Root CA).
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from typing import List, Optional, Sequence, Tuple

from ..dns.idna import to_ascii
from ..errors import PkiError
from ..timeline import DateLike, as_date

__all__ = ["DistinguishedName", "Certificate"]


class DistinguishedName:
    """The subset of an X.509 DN the analysis uses."""

    __slots__ = ("common_name", "organization", "country")

    def __init__(self, common_name: str, organization: str, country: str) -> None:
        self.common_name = common_name
        self.organization = organization
        self.country = country

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistinguishedName):
            return NotImplemented
        return (
            self.common_name == other.common_name
            and self.organization == other.organization
            and self.country == other.country
        )

    def __hash__(self) -> int:
        return hash((self.common_name, self.organization, self.country))

    def __repr__(self) -> str:
        return f"DN(CN={self.common_name!r}, O={self.organization!r}, C={self.country})"


class Certificate:
    """One issued certificate."""

    __slots__ = (
        "serial",
        "issuer",
        "subject_cn",
        "san",
        "not_before",
        "not_after",
        "is_ca",
        "issuer_cert",
        "fingerprint",
        "scts",
    )

    def __init__(
        self,
        serial: int,
        issuer: DistinguishedName,
        subject_cn: str,
        san: Sequence[str],
        not_before: DateLike,
        not_after: DateLike,
        is_ca: bool = False,
        issuer_cert: Optional["Certificate"] = None,
    ) -> None:
        if serial < 0:
            raise PkiError(f"negative serial: {serial}")
        self.serial = serial
        self.issuer = issuer
        self.subject_cn = to_ascii(subject_cn)
        self.san: Tuple[str, ...] = tuple(to_ascii(name) for name in san)
        self.not_before = as_date(not_before)
        self.not_after = as_date(not_after)
        if self.not_after < self.not_before:
            raise PkiError(
                f"certificate {serial} expires before it begins "
                f"({self.not_after} < {self.not_before})"
            )
        self.is_ca = is_ca
        self.issuer_cert = issuer_cert
        self.fingerprint = self._fingerprint()
        #: Signed Certificate Timestamps embedded at issuance (CT logging).
        #: Empty for CAs that do not log — the Russian Trusted Root CA's
        #: distinguishing mark.  Not part of the fingerprint (SCTs cover
        #: the precertificate, not the other way round).
        self.scts: tuple = ()

    def _fingerprint(self) -> str:
        canonical = "|".join(
            [
                str(self.serial),
                self.issuer.common_name,
                self.issuer.organization,
                self.subject_cn,
                ",".join(self.san),
                self.not_before.isoformat(),
                self.not_after.isoformat(),
            ]
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Queries used by the analysis
    # ------------------------------------------------------------------

    def names(self) -> List[str]:
        """CN plus SANs, deduplicated, order-preserving."""
        seen = []
        for name in (self.subject_cn, *self.san):
            if name and name not in seen:
                seen.append(name)
        return seen

    def tlds(self) -> List[str]:
        """TLDs (A-label) of every secured name."""
        result = []
        for name in self.names():
            label = name.rsplit(".", 1)[-1] if "." in name else name
            if label and label not in result:
                result.append(label)
        return result

    def secures_tld(self, tlds: Sequence[str]) -> bool:
        """True when any CN/SAN falls under one of ``tlds``.

        This is the paper's "certificate matches .ru/.рф" predicate
        (footnote 6: CN *or* SAN under the studied TLDs).
        """
        wanted = {to_ascii(tld.lstrip(".")) for tld in tlds}
        return any(name.rsplit(".", 1)[-1] in wanted for name in self.names())

    def registered_domains(self) -> List[str]:
        """The registrable (SLD.TLD) domains secured, deduplicated."""
        result = []
        for name in self.names():
            labels = name.split(".")
            if len(labels) < 2:
                continue
            registrable = ".".join(labels[-2:])
            if registrable not in result:
                result.append(registrable)
        return result

    def is_valid_on(self, date: DateLike) -> bool:
        """True when ``date`` falls inside the validity window."""
        day = as_date(date)
        return self.not_before <= day <= self.not_after

    def chain(self) -> List["Certificate"]:
        """This certificate followed by its issuers up to the root."""
        chain: List[Certificate] = [self]
        current = self.issuer_cert
        while current is not None and current is not chain[-1]:
            chain.append(current)
            current = current.issuer_cert
        return chain

    def root(self) -> "Certificate":
        """The root certificate of the chain (may be self)."""
        return self.chain()[-1]

    def chain_contains_organization(self, organization: str) -> bool:
        """True when any chain element was issued by ``organization``."""
        return any(
            cert.issuer.organization == organization for cert in self.chain()
        )

    @property
    def validity_days(self) -> int:
        """Length of the validity window in days (inclusive bounds)."""
        return (self.not_after - self.not_before).days

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Certificate):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        return (
            f"Certificate(#{self.serial} {self.subject_cn!r} "
            f"by {self.issuer.organization!r})"
        )
