"""Deterministic random-number utilities.

Every stochastic component of the simulation derives its randomness from a
single scenario seed through :func:`derive_rng`, which hashes a sequence of
string labels into an independent stream.  This keeps runs bit-reproducible
while letting unrelated subsystems draw without interfering with each other
(adding draws in one subsystem never perturbs another).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "stable_hash"]

_HASH_BYTES = 8


def stable_hash(*labels: str) -> int:
    """Return a stable 64-bit hash of the given labels.

    Unlike Python's built-in :func:`hash`, the result does not vary across
    interpreter invocations (no ``PYTHONHASHSEED`` dependence).
    """
    digest = hashlib.sha256("\x1f".join(labels).encode("utf-8")).digest()
    return int.from_bytes(digest[:_HASH_BYTES], "big")


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive an independent 64-bit seed from ``root_seed`` and labels."""
    return stable_hash(str(root_seed), *labels) & 0xFFFFFFFFFFFFFFFF


def derive_rng(root_seed: int, *labels: str) -> np.random.Generator:
    """Return a numpy Generator seeded independently per label path.

    ``derive_rng(seed, "pki", "issuance")`` and
    ``derive_rng(seed, "registry")`` produce statistically independent
    streams that are each fully determined by ``seed``.
    """
    return np.random.default_rng(derive_seed(root_seed, *labels))
