"""A resilient stdlib client for the query service.

:class:`QueryClient` is the blessed way to talk to ``repro serve`` from
scripts and from ``repro query --url``: a synchronous ``http.client``
wrapper that survives exactly the failure modes the service is allowed
to exhibit under its resilience contract —

* **transient connection failures** (the service aborts a response
  write under injected faults; real networks drop packets) are retried
  against a bounded budget;
* **503 Service Unavailable** (backpressure, open circuit breaker,
  shutdown) is retried, honouring the ``Retry-After`` header;
* **504 Gateway Timeout** (a blown per-request deadline) is retried —
  the next attempt gets a fresh budget;
* backoff between attempts is exponential with **deterministic
  jitter**: the jitter stream is seeded through :func:`repro.rng.derive_rng`,
  so two runs of the same script pause for the same total time and a
  chaos test can assert on retry behaviour exactly.

Only idempotent work is ever retried.  ``GET``/``HEAD`` are idempotent
by definition; ``POST /v1/query`` is a pure read in this API, so
:meth:`QueryClient.query` opts in explicitly.  Everything else fails
fast on the first error.

The client is stdlib-only (``http.client``), matching the repo's
no-new-dependencies rule, and never follows redirects — the service
emits none.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Callable, Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from .errors import ReproError
from .rng import derive_rng

__all__ = ["ClientError", "ClientResponse", "QueryClient"]

#: Statuses that are worth a retry: the service says "not right now",
#: not "never".
RETRYABLE_STATUSES = frozenset({503, 504})

#: Default retry budget (total attempts = retries + 1).
DEFAULT_RETRIES = 3

#: Backoff shape: min(cap, base * 2**attempt) plus up to 50% jitter.
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 2.0

#: Upper bound on any single sleep, Retry-After included — a server
#: asking for a five-minute pause should not wedge a smoke script.
DEFAULT_MAX_SLEEP = 5.0


class ClientError(ReproError):
    """The request failed after exhausting its retry budget."""


class ClientResponse:
    """One HTTP response, fully read."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes) -> None:
        self.status = status
        #: Header names are lower-cased; last occurrence wins.
        self.headers = headers
        self.body = body

    @property
    def text(self) -> str:
        """The body decoded as UTF-8."""
        return self.body.decode("utf-8")

    @property
    def stale(self) -> bool:
        """True when the service answered from cache in degraded mode."""
        return self.headers.get("x-repro-stale", "").lower() == "true"

    @property
    def retry_after(self) -> Optional[float]:
        """The parsed ``Retry-After`` header (seconds), if present."""
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None

    def json(self) -> object:
        """The body decoded as JSON."""
        return json.loads(self.text)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        flag = " stale" if self.stale else ""
        return f"ClientResponse({self.status}{flag}, {len(self.body)} bytes)"


class QueryClient:
    """Synchronous client for one ``repro serve`` instance.

    ``seed`` fixes the backoff jitter stream; two clients built with the
    same seed sleep for identical durations on identical retry
    sequences.  ``sleep`` and a fake transport are injectable for
    tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        max_sleep: float = DEFAULT_MAX_SLEEP,
        deadline_ms: Optional[int] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parts.scheme not in ("", "http"):
            raise ClientError(f"only http:// service URLs are supported: {base_url}")
        if not parts.hostname:
            raise ClientError(f"service URL has no host: {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = float(timeout)
        if retries < 0:
            raise ClientError(f"retries must be >= 0: {retries}")
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_sleep = float(max_sleep)
        self.deadline_ms = deadline_ms
        self._sleep = sleep
        self._jitter = derive_rng(seed, "client", "backoff", f"{self.host}:{self.port}")
        #: (attempts, sleeps) bookkeeping for the last request — the
        #: smoke script and chaos tests assert on these.
        self.last_attempts = 0
        self.last_slept = 0.0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _once(
        self, method: str, path: str, body: Optional[bytes], headers: Dict[str, str]
    ) -> ClientResponse:
        """One attempt: connect, send, read fully, close."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            payload = raw.read()
            collected = {
                name.lower(): value for name, value in raw.getheaders()
            }
            return ClientResponse(raw.status, collected, payload)
        finally:
            connection.close()

    def _backoff(self, attempt: int, hint: Optional[float]) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        delay += delay * 0.5 * float(self._jitter.random())
        if hint is not None:
            delay = max(delay, hint)
        return min(delay, self.max_sleep)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        idempotent: Optional[bool] = None,
    ) -> ClientResponse:
        """Issue one request, retrying transient failures when allowed.

        ``idempotent`` defaults from the method (GET/HEAD yes, anything
        else no); pass ``True`` for write-shaped calls that are really
        pure reads.  Non-idempotent requests get exactly one attempt.
        """
        if idempotent is None:
            idempotent = method.upper() in ("GET", "HEAD")
        sent = dict(headers or {})
        if self.deadline_ms is not None:
            sent.setdefault("X-Repro-Deadline-Ms", str(int(self.deadline_ms)))
        if body is not None:
            sent.setdefault("Content-Type", "application/json")
        budget = self.retries if idempotent else 0
        self.last_attempts = 0
        self.last_slept = 0.0
        failure: Optional[str] = None
        for attempt in range(budget + 1):
            self.last_attempts = attempt + 1
            hint: Optional[float] = None
            try:
                response = self._once(method, path, body, sent)
            except (
                ConnectionError,
                socket.timeout,
                socket.gaierror,
                http.client.HTTPException,
                OSError,
            ) as exc:
                failure = f"{type(exc).__name__}: {exc}"
            else:
                if response.status not in RETRYABLE_STATUSES:
                    return response
                failure = f"HTTP {response.status}"
                hint = response.retry_after
                if attempt >= budget:
                    # Out of budget: surface the service's own answer
                    # (a structured 503/504 envelope) over an exception.
                    return response
            if attempt >= budget:
                break
            pause = self._backoff(attempt, hint)
            self.last_slept += pause
            self._sleep(pause)
        raise ClientError(
            f"{method} {path} failed after {self.last_attempts} attempt(s): "
            f"{failure}"
        )

    # ------------------------------------------------------------------
    # Service verbs
    # ------------------------------------------------------------------

    def get(self, path: str, **kwargs) -> ClientResponse:
        return self.request("GET", path, **kwargs)

    def query(self, spec) -> ClientResponse:
        """Execute one query spec remotely.

        Accepts a :class:`~repro.api.spec.QuerySpec`, a dict, or JSON
        text; posts the canonical spec and retries under the idempotent
        policy — the query API is a pure read.

        Scenario-dimensioned specs (a non-baseline ``scenario`` field or
        the ``diff`` kind) are posted to ``/v2/query``; everything else
        goes to ``/v1/query``, so a v2-aware client keeps working
        against a pre-scenario-engine service for the queries that
        service can answer.
        """
        from .api.spec import QuerySpec

        if isinstance(spec, QuerySpec):
            payload = spec.to_dict()
        elif isinstance(spec, str):
            payload = QuerySpec.from_json(spec).to_dict()
        elif isinstance(spec, dict):
            payload = QuerySpec.from_dict(spec).to_dict()
        else:
            raise ClientError(
                f"cannot build a query spec from {type(spec).__name__}"
            )
        path = (
            "/v2/query"
            if "scenario" in payload or payload.get("kind") == "diff"
            else "/v1/query"
        )
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return self.request(
            "POST", path, body=body.encode("utf-8"), idempotent=True
        )

    def scenarios(self) -> ClientResponse:
        """List the scenario worlds the service answers for (GET /v2/scenarios)."""
        return self.get("/v2/scenarios")

    def healthz(self) -> ClientResponse:
        return self.get("/healthz")

    def events(
        self, since: int = 0, limit: Optional[int] = None
    ) -> ClientResponse:
        """One page of the change-event log (GET /v1/events)."""
        path = f"/v1/events?since={int(since)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self.get(path)

    def follow_events(
        self,
        since: int = 0,
        limit: Optional[int] = None,
        retries: Optional[int] = None,
    ) -> Iterator[object]:
        """Follow the live change feed (GET ``/v1/events/stream``).

        A generator of decoded :class:`~repro.live.sse.SseFrame`
        objects — change events plus explicit ``gap`` markers for
        ranges the server dropped on a slow consumer.  The stream
        survives exactly the failure modes the SSE contract allows:

        * a connection torn **mid-frame** (injected ``live.sse_write``
          faults, real network drops) reconnects with
          ``Last-Event-ID`` set to the last *fully received* frame, so
          the resumed feed is gapless and duplicate-free;
        * reconnects draw on a retry budget (``retries``, defaulting
          to the client's) that refills whenever a connection makes
          progress, with the same deterministic jittered backoff as
          :meth:`request`;
        * the generator ends once ``limit`` events have arrived, or
          when the stream closes cleanly at a frame boundary and the
          service reports its follow range fully ingested.
        """
        from .live.sse import GAP_EVENT, SseParser

        budget = self.retries if retries is None else int(retries)
        if budget < 0:
            raise ClientError(f"retries must be >= 0: {budget}")
        last_id = int(since)
        received = 0
        failures = 0
        self.last_attempts = 0
        self.last_slept = 0.0
        while True:
            self.last_attempts += 1
            progressed = False
            failure: Optional[str] = None
            path = f"/v1/events/stream?since={last_id}"
            if limit is not None:
                path += f"&limit={limit - received}"
            parser = SseParser()
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(
                    "GET", path, headers={"Last-Event-ID": str(last_id)}
                )
                raw = connection.getresponse()
                if raw.status != 200:
                    body = raw.read()
                    failure = f"HTTP {raw.status}"
                    if raw.status not in RETRYABLE_STATUSES:
                        raise ClientError(
                            f"GET {path} failed: {failure}: "
                            f"{body[:200].decode('utf-8', 'replace')}"
                        )
                else:
                    while True:
                        chunk = raw.read(1024)
                        if not chunk:
                            break
                        for frame in parser.feed(chunk):
                            if frame.event is None and not frame.data:
                                continue
                            if frame.seq is not None:
                                last_id = frame.seq
                            progressed = True
                            yield frame
                            if frame.event != GAP_EVENT:
                                received += 1
                            if limit is not None and received >= limit:
                                return
                    failure = "stream closed"
            except (
                ConnectionError,
                socket.timeout,
                socket.gaierror,
                http.client.HTTPException,
                OSError,
            ) as exc:
                failure = f"{type(exc).__name__}: {exc}"
            finally:
                connection.close()
            if progressed:
                failures = 0
            if failure == "stream closed" and not parser.pending:
                # A clean close at a frame boundary: the server ends the
                # stream only when its follow range is done and the log
                # is drained (or the limit was served, handled above).
                if self._follow_done():
                    return
            failures += 1
            if failures > budget:
                raise ClientError(
                    f"event stream failed after {failures} attempt(s): "
                    f"{failure}"
                )
            pause = self._backoff(failures - 1, None)
            self.last_slept += pause
            self._sleep(pause)

    def _follow_done(self) -> bool:
        """Best-effort check: has the service finished its follow range?"""
        try:
            response = self._once("GET", "/healthz", None, {})
        except (ConnectionError, socket.timeout, OSError):
            return False
        if response.status != 200:
            return False
        try:
            payload = response.json()
        except ValueError:
            return False
        if not isinstance(payload, dict):
            return False
        detail = payload.get("follow_detail")
        return isinstance(detail, dict) and bool(detail.get("done"))

    def metrics(self) -> ClientResponse:
        return self.get("/metrics")

    def wait_ready(
        self, deadline_seconds: float = 10.0, interval: float = 0.1
    ) -> Dict[str, object]:
        """Poll ``/healthz`` until the service answers; return its payload.

        Accepts any serving state (``live``/``ready``/``degraded``) —
        readiness here means the socket answers, not that the breaker is
        closed.  Raises :class:`ClientError` on timeout.
        """
        stop = time.monotonic() + deadline_seconds
        last: Optional[str] = None
        while time.monotonic() < stop:
            try:
                response = self._once("GET", "/healthz", None, {})
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = f"{type(exc).__name__}: {exc}"
            else:
                if response.status == 200:
                    payload = response.json()
                    if isinstance(payload, dict):
                        return payload
                last = f"HTTP {response.status}"
            self._sleep(interval)
        raise ClientError(
            f"service at {self.host}:{self.port} not ready after "
            f"{deadline_seconds:.1f}s ({last})"
        )
