"""Measurement records: what one OpenINTEL-style sweep observes per domain.

This is the analysis layer's *only* input schema: for each registered
domain on each measured day, the NS target names, the addresses those
name servers resolve to, and the apex A-record addresses.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional, Tuple

from ..dns.name import DomainName

__all__ = ["DomainMeasurement"]


class DomainMeasurement:
    """One (domain, day) observation."""

    __slots__ = (
        "date",
        "domain",
        "domain_index",
        "ns_names",
        "ns_addresses",
        "apex_addresses",
    )

    def __init__(
        self,
        date: _dt.date,
        domain: DomainName,
        ns_names: Tuple[str, ...],
        ns_addresses: Tuple[int, ...],
        apex_addresses: Tuple[int, ...],
        domain_index: Optional[int] = None,
    ) -> None:
        self.date = date
        self.domain = domain
        #: NS target hostnames, sorted (measurement normalises ordering).
        self.ns_names = tuple(sorted(ns_names))
        #: Addresses of the authoritative name servers, sorted.
        self.ns_addresses = tuple(sorted(ns_addresses))
        #: Apex A-record addresses, sorted.
        self.apex_addresses = tuple(sorted(apex_addresses))
        #: Registry index when known (fast path); None from raw resolution.
        self.domain_index = domain_index

    def ns_tlds(self) -> Tuple[str, ...]:
        """Distinct TLDs of the NS names, sorted."""
        tlds = {name.rsplit(".", 1)[-1] for name in self.ns_names}
        return tuple(sorted(tlds))

    def key(self) -> Tuple:
        """Comparable content tuple (used by equivalence tests)."""
        return (
            self.date,
            str(self.domain),
            self.ns_names,
            self.ns_addresses,
            self.apex_addresses,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainMeasurement):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return (
            f"DomainMeasurement({self.date} {self.domain} "
            f"ns={len(self.ns_names)} apex={len(self.apex_addresses)})"
        )
