"""The resolving (honest-path) measurement collector.

Performs the actual OpenINTEL query pattern per domain against a DNS
hierarchy built from world state: ``NS`` for the domain, ``A`` for every
name-server target, and ``A`` for the apex — walking from the root hints
through real referrals, glue, and caches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dns.cache import ResolverCache
from ..dns.name import DomainName
from ..dns.rdata import RRType
from ..dns.resolver import IterativeResolver
from ..errors import ResolutionError
from ..timeline import DateLike, DayClock, as_date
from ..sim.dnsbuild import DnsTreeBuilder
from ..sim.world import World
from .metrics import SweepMetrics
from .records import DomainMeasurement

__all__ = ["ResolvingCollector"]


class ResolvingCollector:
    """Measures domains by genuinely resolving them."""

    def __init__(self, world: World, metrics: Optional[SweepMetrics] = None) -> None:
        self._world = world
        self._builder = DnsTreeBuilder(world)
        self._metrics = metrics

    def collect(
        self, date: DateLike, domain_indices: Optional[Sequence[int]] = None
    ) -> List[DomainMeasurement]:
        """Measure the given domains (default: every active one) on ``date``.

        Domains that fail to resolve (a real possibility during simulated
        outages) are skipped, as a production pipeline would log-and-skip.
        """
        date_obj = as_date(date)
        if domain_indices is None:
            domain_indices = self._world.population.active_indices(date_obj)
        tree = self._builder.build(date_obj, domain_indices)
        clock = DayClock(date_obj)
        resolver = IterativeResolver(
            tree.network,
            tree.root_addresses,
            clock=clock,
            cache=ResolverCache(clock),
        )

        results: List[DomainMeasurement] = []
        for index in domain_indices:
            index = int(index)
            name = self._world.population.record(index).name
            measurement = self._measure_one(resolver, date_obj, name, index)
            if measurement is not None:
                results.append(measurement)
        # Close out the measurement day: per-day cache hit rates feed the
        # instrumentation layer instead of bleeding into the next day.
        day_stats = resolver.cache.flush()
        if self._metrics is not None:
            self._metrics.record_cache(
                "resolver", day_stats.hits, day_stats.misses
            )
        return results

    def _measure_one(
        self,
        resolver: IterativeResolver,
        date,
        name: DomainName,
        index: int,
    ) -> Optional[DomainMeasurement]:
        try:
            ns_result = resolver.resolve(name, RRType.NS)
            if not ns_result.ok:
                return None
            ns_targets = ns_result.ns_targets()
            ns_addresses: List[int] = []
            for target in ns_targets:
                target_result = resolver.resolve(target, RRType.A)
                ns_addresses.extend(target_result.addresses())
            apex_result = resolver.resolve(name, RRType.A)
        except ResolutionError:
            return None
        return DomainMeasurement(
            date,
            name,
            tuple(str(target) for target in ns_targets),
            tuple(ns_addresses),
            tuple(apex_result.addresses()),
            domain_index=index,
        )
