"""Sweep instrumentation: per-phase wall time, throughput, cache stats.

A :class:`SweepMetrics` registry hangs off the experiment context.  Each
expensive phase (world build, full sweep, recent sweep, CT monitor, scan
sweeps) runs under ``with metrics.phase("name") as stat:`` and records
how many snapshots it processed; caches report hit/miss counters through
:meth:`SweepMetrics.record_cache`.  ``repro run <id> --profile`` renders
the registry, and :func:`repro.experiments.run_experiment` attaches the
structured :meth:`summary` dict to ``ExperimentResult.measured``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["PhaseStat", "SweepMetrics", "current_rss_bytes"]


def current_rss_bytes() -> int:
    """This process's resident set size in bytes (0 if unmeasurable).

    Reads ``/proc/self/statm`` (resident pages x page size — the live
    value, so repeated samples track a build's actual footprint over
    time).  Platforms without procfs fall back to
    ``resource.getrusage`` peak RSS; without either the hook degrades
    to 0 and memory accounting simply reports nothing.  No third-party
    dependency (psutil) is required.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(peak) * (1024 if sys.platform.startswith("linux") else 1)
    except Exception:
        return 0


class PhaseStat:
    """Accumulated timing for one named phase."""

    __slots__ = ("name", "wall_seconds", "snapshots", "runs", "notes")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Total wall-clock time spent in this phase, seconds.
        self.wall_seconds = 0.0
        #: Snapshots (measurement days) processed by this phase.
        self.snapshots = 0
        #: Times the phase ran (cache hits skip reruns).
        self.runs = 0
        #: Free-form annotations (executor kind, chunk count, ...).
        self.notes: Dict[str, object] = {}

    @property
    def snapshots_per_second(self) -> float:
        """Throughput; 0.0 when the phase did no timed work."""
        if self.wall_seconds <= 0.0 or self.snapshots == 0:
            return 0.0
        return self.snapshots / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for structured reporting."""
        payload: Dict[str, object] = {
            "wall_seconds": round(self.wall_seconds, 6),
            "snapshots": self.snapshots,
            "snapshots_per_second": round(self.snapshots_per_second, 2),
            "runs": self.runs,
        }
        payload.update(self.notes)
        return payload

    def __repr__(self) -> str:
        return (
            f"PhaseStat({self.name!r}, {self.wall_seconds:.3f}s, "
            f"{self.snapshots} snapshots)"
        )


class SweepMetrics:
    """Registry of phase timings and cache hit/miss counters."""

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStat] = {}
        self._caches: Dict[str, Dict[str, int]] = {}
        self._recovery: Dict[str, int] = {}
        self._endpoints: Dict[str, Dict[str, object]] = {}
        self._counters: Dict[str, int] = {}
        self._peak_rss = 0
        self._rss_samples = 0
        # The service records from executor threads while /metrics
        # renders on the event loop; every mutation and every snapshot
        # holds this one lock, so a summary is a single consistent
        # copy, never a mix of per-field reads mid-update.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStat]:
        """Time one phase run; wall time accumulates across runs."""
        with self._lock:
            stat = self._phases.setdefault(name, PhaseStat(name))
            stat.runs += 1
        started = time.perf_counter()
        try:
            yield stat
        finally:
            with self._lock:
                stat.wall_seconds += time.perf_counter() - started

    def get_phase(self, name: str) -> Optional[PhaseStat]:
        """The stat for ``name`` if that phase ever ran."""
        return self._phases.get(name)

    def phases(self) -> List[PhaseStat]:
        """All phase stats in first-run order."""
        return list(self._phases.values())

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------

    def record_cache(self, name: str, hits: int, misses: int) -> None:
        """Accumulate hit/miss counters for one named cache."""
        with self._lock:
            counters = self._caches.setdefault(
                name, {"hits": 0, "misses": 0}
            )
            counters["hits"] += int(hits)
            counters["misses"] += int(misses)

    def cache_hit_rate(self, name: str) -> float:
        """Hits per lookup in [0, 1] (0.0 for unknown/idle caches)."""
        with self._lock:
            counters = self._caches.get(name)
            if not counters:
                return 0.0
            total = counters["hits"] + counters["misses"]
            return counters["hits"] / total if total else 0.0

    # ------------------------------------------------------------------
    # Service endpoints
    # ------------------------------------------------------------------

    def record_endpoint(
        self, name: str, seconds: float, status: int
    ) -> None:
        """Accumulate one served request for a named endpoint.

        Tracks request count, error count (HTTP status >= 400), total
        and maximum latency; ``/metrics`` and ``--profile-json`` expose
        the aggregate under ``endpoints``.
        """
        with self._lock:
            stat = self._endpoints.setdefault(
                name,
                {"requests": 0, "errors": 0,
                 "wall_seconds": 0.0, "max_seconds": 0.0},
            )
            stat["requests"] = int(stat["requests"]) + 1
            if int(status) >= 400:
                stat["errors"] = int(stat["errors"]) + 1
            stat["wall_seconds"] = float(stat["wall_seconds"]) + float(seconds)
            stat["max_seconds"] = max(
                float(stat["max_seconds"]), float(seconds)
            )

    def endpoint_stats(self, name: str) -> Optional[Dict[str, object]]:
        """The accumulated stats for one endpoint (None if never hit)."""
        return self._endpoints.get(name)

    # ------------------------------------------------------------------
    # Free-form counters (coalesced requests, backpressure rejections...)
    # ------------------------------------------------------------------

    def record_counter(self, name: str, count: int = 1) -> None:
        """Bump one named monotonic counter.

        The serving layer's standard names: ``requests_total``,
        ``requests_coalesced``, ``requests_rejected``,
        ``requests_stale`` (degraded-mode answers from the result LRU),
        ``deadline_exceeded`` (requests answered 504), and the breaker
        transition counters ``breaker_opened`` / ``breaker_half_open``
        / ``breaker_closed``.
        """
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(count)

    def counter(self, name: str) -> int:
        """The named counter's value (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    def sample_rss(self) -> int:
        """Sample this process's RSS; the maximum seen is retained.

        The streaming build path calls this at chunk boundaries, so
        ``peak_rss_bytes`` reflects the build's real high-water mark
        rather than a single end-of-run reading.  Returns the sampled
        value (0 when the platform offers no measurement).
        """
        rss = current_rss_bytes()
        with self._lock:
            self._rss_samples += 1
            if rss > self._peak_rss:
                self._peak_rss = rss
        return rss

    @property
    def peak_rss_bytes(self) -> int:
        """Highest RSS sampled so far (0 if never sampled/unmeasurable)."""
        with self._lock:
            return self._peak_rss

    # ------------------------------------------------------------------
    # Recovery counters
    # ------------------------------------------------------------------

    def record_recovery(self, name: str, count: int = 1) -> None:
        """Count a self-healing action (retry, quarantine, rebuild...).

        The standard counter names are ``faults_injected``,
        ``chunk_retries``, ``pool_failures``, ``degraded_to_serial``,
        ``shards_quarantined``, and ``shards_rebuilt``.
        """
        with self._lock:
            self._recovery[name] = self._recovery.get(name, 0) + int(count)

    def recovery_count(self, name: str) -> int:
        """How often the named recovery action ran (0 if never)."""
        with self._lock:
            return self._recovery.get(name, 0)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Structured dict: per-phase timing, cache hit rates, recovery.

        Taken as one consistent copy under the registry lock, so a
        snapshot rendered while requests are in flight never mixes a
        counter's old value with a sibling's new one.
        """
        with self._lock:
            return {
                "phases": {
                    name: stat.as_dict() for name, stat in self._phases.items()
                },
                "caches": {
                    name: {
                        "hits": counters["hits"],
                        "misses": counters["misses"],
                        "hit_rate": round(self.cache_hit_rate(name), 4),
                    }
                    for name, counters in self._caches.items()
                },
                "recovery": dict(self._recovery),
                "endpoints": {
                    name: {
                        "requests": stat["requests"],
                        "errors": stat["errors"],
                        "wall_seconds": round(float(stat["wall_seconds"]), 6),
                        "max_seconds": round(float(stat["max_seconds"]), 6),
                        "mean_seconds": round(
                            float(stat["wall_seconds"]) / int(stat["requests"]), 6
                        )
                        if stat["requests"]
                        else 0.0,
                    }
                    for name, stat in self._endpoints.items()
                },
                "counters": dict(self._counters),
                "memory": {
                    "peak_rss_bytes": self._peak_rss,
                    "rss_samples": self._rss_samples,
                },
            }

    def render(self) -> str:
        """Human-readable profile (what ``--profile`` prints)."""
        lines = ["profile:"]
        if not any(
            (
                self._phases,
                self._caches,
                self._recovery,
                self._endpoints,
                self._counters,
                self._peak_rss,
            )
        ):
            lines.append("  (no instrumented work ran)")
            return "\n".join(lines)
        for stat in self._phases.values():
            rate = (
                f"{stat.snapshots_per_second:,.1f} snapshots/s"
                if stat.snapshots
                else "-"
            )
            notes = "".join(
                f" {key}={value}" for key, value in sorted(stat.notes.items())
            )
            lines.append(
                f"  {stat.name:<16} {stat.wall_seconds:8.3f}s  "
                f"{stat.snapshots:>6} days  {rate}{notes}"
            )
        for name, counters in self._caches.items():
            total = counters["hits"] + counters["misses"]
            lines.append(
                f"  cache {name:<10} {counters['hits']}/{total} hits "
                f"({100.0 * self.cache_hit_rate(name):.1f}%)"
            )
        for name, count in self._recovery.items():
            lines.append(f"  recovery {name:<20} {count}")
        for name, stat in self._endpoints.items():
            mean = (
                float(stat["wall_seconds"]) / int(stat["requests"])
                if stat["requests"]
                else 0.0
            )
            lines.append(
                f"  endpoint {name:<20} {stat['requests']:>5} req  "
                f"{stat['errors']} err  mean {1000.0 * mean:.1f}ms  "
                f"max {1000.0 * float(stat['max_seconds']):.1f}ms"
            )
        for name, count in self._counters.items():
            lines.append(f"  counter {name:<21} {count}")
        if self._peak_rss:
            lines.append(
                f"  memory peak_rss          "
                f"{self._peak_rss / (1024 * 1024):,.1f} MiB "
                f"({self._rss_samples} samples)"
            )
        return "\n".join(lines)
