"""The fast (columnar) measurement collector.

Derives per-day measurement state directly from world assignment arrays.
Record-level equivalence with the resolving collector is asserted by the
integration suite; long longitudinal sweeps then use this path, exactly
as a production measurement platform trades per-query work for
throughput.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import MeasurementError
from ..rng import derive_rng
from ..timeline import DateLike, as_date
from ..sim.world import World, WorldDay
from .records import DomainMeasurement

__all__ = ["DailySnapshot", "FastCollector"]

#: The paper's footnote-8 measurement outage date.
DEFAULT_OUTAGE_DATES = (_dt.date(2021, 3, 22),)
_OUTAGE_COVERAGE = 0.62


class DailySnapshot:
    """One day of collected measurements, columnar."""

    __slots__ = ("date", "measured", "hosting_ids", "dns_ids", "epoch", "_world")

    def __init__(self, world: World, day: WorldDay, measured: np.ndarray) -> None:
        self.date = day.date
        #: Indices of domains actually measured this day (outages shrink it).
        self.measured = measured
        self.hosting_ids = day.hosting_ids
        self.dns_ids = day.dns_ids
        self.epoch = day.epoch
        self._world = world

    def __len__(self) -> int:
        return len(self.measured)

    @property
    def world(self) -> World:
        """The world this snapshot was collected from."""
        return self._world

    def measured_dns_ids(self) -> np.ndarray:
        """DNS plan id per measured domain."""
        return self.dns_ids[self.measured]

    def measured_hosting_ids(self) -> np.ndarray:
        """Hosting plan id per measured domain."""
        return self.hosting_ids[self.measured]

    def subset(self, indices: Sequence[int]) -> np.ndarray:
        """The measured subset restricted to ``indices`` (e.g. sanctioned)."""
        wanted = np.asarray(indices, dtype=np.int64)
        mask = np.isin(self.measured, wanted)
        return self.measured[mask]

    def measurement_for(self, domain_index: int) -> DomainMeasurement:
        """Materialise the per-domain record (slow; used for sampling)."""
        world = self._world
        record = world.population.record(int(domain_index))
        dns_plan = world.dns_plans.plan(int(self.dns_ids[domain_index]))
        ns_names = tuple(str(h) for h in dns_plan.ns_hostnames)
        ns_addresses = tuple(
            self.epoch.ns_addresses[name] for name in ns_names
        )
        apex = world.apex_addresses_for_plan(
            int(domain_index), int(self.hosting_ids[domain_index])
        )
        return DomainMeasurement(
            self.date, record.name, ns_names, ns_addresses, apex,
            domain_index=int(domain_index),
        )

    def measurements(
        self, indices: Optional[Sequence[int]] = None
    ) -> Iterator[DomainMeasurement]:
        """Materialised records for ``indices`` (default: all measured)."""
        for index in self.measured if indices is None else indices:
            yield self.measurement_for(int(index))


class FastCollector:
    """Sweeps the world day by day, honouring measurement outages."""

    def __init__(
        self,
        world: World,
        outage_dates: Sequence[_dt.date] = DEFAULT_OUTAGE_DATES,
        outage_coverage: float = _OUTAGE_COVERAGE,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= outage_coverage <= 1.0:
            raise MeasurementError(
                f"outage_coverage out of [0, 1]: {outage_coverage}"
            )
        self._world = world
        self._outages: Set[_dt.date] = set(outage_dates)
        self._outage_coverage = outage_coverage
        self._seed = seed

    @property
    def world(self) -> World:
        """The world being measured."""
        return self._world

    @property
    def outage_dates(self) -> Tuple[_dt.date, ...]:
        """The configured measurement-outage dates, sorted."""
        return tuple(sorted(self._outages))

    @property
    def outage_coverage(self) -> float:
        """Fraction of domains still measured on an outage day."""
        return self._outage_coverage

    @property
    def seed(self) -> int:
        """The outage-sampling seed."""
        return self._seed

    def collect(self, date: DateLike) -> DailySnapshot:
        """Collect one day (random access)."""
        day = self._world.day_view(date)
        return DailySnapshot(self._world, day, self._measured(day))

    def sweep(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> Iterator[DailySnapshot]:
        """Collect every ``step`` days in [start, end] (efficient path)."""
        for day in self._world.sweep(start, end, step):
            yield DailySnapshot(self._world, day, self._measured(day))

    def _measured(self, day: WorldDay) -> np.ndarray:
        if day.date not in self._outages:
            return day.active
        rng = derive_rng(self._seed, "outage", day.date.isoformat())
        keep = rng.random(len(day.active)) < self._outage_coverage
        return day.active[keep]
