"""Measurement: OpenINTEL-style collectors over the simulated world."""

from .fast import DailySnapshot, FastCollector
from .quality import CoveragePoint, MeasurementHealth
from .records import DomainMeasurement
from .resolving import ResolvingCollector
from .seeds import ZoneTransferSeeder

__all__ = [
    "DailySnapshot",
    "CoveragePoint",
    "MeasurementHealth",
    "FastCollector",
    "DomainMeasurement",
    "ResolvingCollector",
    "ZoneTransferSeeder",
]
