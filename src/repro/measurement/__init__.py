"""Measurement: OpenINTEL-style collectors over the simulated world."""

from .fast import DailySnapshot, FastCollector
from .metrics import PhaseStat, SweepMetrics
from .quality import CoveragePoint, MeasurementHealth
from .records import DomainMeasurement
from .resolving import ResolvingCollector
from .seeds import ZoneTransferSeeder
from .sweep import (
    ProcessChunkExecutor,
    SerialChunkExecutor,
    SweepChunk,
    SweepEngine,
    partition_chunks,
)

__all__ = [
    "DailySnapshot",
    "CoveragePoint",
    "MeasurementHealth",
    "FastCollector",
    "DomainMeasurement",
    "PhaseStat",
    "ProcessChunkExecutor",
    "ResolvingCollector",
    "SerialChunkExecutor",
    "SweepChunk",
    "SweepEngine",
    "SweepMetrics",
    "ZoneTransferSeeder",
    "partition_chunks",
]
