"""Zone-transfer seeding: how OpenINTEL really obtains its seed lists.

The paper (Section 2) describes the measurement platform using "daily
zone file snapshots as seeds".  This module performs that step honestly:
an AXFR of the ``.ru`` and ``.рф`` zones from their authoritative
servers, extracting the delegated names.  The result is proven (in the
integration suite) to equal the registry's own active-registration list —
the shortcut the fast path takes.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Sequence

from ..dns.name import DomainName
from ..dns.rdata import RRType
from ..errors import MeasurementError
from ..sim.dnsbuild import DnsTreeBuilder
from ..sim.world import World
from ..timeline import DateLike, as_date

__all__ = ["ZoneTransferSeeder"]


class ZoneTransferSeeder:
    """Builds daily seed lists by transferring the registry zones."""

    def __init__(self, world: World, tlds: Sequence[str] = ("ru", "xn--p1ai")) -> None:
        self._world = world
        self._builder = DnsTreeBuilder(world)
        self._tlds = tuple(tlds)

    def seed_names(self, date: DateLike) -> List[DomainName]:
        """The registered (delegated) names on ``date``, via AXFR."""
        date_obj = as_date(date)
        tree = self._builder.build(date_obj)
        names: List[DomainName] = []
        for tld in self._tlds:
            address = tree.tld_addresses.get(tld)
            if address is None:
                raise MeasurementError(f"no authoritative server for .{tld}")
            origin = DomainName.parse(tld)
            rrsets = tree.network.transfer(address, origin)
            for rrset in rrsets:
                if rrset.rtype is RRType.NS and rrset.name != origin:
                    names.append(rrset.name)
        return sorted(set(names))

    def seed_count(self, date: DateLike) -> int:
        """Number of seeded names on ``date``."""
        return len(self.seed_names(date))
