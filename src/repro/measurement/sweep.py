"""The parallel sweep engine.

Longitudinal sweeps partition their date range into chunks of
measurement days; each chunk is evaluated by a day reducer (see
:mod:`repro.core.reducers`) either in-process or across worker
processes, and the per-chunk record lists are concatenated in date
order.  Two properties make chunking safe here:

* :meth:`repro.sim.world.World.sweep` derives each day's state from the
  event log deterministically, so a sweep starting mid-range yields the
  same :class:`WorldDay` views as the corresponding tail of a full
  sweep;
* outage subsampling is keyed per-date (``derive_rng(seed, "outage",
  date)``), independent of sweep position.

Worker processes rebuild the world from the scenario config (world
construction is deterministic by seed), so nothing larger than the
config, the reducer, and the day records ever crosses the process
boundary.  When no config is available — the caller supplied a
ready-made world — the engine falls back to the deterministic
in-process executor, which runs the identical chunked code path
serially, keeping results bit-identical.

The engine is **self-healing**: a chunk that fails (a crashed worker,
a transient IO error, an injected fault from :mod:`repro.faults`) is
retried with bounded backoff under a fresh per-attempt fault key, a
broken process pool is recreated, and after repeated pool failures the
engine degrades to the serial executor for whatever chunks are still
missing.  Chunk evaluation is deterministic, so every recovery path
converges on results bit-identical to an undisturbed run; the recovery
actions themselves are counted in :class:`SweepMetrics`
(``chunk_retries``, ``pool_failures``, ``degraded_to_serial``,
``faults_injected``).
"""

from __future__ import annotations

import datetime as _dt
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MeasurementError, RecoveryError
from ..faults import TransientIOError, WorkerCrashed, mark_worker_process, sync_fault_metrics
from ..ioutil import backoff_seconds
from ..timeline import DateLike, as_date
from .fast import FastCollector
from .metrics import SweepMetrics

__all__ = [
    "SweepChunk",
    "partition_chunks",
    "SerialChunkExecutor",
    "ProcessChunkExecutor",
    "ExecutorBroken",
    "SweepEngine",
]

#: Exceptions that mean "this chunk failed, try it again".
_CHUNK_FAILURES = (WorkerCrashed, OSError)


class SweepChunk:
    """A contiguous run of measurement days on the sweep's step grid."""

    __slots__ = ("index", "start", "end", "step")

    def __init__(self, index: int, start: _dt.date, end: _dt.date, step: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.step = step

    @property
    def days(self) -> int:
        """Number of measurement days in the chunk."""
        return (self.end - self.start).days // self.step + 1

    def __repr__(self) -> str:
        return f"SweepChunk(#{self.index} {self.start}..{self.end} /{self.step})"


def partition_chunks(
    start: DateLike, end: DateLike, step: int, chunk_days: int
) -> List[SweepChunk]:
    """Split [start, end] stepped by ``step`` into runs of ``chunk_days``.

    Chunk boundaries stay on the parent grid (every chunk start is
    ``start + k*step`` days), so the union of chunk sweeps visits exactly
    the dates the unchunked sweep would.
    """
    if step < 1:
        raise MeasurementError(f"sweep step must be >= 1 day: {step}")
    if chunk_days < 1:
        raise MeasurementError(f"chunk size must be >= 1 day: {chunk_days}")
    start_date, end_date = as_date(start), as_date(end)
    if start_date > end_date:
        raise MeasurementError(
            f"sweep start {start_date} is after its end {end_date}"
        )
    total_days = (end_date - start_date).days // step + 1
    chunks: List[SweepChunk] = []
    for first in range(0, total_days, chunk_days):
        last = min(first + chunk_days, total_days) - 1
        chunks.append(
            SweepChunk(
                len(chunks),
                start_date + _dt.timedelta(days=first * step),
                start_date + _dt.timedelta(days=last * step),
                step,
            )
        )
    return chunks


def _reduce_chunk(
    collector: FastCollector, reducer, chunk: SweepChunk, faults=None, attempt: int = 0
) -> list:
    """Run one chunk through the reducer (shared by both executors).

    The fault key carries the chunk's start date plus the attempt
    number, so a retried chunk re-rolls its fault decision instead of
    deterministically dying forever.
    """
    if faults is not None:
        faults.check("sweep.chunk", f"{chunk.start.isoformat()}#{attempt}")
    return [
        reducer.reduce_day(snapshot)
        for snapshot in collector.sweep(chunk.start, chunk.end, chunk.step)
    ]


class SerialChunkExecutor:
    """Deterministic in-process executor (the parallel fallback).

    Runs the exact chunked code path the process executor runs, just
    sequentially against one collector — so tests can exercise chunk
    semantics without forking, and worlds that exist only in this
    process can still be swept through the engine.  Failed chunks are
    retried in place with bounded backoff.
    """

    def __init__(
        self,
        collector: FastCollector,
        faults=None,
        max_chunk_retries: int = 3,
        retry_backoff: float = 0.02,
    ) -> None:
        self._collector = collector
        self._faults = faults
        self.max_chunk_retries = int(max_chunk_retries)
        self.retry_backoff = float(retry_backoff)
        #: Chunk retries performed (for SweepMetrics).
        self.chunk_retries = 0

    @property
    def kind(self) -> str:
        """Executor label for instrumentation."""
        return "serial"

    def _run_chunk(self, reducer, chunk: SweepChunk) -> list:
        for attempt in range(self.max_chunk_retries + 1):
            try:
                return _reduce_chunk(
                    self._collector, reducer, chunk, self._faults, attempt
                )
            except _CHUNK_FAILURES as exc:
                if attempt >= self.max_chunk_retries:
                    raise RecoveryError(
                        f"chunk {chunk!r} failed {attempt + 1} times: {exc}"
                    ) from exc
                self.chunk_retries += 1
                time.sleep(backoff_seconds(attempt, self.retry_backoff))
        raise AssertionError("unreachable")  # pragma: no cover

    def map_chunks(self, reducer, chunks: Sequence[SweepChunk]) -> List[list]:
        """Per-chunk record lists, in chunk order."""
        return [self._run_chunk(reducer, chunk) for chunk in chunks]


# ----------------------------------------------------------------------
# Process pool executor
# ----------------------------------------------------------------------

#: Per-worker-process collector cache: scenario key -> FastCollector.
_WORKER_COLLECTOR: Tuple[Optional[tuple], Optional[FastCollector]] = (None, None)


def _scenario_key(config) -> tuple:
    key = (
        config.scale,
        config.seed,
        config.geo_lag_days,
        config.netnod_mode,
        config.sanctioned_domain_count,
    )
    # Counterfactual scenarios extend the key with their identity; the
    # baseline key stays the historical 5-tuple so pre-scenario-engine
    # archives keep matching (getattr: old pickled configs lack these).
    scenario_id = getattr(config, "scenario_id", "baseline")
    if scenario_id != "baseline":
        key += (scenario_id, getattr(config, "spec_digest", None))
    return key


def _worker_collector(config, collector_args) -> FastCollector:
    global _WORKER_COLLECTOR
    outage_dates, outage_coverage, seed = collector_args
    key = (_scenario_key(config), collector_args)
    cached_key, cached = _WORKER_COLLECTOR
    if cached_key == key and cached is not None:
        return cached
    # build_world never builds the PKI bundle, and sweeps never read it,
    # so workers skip that cost regardless of config.with_pki.
    from ..sim.conflict import build_world

    collector = FastCollector(
        build_world(config),
        outage_dates=outage_dates,
        outage_coverage=outage_coverage,
        seed=seed,
    )
    _WORKER_COLLECTOR = (key, collector)
    return collector


def _reduce_chunk_in_worker(config, collector_args, reducer, chunk, faults, attempt):
    mark_worker_process()
    collector = _worker_collector(config, collector_args)
    return chunk.index, _reduce_chunk(collector, reducer, chunk, faults, attempt)


class ExecutorBroken(RuntimeError):
    """The process pool failed repeatedly; carries the finished chunks."""

    def __init__(self, completed: Dict[int, list]) -> None:
        super().__init__(f"process pool broke with {len(completed)} chunks done")
        self.completed = completed


class ProcessChunkExecutor:
    """Evaluates chunks across a :class:`ProcessPoolExecutor`.

    Each worker rebuilds the (deterministic) world from the scenario
    config on first use and caches it for the rest of its life.  A
    chunk whose evaluation fails is resubmitted (with its attempt
    number bumped, so injected faults re-roll); a broken pool is
    recreated, and after ``max_pool_failures`` breakages the executor
    raises :class:`ExecutorBroken` carrying everything that did finish
    so the engine can degrade to the serial path for the remainder.
    """

    def __init__(
        self,
        config,
        collector: FastCollector,
        workers: int,
        faults=None,
        max_chunk_retries: int = 3,
        retry_backoff: float = 0.02,
        max_pool_failures: int = 2,
    ) -> None:
        if workers < 2:
            raise MeasurementError(f"process executor needs >= 2 workers: {workers}")
        self._config = config
        self._collector_args = (
            collector.outage_dates,
            collector.outage_coverage,
            collector.seed,
        )
        self.workers = workers
        self._faults = faults
        self.max_chunk_retries = int(max_chunk_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_pool_failures = int(max_pool_failures)
        #: Recovery counters (for SweepMetrics).
        self.chunk_retries = 0
        self.pool_failures = 0

    @property
    def kind(self) -> str:
        """Executor label for instrumentation."""
        return "process"

    def map_chunks(self, reducer, chunks: Sequence[SweepChunk]) -> List[list]:
        """Per-chunk record lists, merged back into chunk order."""
        completed: Dict[int, list] = {}
        attempts: Dict[int, int] = {chunk.index: 0 for chunk in chunks}
        rounds = 0
        while True:
            pending = [chunk for chunk in chunks if chunk.index not in completed]
            if not pending:
                break
            try:
                if self._faults is not None:
                    self._faults.check("sweep.pool", f"round#{rounds}")
                self._run_round(reducer, pending, completed, attempts)
            except (BrokenProcessPool, WorkerCrashed) as exc:
                self.pool_failures += 1
                if self.pool_failures > self.max_pool_failures:
                    raise ExecutorBroken(completed) from exc
                time.sleep(backoff_seconds(self.pool_failures - 1, self.retry_backoff))
            rounds += 1
        return [completed[chunk.index] for chunk in chunks]

    def _run_round(
        self,
        reducer,
        pending: Sequence[SweepChunk],
        completed: Dict[int, list],
        attempts: Dict[int, int],
    ) -> None:
        """One pool lifetime: submit every pending chunk, harvest results.

        Per-chunk failures are retried inside the round (resubmission);
        pool-level breakage propagates to :meth:`map_chunks`, which
        decides between a fresh pool and :class:`ExecutorBroken`.
        """
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            waiting = list(pending)
            while waiting:
                futures = {
                    pool.submit(
                        _reduce_chunk_in_worker,
                        self._config,
                        self._collector_args,
                        reducer,
                        chunk,
                        self._faults,
                        attempts[chunk.index],
                    ): chunk
                    for chunk in waiting
                }
                waiting = []
                for future, chunk in futures.items():
                    try:
                        index, records = future.result()
                    except BrokenProcessPool:
                        raise
                    except _CHUNK_FAILURES as exc:
                        attempts[chunk.index] += 1
                        if attempts[chunk.index] > self.max_chunk_retries:
                            raise RecoveryError(
                                f"chunk {chunk!r} failed "
                                f"{attempts[chunk.index]} times: {exc}"
                            ) from exc
                        self.chunk_retries += 1
                        waiting.append(chunk)
                    else:
                        completed[index] = records
                if waiting:
                    time.sleep(
                        backoff_seconds(
                            max(attempts[c.index] for c in waiting) - 1,
                            self.retry_backoff,
                        )
                    )


class SweepEngine:
    """Partitions sweeps into chunks and merges per-chunk day records."""

    def __init__(
        self,
        collector: FastCollector,
        config=None,
        workers: int = 1,
        chunk_days: Optional[int] = None,
        metrics: Optional[SweepMetrics] = None,
        faults=None,
        max_chunk_retries: int = 3,
        retry_backoff: float = 0.02,
        max_pool_failures: int = 2,
    ) -> None:
        if workers < 1:
            raise MeasurementError(f"workers must be >= 1: {workers}")
        self._collector = collector
        self._config = config
        self.workers = int(workers)
        self.chunk_days = chunk_days
        self.metrics = metrics
        self.faults = faults
        self.max_chunk_retries = int(max_chunk_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_pool_failures = int(max_pool_failures)

    @property
    def parallel_capable(self) -> bool:
        """True when worker processes can rebuild the world from config."""
        return self._config is not None

    def _chunk_days_for(self, total_days: int) -> int:
        if self.chunk_days is not None:
            return self.chunk_days
        if self.workers <= 1:
            return total_days
        # Four chunks per worker balances load without drowning the pool
        # in per-chunk overhead.
        return max(1, -(-total_days // (self.workers * 4)))

    def _serial_executor(self) -> SerialChunkExecutor:
        return SerialChunkExecutor(
            self._collector,
            faults=self.faults,
            max_chunk_retries=self.max_chunk_retries,
            retry_backoff=self.retry_backoff,
        )

    def run(
        self,
        reducer,
        start: DateLike,
        end: DateLike,
        step: int = 1,
        phase: Optional[str] = None,
    ) -> list:
        """Reduce every ``step``-th day in [start, end], in date order.

        A ``step`` larger than the whole range is valid and measures
        exactly the start day; an inverted range or non-positive step is
        rejected up front rather than surfacing as confusing chunking.
        """
        if step < 1:
            raise MeasurementError(f"sweep step must be >= 1 day: {step}")
        start_date, end_date = as_date(start), as_date(end)
        if start_date > end_date:
            raise MeasurementError(
                f"sweep start {start_date} is after its end {end_date}"
            )
        total_days = (end_date - start_date).days // step + 1
        chunks = partition_chunks(
            start_date, end_date, step, self._chunk_days_for(total_days)
        )
        degraded = False
        chunk_retries = 0
        pool_failures = 0
        if self.workers > 1 and self.parallel_capable and len(chunks) > 1:
            executor = ProcessChunkExecutor(
                self._config,
                self._collector,
                self.workers,
                faults=self.faults,
                max_chunk_retries=self.max_chunk_retries,
                retry_backoff=self.retry_backoff,
                max_pool_failures=self.max_pool_failures,
            )
            try:
                per_chunk = executor.map_chunks(reducer, chunks)
            except ExecutorBroken as broken:
                # The pool is unusable; finish the missing chunks with
                # the deterministic in-process path.  Chunk evaluation
                # is pure, so the merged result is bit-identical to
                # what the pool would have produced.
                degraded = True
                completed = dict(broken.completed)
                serial = self._serial_executor()
                for chunk in chunks:
                    if chunk.index not in completed:
                        completed[chunk.index] = serial._run_chunk(reducer, chunk)
                per_chunk = [completed[chunk.index] for chunk in chunks]
                chunk_retries += serial.chunk_retries
            chunk_retries += executor.chunk_retries
            pool_failures = executor.pool_failures
        else:
            executor = self._serial_executor()
            per_chunk = executor.map_chunks(reducer, chunks)
            chunk_retries += executor.chunk_retries
        records = [record for chunk_records in per_chunk for record in chunk_records]
        if self.metrics is not None:
            if chunk_retries:
                self.metrics.record_recovery("chunk_retries", chunk_retries)
            if pool_failures:
                self.metrics.record_recovery("pool_failures", pool_failures)
            if degraded:
                self.metrics.record_recovery("degraded_to_serial", 1)
            sync_fault_metrics(self.faults, self.metrics)
        if self.metrics is not None and phase is not None:
            stat = self.metrics.get_phase(phase)
            if stat is not None:
                stat.snapshots += len(records)
                stat.notes["executor"] = (
                    "process->serial" if degraded else executor.kind
                )
                stat.notes["chunks"] = len(chunks)
                stat.notes["workers"] = (
                    self.workers if executor.kind == "process" and not degraded else 1
                )
        return records
