"""The parallel sweep engine.

Longitudinal sweeps partition their date range into chunks of
measurement days; each chunk is evaluated by a day reducer (see
:mod:`repro.core.reducers`) either in-process or across worker
processes, and the per-chunk record lists are concatenated in date
order.  Two properties make chunking safe here:

* :meth:`repro.sim.world.World.sweep` derives each day's state from the
  event log deterministically, so a sweep starting mid-range yields the
  same :class:`WorldDay` views as the corresponding tail of a full
  sweep;
* outage subsampling is keyed per-date (``derive_rng(seed, "outage",
  date)``), independent of sweep position.

Worker processes rebuild the world from the scenario config (world
construction is deterministic by seed), so nothing larger than the
config, the reducer, and the day records ever crosses the process
boundary.  When no config is available — the caller supplied a
ready-made world — the engine falls back to the deterministic
in-process executor, which runs the identical chunked code path
serially, keeping results bit-identical.
"""

from __future__ import annotations

import datetime as _dt
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..timeline import DateLike, as_date
from .fast import FastCollector
from .metrics import SweepMetrics

__all__ = [
    "SweepChunk",
    "partition_chunks",
    "SerialChunkExecutor",
    "ProcessChunkExecutor",
    "SweepEngine",
]


class SweepChunk:
    """A contiguous run of measurement days on the sweep's step grid."""

    __slots__ = ("index", "start", "end", "step")

    def __init__(self, index: int, start: _dt.date, end: _dt.date, step: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.step = step

    @property
    def days(self) -> int:
        """Number of measurement days in the chunk."""
        return (self.end - self.start).days // self.step + 1

    def __repr__(self) -> str:
        return f"SweepChunk(#{self.index} {self.start}..{self.end} /{self.step})"


def partition_chunks(
    start: DateLike, end: DateLike, step: int, chunk_days: int
) -> List[SweepChunk]:
    """Split [start, end] stepped by ``step`` into runs of ``chunk_days``.

    Chunk boundaries stay on the parent grid (every chunk start is
    ``start + k*step`` days), so the union of chunk sweeps visits exactly
    the dates the unchunked sweep would.
    """
    if step < 1:
        raise MeasurementError(f"sweep step must be >= 1 day: {step}")
    if chunk_days < 1:
        raise MeasurementError(f"chunk size must be >= 1 day: {chunk_days}")
    start_date, end_date = as_date(start), as_date(end)
    if start_date > end_date:
        raise MeasurementError(
            f"sweep start {start_date} is after its end {end_date}"
        )
    total_days = (end_date - start_date).days // step + 1
    chunks: List[SweepChunk] = []
    for first in range(0, total_days, chunk_days):
        last = min(first + chunk_days, total_days) - 1
        chunks.append(
            SweepChunk(
                len(chunks),
                start_date + _dt.timedelta(days=first * step),
                start_date + _dt.timedelta(days=last * step),
                step,
            )
        )
    return chunks


def _reduce_chunk(collector: FastCollector, reducer, chunk: SweepChunk) -> list:
    """Run one chunk through the reducer (shared by both executors)."""
    return [
        reducer.reduce_day(snapshot)
        for snapshot in collector.sweep(chunk.start, chunk.end, chunk.step)
    ]


class SerialChunkExecutor:
    """Deterministic in-process executor (the parallel fallback).

    Runs the exact chunked code path the process executor runs, just
    sequentially against one collector — so tests can exercise chunk
    semantics without forking, and worlds that exist only in this
    process can still be swept through the engine.
    """

    def __init__(self, collector: FastCollector) -> None:
        self._collector = collector

    @property
    def kind(self) -> str:
        """Executor label for instrumentation."""
        return "serial"

    def map_chunks(self, reducer, chunks: Sequence[SweepChunk]) -> List[list]:
        """Per-chunk record lists, in chunk order."""
        return [_reduce_chunk(self._collector, reducer, chunk) for chunk in chunks]


# ----------------------------------------------------------------------
# Process pool executor
# ----------------------------------------------------------------------

#: Per-worker-process collector cache: scenario key -> FastCollector.
_WORKER_COLLECTOR: Tuple[Optional[tuple], Optional[FastCollector]] = (None, None)


def _scenario_key(config) -> tuple:
    return (
        config.scale,
        config.seed,
        config.geo_lag_days,
        config.netnod_mode,
        config.sanctioned_domain_count,
    )


def _worker_collector(config, collector_args) -> FastCollector:
    global _WORKER_COLLECTOR
    outage_dates, outage_coverage, seed = collector_args
    key = (_scenario_key(config), collector_args)
    cached_key, cached = _WORKER_COLLECTOR
    if cached_key == key and cached is not None:
        return cached
    # build_world never builds the PKI bundle, and sweeps never read it,
    # so workers skip that cost regardless of config.with_pki.
    from ..sim.conflict import build_world

    collector = FastCollector(
        build_world(config),
        outage_dates=outage_dates,
        outage_coverage=outage_coverage,
        seed=seed,
    )
    _WORKER_COLLECTOR = (key, collector)
    return collector


def _reduce_chunk_in_worker(config, collector_args, reducer, chunk):
    collector = _worker_collector(config, collector_args)
    return chunk.index, _reduce_chunk(collector, reducer, chunk)


class ProcessChunkExecutor:
    """Evaluates chunks across a :class:`ProcessPoolExecutor`.

    Each worker rebuilds the (deterministic) world from the scenario
    config on first use and caches it for the rest of its life.
    """

    def __init__(self, config, collector: FastCollector, workers: int) -> None:
        if workers < 2:
            raise MeasurementError(f"process executor needs >= 2 workers: {workers}")
        self._config = config
        self._collector_args = (
            collector.outage_dates,
            collector.outage_coverage,
            collector.seed,
        )
        self.workers = workers

    @property
    def kind(self) -> str:
        """Executor label for instrumentation."""
        return "process"

    def map_chunks(self, reducer, chunks: Sequence[SweepChunk]) -> List[list]:
        """Per-chunk record lists, merged back into chunk order."""
        results: List[Optional[list]] = [None] * len(chunks)
        with ProcessPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            futures = [
                pool.submit(
                    _reduce_chunk_in_worker,
                    self._config,
                    self._collector_args,
                    reducer,
                    chunk,
                )
                for chunk in chunks
            ]
            for future in futures:
                index, records = future.result()
                results[index] = records
        return [records for records in results if records is not None]


class SweepEngine:
    """Partitions sweeps into chunks and merges per-chunk day records."""

    def __init__(
        self,
        collector: FastCollector,
        config=None,
        workers: int = 1,
        chunk_days: Optional[int] = None,
        metrics: Optional[SweepMetrics] = None,
    ) -> None:
        if workers < 1:
            raise MeasurementError(f"workers must be >= 1: {workers}")
        self._collector = collector
        self._config = config
        self.workers = int(workers)
        self.chunk_days = chunk_days
        self.metrics = metrics

    @property
    def parallel_capable(self) -> bool:
        """True when worker processes can rebuild the world from config."""
        return self._config is not None

    def _chunk_days_for(self, total_days: int) -> int:
        if self.chunk_days is not None:
            return self.chunk_days
        if self.workers <= 1:
            return total_days
        # Four chunks per worker balances load without drowning the pool
        # in per-chunk overhead.
        return max(1, -(-total_days // (self.workers * 4)))

    def run(
        self,
        reducer,
        start: DateLike,
        end: DateLike,
        step: int = 1,
        phase: Optional[str] = None,
    ) -> list:
        """Reduce every ``step``-th day in [start, end], in date order.

        A ``step`` larger than the whole range is valid and measures
        exactly the start day; an inverted range or non-positive step is
        rejected up front rather than surfacing as confusing chunking.
        """
        if step < 1:
            raise MeasurementError(f"sweep step must be >= 1 day: {step}")
        start_date, end_date = as_date(start), as_date(end)
        if start_date > end_date:
            raise MeasurementError(
                f"sweep start {start_date} is after its end {end_date}"
            )
        total_days = (end_date - start_date).days // step + 1
        chunks = partition_chunks(
            start_date, end_date, step, self._chunk_days_for(total_days)
        )
        if self.workers > 1 and self.parallel_capable and len(chunks) > 1:
            executor = ProcessChunkExecutor(self._config, self._collector, self.workers)
        else:
            executor = SerialChunkExecutor(self._collector)
        per_chunk = executor.map_chunks(reducer, chunks)
        records = [record for chunk_records in per_chunk for record in chunk_records]
        if self.metrics is not None and phase is not None:
            stat = self.metrics.get_phase(phase)
            if stat is not None:
                stat.snapshots += len(records)
                stat.notes["executor"] = executor.kind
                stat.notes["chunks"] = len(chunks)
                stat.notes["workers"] = (
                    self.workers if executor.kind == "process" else 1
                )
        return records
