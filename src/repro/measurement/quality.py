"""Measurement health: the pipeline's own data-quality monitoring.

Production measurement platforms track their coverage — how many seeded
names actually produced records each day — and flag anomalous days.  The
paper's footnote 8 ("the dip on March 22, 2021 is a measurement outage")
is exactly the kind of event this catches.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, List, Optional

from ..errors import MeasurementError
from .fast import DailySnapshot

__all__ = ["CoveragePoint", "MeasurementHealth"]


class CoveragePoint:
    """One day's seeded vs measured accounting."""

    __slots__ = ("date", "seeded", "measured")

    def __init__(self, date: _dt.date, seeded: int, measured: int) -> None:
        if measured > seeded:
            raise MeasurementError(
                f"{date}: measured {measured} exceeds seeded {seeded}"
            )
        self.date = date
        self.seeded = seeded
        self.measured = measured

    @property
    def coverage(self) -> float:
        """Measured share of the seed list (0..1)."""
        return self.measured / self.seeded if self.seeded else 1.0

    def __repr__(self) -> str:
        return f"CoveragePoint({self.date} {self.measured}/{self.seeded})"


class MeasurementHealth:
    """Accumulates coverage and flags anomalous measurement days."""

    def __init__(self, dip_threshold: float = 0.90) -> None:
        if not 0.0 < dip_threshold <= 1.0:
            raise MeasurementError(
                f"dip_threshold out of (0, 1]: {dip_threshold}"
            )
        self._points: List[CoveragePoint] = []
        self._dip_threshold = dip_threshold

    def __len__(self) -> int:
        return len(self._points)

    def observe(self, date: _dt.date, seeded: int, measured: int) -> None:
        """Record one day (chronological order enforced)."""
        if self._points and date <= self._points[-1].date:
            raise MeasurementError("coverage points must be chronological")
        self._points.append(CoveragePoint(date, seeded, measured))

    def observe_snapshot(self, snapshot: DailySnapshot, seeded: int) -> None:
        """Record a collected snapshot against its seed-list size."""
        self.observe(snapshot.date, seeded, len(snapshot))

    def points(self) -> List[CoveragePoint]:
        """All points, chronological."""
        return list(self._points)

    def mean_coverage(self) -> float:
        """Average coverage over all observed days."""
        if not self._points:
            raise MeasurementError("no coverage observed")
        return sum(point.coverage for point in self._points) / len(self._points)

    def outage_days(self) -> List[_dt.date]:
        """Days whose coverage drops below the dip threshold."""
        return [
            point.date
            for point in self._points
            if point.coverage < self._dip_threshold
        ]

    def worst_day(self) -> Optional[CoveragePoint]:
        """The lowest-coverage day, or None when empty."""
        if not self._points:
            return None
        return min(self._points, key=lambda point: point.coverage)
