"""Compiled scenario deltas the world builder applies on top of baseline.

A :class:`ScenarioVariant` is what :meth:`repro.scenario.ScenarioSpec.compile`
produces from the declarative world block: a small, picklable object of
*resolved* deltas (plain :class:`~repro.sim.flows.Flow`/:class:`Pulse`
objects, concrete sanction waves) that travels inside
:class:`~repro.sim.conflict.ConflictScenarioConfig` so sweep worker
processes can rebuild the identical counterfactual world from the pickled
config alone.

The contract with :func:`~repro.sim.conflict.build_world` is strict:
``variant=None`` (the baseline) must leave every RNG draw untouched, so
baseline archive shards stay byte-identical to the pre-scenario-engine
build.  All deltas are therefore applied by *filtering and rescaling the
flow/pulse lists before the engine runs*, never by consuming extra draws
from the assignment stream.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..timeline import CONFLICT_START, day_index, from_day_index
from .flows import Flow, Pulse

__all__ = ["ScenarioVariant"]

#: Flows/pulses starting on or after this day are "conflict era" and are
#: the ones a variant may suppress or rescale; the pre-2022 drifts are
#: part of every world.
_CONFLICT_DAY = day_index(CONFLICT_START)


class ScenarioVariant:
    """Resolved world deltas for one counterfactual scenario.

    Parameters
    ----------
    conflict:
        When False the February 2022 events never happen: conflict-era
        flows and pulses are dropped, the birth-mix shift and the
        scripted sanctioned-domain moves are skipped, no sanctions are
        designated, and the Netnod cutoff does not occur.
    intensity:
        Multiplier on conflict-era migration volumes (flow ``total_pp``,
        pulse fractions/counts).  1.0 reproduces the paper's magnitudes.
    extra_flows / extra_pulses:
        Additional scenario-specific movements, already resolved to
        concrete :class:`Flow`/:class:`Pulse` objects against the
        standard plan tables.
    sanction_waves:
        Overrides the calibrated designation waves; ``None`` keeps the
        paper's four waves (or none at all when ``conflict`` is False).
    notes:
        ``(date, actor, description)`` manifest entries narrating the
        counterfactual timeline.
    """

    __slots__ = (
        "conflict", "intensity", "extra_flows", "extra_pulses",
        "sanction_waves", "notes",
    )

    def __init__(
        self,
        conflict: bool = True,
        intensity: float = 1.0,
        extra_flows: Sequence[Flow] = (),
        extra_pulses: Sequence[Pulse] = (),
        sanction_waves: Optional[Sequence[Tuple[_dt.date, int]]] = None,
        notes: Sequence[Tuple[_dt.date, str, str]] = (),
    ) -> None:
        if intensity <= 0:
            raise ScenarioError(f"variant intensity must be positive: {intensity}")
        self.conflict = bool(conflict)
        self.intensity = float(intensity)
        self.extra_flows = tuple(extra_flows)
        self.extra_pulses = tuple(extra_pulses)
        self.sanction_waves = (
            None
            if sanction_waves is None
            else tuple((date, int(count)) for date, count in sanction_waves)
        )
        self.notes = tuple(tuple(note) for note in notes)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(
        self, flows: Sequence[Flow], pulses: Sequence[Pulse]
    ) -> Tuple[List[Flow], List[Pulse]]:
        """The calibrated flow/pulse lists with this variant's deltas applied."""
        kept_flows: List[Flow] = []
        for flow in flows:
            if flow.start_day >= _CONFLICT_DAY:
                if not self.conflict:
                    continue
                flow = self._scale_flow(flow)
            kept_flows.append(flow)
        kept_pulses: List[Pulse] = []
        for pulse in pulses:
            if pulse.day >= _CONFLICT_DAY:
                if not self.conflict:
                    continue
                pulse = self._scale_pulse(pulse)
            kept_pulses.append(pulse)
        kept_flows.extend(self.extra_flows)
        kept_pulses.extend(self.extra_pulses)
        return kept_flows, kept_pulses

    def _scale_flow(self, flow: Flow) -> Flow:
        if self.intensity == 1.0:
            return flow
        return Flow(
            flow.field,
            flow.sources,
            flow.dest,
            flow.total_pp * self.intensity,
            from_day_index(flow.start_day),
            from_day_index(flow.end_day),
        )

    def _scale_pulse(self, pulse: Pulse) -> Pulse:
        if self.intensity == 1.0:
            return pulse
        if pulse.fraction is not None:
            return Pulse(
                pulse.field, pulse.sources, pulse.dest,
                from_day_index(pulse.day),
                fraction=min(1.0, pulse.fraction * self.intensity),
            )
        return Pulse(
            pulse.field, pulse.sources, pulse.dest,
            from_day_index(pulse.day),
            count=max(1, int(round(pulse.count * self.intensity))),
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def is_noop(self) -> bool:
        """True when applying this variant changes nothing."""
        return (
            self.conflict
            and self.intensity == 1.0
            and not self.extra_flows
            and not self.extra_pulses
            and self.sanction_waves is None
        )

    def __repr__(self) -> str:
        parts = []
        if not self.conflict:
            parts.append("conflict=False")
        if self.intensity != 1.0:
            parts.append(f"intensity={self.intensity:g}")
        if self.extra_flows:
            parts.append(f"{len(self.extra_flows)} extra flows")
        if self.extra_pulses:
            parts.append(f"{len(self.extra_pulses)} extra pulses")
        if self.sanction_waves is not None:
            parts.append(f"{len(self.sanction_waves)} sanction waves")
        return f"ScenarioVariant({', '.join(parts) or 'noop'})"
