"""World consistency validation.

A scenario builder has many hand-calibrated inputs; this validator checks
the assembled world for internal contradictions before any measurement
runs — the simulation counterpart of a measurement platform's pre-flight
checks.  Returns a list of human-readable issues (empty = valid).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..registry.tld import STUDY_TLDS
from .world import World

__all__ = ["validate_world"]


def validate_world(world: World) -> List[str]:
    """Check the world's cross-references; returns discovered issues."""
    issues: List[str] = []
    issues.extend(_check_population(world))
    issues.extend(_check_assignments(world))
    issues.extend(_check_plans(world))
    issues.extend(_check_sanctions(world))
    if world.pki is not None:
        issues.extend(_check_pki(world))
    return issues


def _check_population(world: World) -> List[str]:
    issues = []
    population = world.population
    if not (population.created < population.deleted).all():
        issues.append("population: some domains are deleted before creation")
    names = [str(record.name) for record in population]
    if len(names) != len(set(names)):
        issues.append("population: duplicate domain names")
    bad_tlds = {
        record.name.tld for record in population if record.name.tld not in STUDY_TLDS
    }
    if bad_tlds:
        issues.append(f"population: registrations outside study TLDs: {bad_tlds}")
    return issues


def _check_assignments(world: World) -> List[str]:
    issues = []
    n_dns = len(world.dns_plans)
    n_host = len(world.hosting_plans)
    if world.base_dns.min() < 0 or world.base_dns.max() >= n_dns:
        issues.append("assignments: base DNS plan id out of range")
    if world.base_hosting.min() < 0 or world.base_hosting.max() >= n_host:
        issues.append("assignments: base hosting plan id out of range")
    for field_name, field, bound in (
        ("DNS", 1, n_dns),
        ("hosting", 0, n_host),
    ):
        days, domains, fields, values = world.events._arrays()
        mask = fields == field
        if mask.any():
            if values[mask].min() < 0 or values[mask].max() >= bound:
                issues.append(f"events: {field_name} plan id out of range")
            if domains[mask].max() >= len(world.population):
                issues.append(f"events: {field_name} domain index out of range")
    return issues


def _check_plans(world: World) -> List[str]:
    issues = []
    for epoch in world.epochs():
        for plan in world.dns_plans.plans():
            for hostname in plan.ns_hostnames:
                address = epoch.ns_addresses.get(str(hostname))
                if address is None:
                    issues.append(
                        f"epoch {epoch.start_day}: plan {plan.key} references "
                        f"unknown NS host {hostname}"
                    )
                    continue
                if epoch.routing.lookup(address) is None:
                    issues.append(
                        f"epoch {epoch.start_day}: NS host {hostname} address "
                        "is unrouted"
                    )
                if epoch.geo.lookup(address) is None:
                    issues.append(
                        f"epoch {epoch.start_day}: NS host {hostname} address "
                        "has no geolocation"
                    )
        for plan in world.hosting_plans.plans():
            for provider_key, asn in plan.components:
                provider = world.catalog.try_get(provider_key)
                if provider is None:
                    issues.append(
                        f"hosting plan {plan.key}: unknown provider {provider_key}"
                    )
                elif asn not in provider.asns:
                    issues.append(
                        f"hosting plan {plan.key}: AS{asn} not owned by "
                        f"{provider_key}"
                    )
    return issues


def _check_sanctions(world: World) -> List[str]:
    issues = []
    if world.sanctioned_indices.max(initial=-1) >= len(world.population):
        issues.append("sanctions: index out of range")
    listed_names = set(map(str, world.sanctions.all_domains()))
    registry_names = {
        str(world.population.record(int(i)).name)
        for i in world.sanctioned_indices
    }
    if listed_names != registry_names:
        issues.append("sanctions: list does not match reserved registry names")
    return issues


def _check_pki(world: World) -> List[str]:
    issues = []
    pki = world.pki
    for log in pki.logs:
        for entry in log.entries():
            if entry.certificate.issuer.organization == pki.russian_ca_org:
                issues.append(
                    f"pki: Russian CA certificate in CT log {log.log_id}"
                )
                break
    for index in pki.domain_certs:
        if not 0 <= index < len(world.population):
            issues.append(f"pki: certificate for unknown domain index {index}")
    return issues
