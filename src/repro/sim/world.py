"""The world model: who is assigned to what, when, and derived labels.

A :class:`World` combines the registry population, the provider market,
the address plan, per-domain plan assignments with their event history,
and the infrastructure event timeline.  It exposes exactly the views the
measurement layer needs:

* assignment state (hosting/DNS plan per domain) at any date,
* per-epoch derived label tables (country and TLD compositions, ASNs),
* per-domain raw measurement facts (NS names, NS/apex addresses),

and nothing about the analysis — the analysis layer must recover the
paper's findings from measurements alone.
"""

from __future__ import annotations

import bisect
import datetime as _dt
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..geo.database import GeoDatabase, with_override
from ..geo.service import GeoService
from ..net.prefix import Prefix
from ..net.rib import RoutingTable
from ..providers.addressing import AddressPlan
from ..providers.catalog import ProviderCatalog
from ..registry.population import DomainPopulation
from ..registry.whois import WhoisService
from ..registry.zonefile import ZoneFileService
from ..sanctions.lists import SanctionsList
from ..timeline import DateLike, as_date, day_index, from_day_index
from .events import DomainEventLog, Field, InfraEvent
from .plans import (
    DnsPlanLabels,
    DnsPlanTable,
    HostingPlanLabels,
    HostingPlanTable,
)

__all__ = ["InfraEpoch", "WorldDay", "World"]


class InfraEpoch:
    """Derived infrastructure state valid from ``start_day`` onward."""

    __slots__ = (
        "start_day",
        "routing",
        "geo",
        "dns_labels",
        "hosting_labels",
        "ns_addresses",
    )

    def __init__(
        self,
        start_day: int,
        routing: RoutingTable,
        geo: GeoDatabase,
        dns_labels: DnsPlanLabels,
        hosting_labels: HostingPlanLabels,
        ns_addresses: Dict[str, int],
    ) -> None:
        self.start_day = start_day
        self.routing = routing
        self.geo = geo
        self.dns_labels = dns_labels
        self.hosting_labels = hosting_labels
        self.ns_addresses = ns_addresses

    def __repr__(self) -> str:
        return f"InfraEpoch(from {from_day_index(self.start_day)})"


class WorldDay:
    """One day's assignment state (the fast collector's raw material)."""

    __slots__ = ("date", "active", "hosting_ids", "dns_ids", "epoch")

    def __init__(
        self,
        date: _dt.date,
        active: np.ndarray,
        hosting_ids: np.ndarray,
        dns_ids: np.ndarray,
        epoch: InfraEpoch,
    ) -> None:
        self.date = date
        #: Indices of domains registered on this date.
        self.active = active
        #: Hosting plan id per domain (whole population; index by .active).
        self.hosting_ids = hosting_ids
        #: DNS plan id per domain (whole population; index by .active).
        self.dns_ids = dns_ids
        self.epoch = epoch


class World:
    """The assembled simulation world."""

    def __init__(
        self,
        population: DomainPopulation,
        catalog: ProviderCatalog,
        address_plan: AddressPlan,
        dns_plans: DnsPlanTable,
        hosting_plans: HostingPlanTable,
        base_hosting: np.ndarray,
        base_dns: np.ndarray,
        events: DomainEventLog,
        infra_events: Sequence[InfraEvent],
        sanctions: SanctionsList,
        sanctioned_indices: np.ndarray,
        geo_lag_days: int = 0,
    ) -> None:
        if len(base_hosting) != len(population) or len(base_dns) != len(population):
            raise ScenarioError("base assignment arrays must cover the population")
        self.population = population
        self.catalog = catalog
        self.address_plan = address_plan
        self.dns_plans = dns_plans
        self.hosting_plans = hosting_plans
        self.base_hosting = base_hosting.astype(np.int32)
        self.base_dns = base_dns.astype(np.int32)
        self.events = events
        self.events.finalize()
        self.infra_events = sorted(infra_events, key=lambda e: e.day)
        self.sanctions = sanctions
        self.sanctioned_indices = np.asarray(sanctioned_indices, dtype=np.int64)
        self.whois = WhoisService(population)
        self.zonefiles = ZoneFileService(population)

        self.geo_service = GeoService(lag_days=geo_lag_days)
        self._epochs: List[InfraEpoch] = []
        self._epoch_days: List[int] = []
        self._build_epochs()

        #: Attached by the certificate simulation (see sim.certsim).
        self.pki = None
        #: Attached by the scenario builder (see sim.manifest).
        self.manifest = None

    # ------------------------------------------------------------------
    # Infrastructure epochs
    # ------------------------------------------------------------------

    def _build_epochs(self) -> None:
        lag = self.geo_service.lag_days
        start_day = 0
        if self.infra_events:
            start_day = min(0, min(e.day for e in self.infra_events))

        # Publish the base geolocation snapshot well before the study.
        self.geo_service.publish(
            from_day_index(start_day - 3650), self.address_plan.geo_database()
        )

        routing = self.address_plan.routing_table()

        boundaries = {start_day}
        for event in self.infra_events:
            boundaries.add(event.day)
            if event.geo_changes and lag > 0:
                boundaries.add(event.day + lag)

        pending = list(self.infra_events)
        for boundary in sorted(boundaries):
            while pending and pending[0].day <= boundary:
                event = pending.pop(0)
                event.apply_to_plan(self.address_plan)
                for prefix_text, new_asn in event.route_changes:
                    routing.announce(Prefix.parse(prefix_text), new_asn)
                if event.geo_changes:
                    updated = self.geo_service.epochs[-1][1]
                    for prefix_text, country in event.geo_changes:
                        prefix = Prefix.parse(prefix_text)
                        updated = with_override(
                            updated, prefix.first, prefix.last, country
                        )
                    self.geo_service.publish(from_day_index(event.day), updated)
            seen_geo = self.geo_service.database_at(from_day_index(boundary))
            dns_labels = self.dns_plans.derive(self.address_plan, routing, seen_geo)
            hosting_labels = self.hosting_plans.derive(
                self.address_plan, routing, seen_geo
            )
            ns_addresses = {
                str(hostname): self.address_plan.ns_address(hostname)
                for hostname in self.address_plan.ns_hostnames()
            }
            # Freeze the routing view for this epoch.
            frozen_routing = RoutingTable()
            for route in routing.routes():
                frozen_routing.announce(route.prefix, route.origin_asn)
            self._epochs.append(
                InfraEpoch(
                    boundary, frozen_routing, seen_geo, dns_labels, hosting_labels,
                    ns_addresses,
                )
            )
            self._epoch_days.append(boundary)

    def epoch_at(self, date: DateLike) -> InfraEpoch:
        """The infrastructure epoch in force on ``date``."""
        day = day_index(date)
        position = bisect.bisect_right(self._epoch_days, day) - 1
        if position < 0:
            position = 0
        return self._epochs[position]

    def epochs(self) -> List[InfraEpoch]:
        """All epochs, chronological."""
        return list(self._epochs)

    # ------------------------------------------------------------------
    # Assignment state
    # ------------------------------------------------------------------

    def hosting_state(self, date: DateLike) -> np.ndarray:
        """Hosting plan id per domain as of end of ``date``."""
        return self.events.state_at(self.base_hosting, Field.HOSTING, date)

    def dns_state(self, date: DateLike) -> np.ndarray:
        """DNS plan id per domain as of end of ``date``."""
        return self.events.state_at(self.base_dns, Field.DNS, date)

    def day_view(self, date: DateLike) -> WorldDay:
        """Random-access :class:`WorldDay` for one date."""
        date_obj = as_date(date)
        return WorldDay(
            date_obj,
            self.population.active_indices(date_obj),
            self.hosting_state(date_obj),
            self.dns_state(date_obj),
            self.epoch_at(date_obj),
        )

    def sweep(
        self, start: DateLike, end: DateLike, step: int = 1
    ) -> Iterator[WorldDay]:
        """Forward sweep of :class:`WorldDay` views (efficient path)."""
        start_day, end_day = day_index(start), day_index(end)
        if start_day > end_day:
            raise ScenarioError(f"empty sweep {start} .. {end}")
        hosting = self.events.state_at(self.base_hosting, Field.HOSTING, start_day)
        dns = self.events.state_at(self.base_dns, Field.DNS, start_day)
        day = start_day
        while day <= end_day:
            date_obj = from_day_index(day)
            # Copies: a yielded day must stay valid after the sweep moves on.
            yield WorldDay(
                date_obj,
                self.population.active_indices(date_obj),
                hosting.copy(),
                dns.copy(),
                self.epoch_at(date_obj),
            )
            next_day = day + step
            if next_day <= end_day:
                self.events.apply_window(hosting, Field.HOSTING, day, next_day)
                self.events.apply_window(dns, Field.DNS, day, next_day)
            day = next_day

    # ------------------------------------------------------------------
    # Per-domain facts
    # ------------------------------------------------------------------

    def apex_addresses(self, domain_index: int, date: DateLike) -> Tuple[int, ...]:
        """The apex A-record addresses of one domain on ``date``."""
        plan_id = int(self.hosting_state(date)[domain_index])
        return self.apex_addresses_for_plan(domain_index, plan_id)

    def apex_addresses_for_plan(
        self, domain_index: int, plan_id: int
    ) -> Tuple[int, ...]:
        """Apex addresses for a known hosting plan id."""
        plan = self.hosting_plans.plan(plan_id)
        name = self.population.record(domain_index).name
        return tuple(
            self.address_plan.hosting_address(provider_key, name, asn)
            for provider_key, asn in plan.components
        )

    def ns_hostnames_for(self, domain_index: int, date: DateLike) -> Tuple[str, ...]:
        """NS host names the domain delegates to on ``date``."""
        plan_id = int(self.dns_state(date)[domain_index])
        plan = self.dns_plans.plan(plan_id)
        return tuple(str(hostname) for hostname in plan.ns_hostnames)

    def sanctioned_mask(self) -> np.ndarray:
        """Boolean mask over the population: attributed to a sanctioned entity."""
        mask = np.zeros(len(self.population), dtype=bool)
        mask[self.sanctioned_indices] = True
        return mask
