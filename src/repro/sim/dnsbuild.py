"""Build a live DNS hierarchy from world state at one date.

Constructs the root zone, TLD zones (``.ru``, ``.рф``, and every TLD the
provider name-server fleets live under), provider infrastructure zones,
and per-customer-domain zones — all served by
:class:`~repro.dns.server.AuthoritativeServer` objects wired into a
:class:`~repro.dns.network.SimulatedNetwork`.  The resolving collector
then measures domains exactly the way OpenINTEL does: by asking the root
and walking down.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dns.name import ROOT, DomainName
from ..dns.network import SimulatedNetwork
from ..dns.rdata import A, NS, SOA, RRType
from ..dns.rrset import RRset
from ..dns.server import AuthoritativeServer
from ..dns.zone import Zone
from ..errors import ScenarioError
from ..net.ip import parse_ipv4
from ..timeline import DateLike, as_date, day_index
from .world import World

__all__ = ["DnsTreeBuilder", "BuiltTree"]

#: Fixed root-server addresses (outside the provider catalogue's space).
ROOT_ADDRESSES = (parse_ipv4("198.41.0.4"), parse_ipv4("198.41.0.8"))
_TLD_SERVER_BASE = parse_ipv4("198.41.1.1")

#: Multi-label public suffixes we must not treat as registrable domains.
_DEEP_SUFFIXES = frozenset({("co", "uk")})


def _registrable(hostname: DomainName) -> DomainName:
    """The registrable (delegated-from-TLD) domain of a hostname."""
    labels = hostname.labels
    if len(labels) >= 3 and labels[-2:] in _DEEP_SUFFIXES:
        return DomainName(labels[-3:])
    return DomainName(labels[-2:])


class BuiltTree:
    """One date's DNS hierarchy."""

    def __init__(
        self,
        network: SimulatedNetwork,
        root_addresses: Tuple[int, ...],
        serial: int,
        tld_addresses: Optional[Dict[str, int]] = None,
    ) -> None:
        self.network = network
        self.root_addresses = root_addresses
        self.serial = serial
        #: TLD (A-label) -> address of its authoritative server.
        self.tld_addresses = dict(tld_addresses or {})


class DnsTreeBuilder:
    """Materialises the DNS hierarchy for a set of measured domains."""

    def __init__(self, world: World) -> None:
        self._world = world

    def build(
        self, date: DateLike, domain_indices: Optional[Sequence[int]] = None
    ) -> BuiltTree:
        """Build the tree as of ``date`` for the given domains (or all)."""
        world = self._world
        date_obj = as_date(date)
        serial = max(day_index(date_obj), 0) + 1
        epoch = world.epoch_at(date_obj)
        network = SimulatedNetwork()

        if domain_indices is None:
            domain_indices = world.population.active_indices(date_obj)

        # One authoritative server per name-server host address.
        servers: Dict[int, AuthoritativeServer] = {}

        def server_at(address: int, identity: str) -> AuthoritativeServer:
            server = servers.get(address)
            if server is None:
                server = AuthoritativeServer(identity)
                servers[address] = server
                network.attach(address, server)
            return server

        # --- Collect the name-server host universe -----------------------
        ns_addresses = epoch.ns_addresses  # hostname text -> address
        host_names = {
            DomainName.parse(text): address for text, address in ns_addresses.items()
        }

        # --- Infrastructure zones (reg.ru, cloudflare.com, ...) ----------
        infra_hosts: Dict[DomainName, List[Tuple[DomainName, int]]] = {}
        for hostname, address in host_names.items():
            infra_hosts.setdefault(_registrable(hostname), []).append(
                (hostname, address)
            )

        infra_zones: Dict[DomainName, Zone] = {}
        for origin, hosts in infra_hosts.items():
            zone = Zone(
                origin,
                SOA(str(hosts[0][0]), f"hostmaster.{origin}", serial),
            )
            for hostname, address in sorted(hosts):
                zone.add(RRset(hostname, RRType.A, [A(address)]))
            zone.add(
                RRset(
                    origin,
                    RRType.NS,
                    [NS(hostname) for hostname, _ in sorted(hosts)],
                )
            )
            infra_zones[origin] = zone
            for hostname, address in hosts:
                server_at(address, f"ns:{hostname}").attach_zone(zone)

        # --- TLD zones ----------------------------------------------------
        tld_origins = {origin.parent for origin in infra_zones}
        tld_origins.add(DomainName.parse("ru"))
        tld_origins.add(DomainName.parse("xn--p1ai"))

        tld_zones: Dict[DomainName, Zone] = {}
        tld_server_addresses: Dict[DomainName, int] = {}
        for offset, origin in enumerate(sorted(tld_origins)):
            zone = Zone(
                origin,
                SOA(f"a.nic.{origin}", f"hostmaster.nic.{origin}", serial),
            )
            address = _TLD_SERVER_BASE + offset
            tld_zones[origin] = zone
            tld_server_addresses[origin] = address
            tld_server = server_at(address, f"tld:{origin}")
            tld_server.attach_zone(zone)
            # OpenINTEL-style data sharing: the studied registries permit
            # zone transfers as measurement seeds (paper Section 2).
            if str(origin) in ("ru", "xn--p1ai"):
                tld_server.allow_axfr(origin)

        # Delegate infrastructure domains from their TLD zones (with glue).
        for origin, zone in infra_zones.items():
            parent = tld_zones[origin.parent]
            hosts = infra_hosts[origin]
            parent.add(
                RRset(origin, RRType.NS, [NS(h) for h, _ in sorted(hosts)])
            )
            for hostname, address in sorted(hosts):
                parent.add(RRset(hostname, RRType.A, [A(address)]))

        # --- Customer domain zones -----------------------------------------
        dns_state = world.dns_state(date_obj)
        hosting_state = world.hosting_state(date_obj)
        for index in domain_indices:
            index = int(index)
            record = world.population.record(index)
            if not record.is_active(date_obj):
                continue  # not in the zone file: no delegation exists
            name = record.name
            tld_zone = tld_zones.get(DomainName((name.tld,)))
            if tld_zone is None:
                raise ScenarioError(f"no TLD zone for {name}")
            plan = world.dns_plans.plan(int(dns_state[index]))
            ns_rdatas = [NS(hostname) for hostname in plan.ns_hostnames]
            tld_zone.add(RRset(name, RRType.NS, ns_rdatas))

            zone = Zone(name, SOA(str(plan.ns_hostnames[0]), f"hostmaster.{name}", serial))
            zone.add(RRset(name, RRType.NS, list(ns_rdatas)))
            apex = world.apex_addresses_for_plan(index, int(hosting_state[index]))
            zone.add(RRset(name, RRType.A, [A(address) for address in apex]))
            for hostname in plan.ns_hostnames:
                address = host_names.get(hostname)
                if address is None:
                    raise ScenarioError(f"unknown NS host {hostname} for {name}")
                server_at(address, f"ns:{hostname}").attach_zone(zone)

        # --- Root zone -------------------------------------------------------
        root_zone = Zone(ROOT, SOA("a.root-servers.invalid", "nstld.invalid", serial))
        for origin, address in sorted(tld_server_addresses.items()):
            ns_name = DomainName.parse(f"a.nic.{origin}")
            root_zone.add(RRset(origin, RRType.NS, [NS(ns_name)]))
            root_zone.add(RRset(ns_name, RRType.A, [A(address)]))
        for address in ROOT_ADDRESSES:
            server_at(address, "root").attach_zone(root_zone)

        return BuiltTree(
            network,
            ROOT_ADDRESSES,
            serial,
            tld_addresses={
                str(origin): address
                for origin, address in tld_server_addresses.items()
            },
        )
