"""Event model: per-domain reassignments and infrastructure changes.

Two event families drive the scenario:

* **Domain events** — one domain switches its hosting or DNS plan on a
  given day (a customer migrating, a provider dropping customers, parked
  inventory bouncing between parking services).  Stored columnar for fast
  forward sweeps and random-access replay.
* **Infra events** — the infrastructure itself changes (a name server is
  renumbered onto another network, a prefix is transferred, geolocation is
  re-published).  These change *derived labels* for every domain at once.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..providers.addressing import AddressPlan
from ..timeline import DateLike, day_index

__all__ = ["Field", "DomainEventLog", "InfraEvent"]


class Field(enum.IntEnum):
    """Which assignment a domain event changes."""

    HOSTING = 0
    DNS = 1


class DomainEventLog:
    """Columnar, day-ordered log of per-domain plan changes."""

    def __init__(self) -> None:
        self._days: List[int] = []
        self._domains: List[int] = []
        self._fields: List[int] = []
        self._values: List[int] = []
        self._finalized: Optional[Tuple[np.ndarray, ...]] = None

    def __len__(self) -> int:
        return len(self._days)

    def add(self, day: DateLike, domain_index: int, field: Field, plan_id: int) -> None:
        """Record one reassignment."""
        if self._finalized is not None:
            raise ScenarioError("event log already finalized")
        self._days.append(day_index(day))
        self._domains.append(domain_index)
        self._fields.append(int(field))
        self._values.append(plan_id)

    def add_many(
        self,
        day: DateLike,
        domain_indices: Sequence[int],
        field: Field,
        plan_id: int,
    ) -> None:
        """Record the same reassignment for many domains on one day."""
        for index in domain_indices:
            self.add(day, int(index), field, plan_id)

    def finalize(self) -> None:
        """Freeze and sort the log; required before queries."""
        if self._finalized is not None:
            return
        days = np.asarray(self._days, dtype=np.int64)
        order = np.argsort(days, kind="stable")
        self._finalized = (
            days[order],
            np.asarray(self._domains, dtype=np.int64)[order],
            np.asarray(self._fields, dtype=np.int8)[order],
            np.asarray(self._values, dtype=np.int32)[order],
        )

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._finalized is None:
            raise ScenarioError("event log not finalized")
        return self._finalized

    def apply_window(
        self,
        state: np.ndarray,
        field: Field,
        after_day: int,
        through_day: int,
    ) -> None:
        """Apply events with ``after_day < day <= through_day`` to ``state``.

        Events are applied in chronological order; with multiple events
        for one domain in the window, the last wins.
        """
        days, domains, fields, values = self._arrays()
        lo = np.searchsorted(days, after_day, side="right")
        hi = np.searchsorted(days, through_day, side="right")
        if lo >= hi:
            return
        mask = fields[lo:hi] == int(field)
        window_domains = domains[lo:hi][mask]
        window_values = values[lo:hi][mask]
        if len(window_domains) == 0:
            return
        # Last-write-wins without a Python loop: first occurrence in the
        # reversed window is the chronologically last event per domain.
        rev_domains = window_domains[::-1]
        rev_values = window_values[::-1]
        unique_domains, first_positions = np.unique(rev_domains, return_index=True)
        state[unique_domains] = rev_values[first_positions]

    def state_at(
        self, base: np.ndarray, field: Field, day: DateLike
    ) -> np.ndarray:
        """Full replay: the plan array as of end of ``day``."""
        state = base.copy()
        self.apply_window(state, field, after_day=-(10**9), through_day=day_index(day))
        return state

    def event_days(self) -> np.ndarray:
        """Distinct days with at least one event, ascending."""
        days, _, _, _ = self._arrays()
        return np.unique(days)


class InfraEvent:
    """A change to the shared infrastructure on a given day."""

    def __init__(
        self,
        day: DateLike,
        description: str,
        ns_moves: Sequence[Tuple[str, str]] = (),
        route_changes: Sequence[Tuple[str, int]] = (),
        geo_changes: Sequence[Tuple[str, str]] = (),
        custom: Optional[Callable[[AddressPlan], None]] = None,
    ) -> None:
        self.day = day_index(day)
        self.description = description
        #: (ns hostname, new infra provider key) renumberings.
        self.ns_moves = tuple(ns_moves)
        #: (prefix text, new origin ASN) BGP-level transfers.
        self.route_changes = tuple(route_changes)
        #: (prefix text, new country) geolocation re-publications.
        self.geo_changes = tuple(geo_changes)
        self.custom = custom

    def apply_to_plan(self, plan: AddressPlan) -> None:
        """Apply the address-plan-level parts of the event."""
        for hostname, new_infra in self.ns_moves:
            plan.move_ns_host(hostname, new_infra)
        if self.custom is not None:
            self.custom(plan)

    def __repr__(self) -> str:
        return f"InfraEvent(day {self.day}: {self.description})"
