"""Simulation: world model, events, flows, and the conflict scenario."""

from .certsim import (
    CaSpec,
    CertSimConfig,
    PkiBundle,
    RUSSIAN_CA_ORG,
    SanctionedIssuanceSpec,
    simulate_pki,
)
from .conflict import ConflictScenarioConfig, build_pki, build_scenario, build_world
from .events import DomainEventLog, Field, InfraEvent
from .flows import Flow, FlowEngine, Pulse
from .plans import (
    LABEL_FULL,
    LABEL_NON,
    LABEL_PART,
    LABEL_NAMES,
    DnsPlan,
    DnsPlanTable,
    HostingPlan,
    HostingPlanTable,
    composition_label,
)
from .builder import WorldBuilder, counterfactual_flows
from .manifest import ScenarioManifest
from .validate import validate_world
from .world import InfraEpoch, World, WorldDay

__all__ = [
    "CaSpec",
    "CertSimConfig",
    "PkiBundle",
    "RUSSIAN_CA_ORG",
    "SanctionedIssuanceSpec",
    "simulate_pki",
    "ConflictScenarioConfig",
    "build_pki",
    "build_scenario",
    "build_world",
    "DomainEventLog",
    "Field",
    "InfraEvent",
    "Flow",
    "FlowEngine",
    "Pulse",
    "LABEL_FULL",
    "LABEL_NON",
    "LABEL_PART",
    "LABEL_NAMES",
    "DnsPlan",
    "DnsPlanTable",
    "HostingPlan",
    "HostingPlanTable",
    "composition_label",
    "WorldBuilder",
    "counterfactual_flows",
    "ScenarioManifest",
    "validate_world",
    "InfraEpoch",
    "World",
    "WorldDay",
]
