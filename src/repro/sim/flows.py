"""Cohort flows: turning scenario intent into per-domain events.

Scenario authors express movement as either a gradual :class:`Flow`
("5.3 percentage points drift from these plans to that plan between these
dates") or an instantaneous :class:`Pulse` ("on March 16, 42.8% of the
domains on this plan move to that plan").  The :class:`FlowEngine` runs a
forward pass over the timeline, drawing the individual domains that move
each day, and emits a :class:`~repro.sim.events.DomainEventLog` plus the
final assignment arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..registry.population import DomainPopulation
from ..timeline import DateLike, day_index
from .events import DomainEventLog, Field

__all__ = ["Flow", "Pulse", "FlowEngine"]


class Flow:
    """A gradual reassignment totalling ``total_pp`` percentage points.

    The daily expected move count is ``total_pp/100 × active ÷ duration``,
    drawn Poisson, picking uniformly among active domains currently on a
    source plan.
    """

    def __init__(
        self,
        field: Field,
        sources: Sequence[str],
        dest: str,
        total_pp: float,
        start: DateLike,
        end: DateLike,
    ) -> None:
        if total_pp <= 0:
            raise ScenarioError(f"flow needs positive total_pp, got {total_pp}")
        self.field = field
        self.sources = tuple(sources)
        self.dest = dest
        self.total_pp = total_pp
        self.start_day = day_index(start)
        self.end_day = day_index(end)
        if self.end_day <= self.start_day:
            raise ScenarioError("flow window is empty")

    @property
    def duration(self) -> int:
        """Days the flow is active."""
        return self.end_day - self.start_day

    def __repr__(self) -> str:
        return (
            f"Flow({self.field.name} {self.sources} -> {self.dest} "
            f"{self.total_pp}pp over days {self.start_day}..{self.end_day})"
        )


class Pulse:
    """An instantaneous partial migration on one day.

    Either ``fraction`` of the current source members move, or an exact
    ``count`` of them (whichever is given).
    """

    def __init__(
        self,
        field: Field,
        sources: Sequence[str],
        dest: str,
        day: DateLike,
        fraction: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        if (fraction is None) == (count is None):
            raise ScenarioError("pulse needs exactly one of fraction/count")
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ScenarioError(f"pulse fraction out of (0, 1]: {fraction}")
        if count is not None and count < 0:
            raise ScenarioError(f"negative pulse count: {count}")
        self.field = field
        self.sources = tuple(sources)
        self.dest = dest
        self.day = day_index(day)
        self.fraction = fraction
        self.count = count

    def __repr__(self) -> str:
        quantum = f"{self.fraction:.0%}" if self.fraction is not None else str(self.count)
        return (
            f"Pulse({self.field.name} {self.sources} -> {self.dest} "
            f"{quantum} on day {self.day})"
        )


class FlowEngine:
    """Executes flows and pulses into concrete per-domain events."""

    def __init__(
        self,
        population: DomainPopulation,
        plan_ids: Dict[Field, Dict[str, int]],
        rng: np.random.Generator,
    ) -> None:
        self._population = population
        self._plan_ids = plan_ids
        self._rng = rng

    def _resolve(self, field: Field, keys: Sequence[str]) -> np.ndarray:
        table = self._plan_ids[field]
        try:
            return np.asarray([table[key] for key in keys], dtype=np.int32)
        except KeyError as exc:
            raise ScenarioError(f"unknown plan key {exc.args[0]!r}") from exc

    def run(
        self,
        base: Dict[Field, np.ndarray],
        flows: Sequence[Flow],
        pulses: Sequence[Pulse],
        horizon_days: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[DomainEventLog, Dict[Field, np.ndarray]]:
        """Execute everything; returns (event log, final state arrays).

        Domains flagged in ``exclude`` are never picked by random draws —
        scenarios use this to keep scripted cohorts (the sanctioned set)
        out of background churn.
        """
        events = DomainEventLog()
        state = {field: array.copy() for field, array in base.items()}
        created = self._population.created
        deleted = self._population.deleted
        eligible_base = (
            ~exclude if exclude is not None
            else np.ones(len(self._population), dtype=bool)
        )

        flows_by_day: Dict[int, List[Flow]] = {}
        for flow in flows:
            for day in range(max(flow.start_day, 0), min(flow.end_day, horizon_days)):
                flows_by_day.setdefault(day, []).append(flow)
        pulses_by_day: Dict[int, List[Pulse]] = {}
        for pulse in pulses:
            pulses_by_day.setdefault(pulse.day, []).append(pulse)

        event_days = sorted(set(flows_by_day) | set(pulses_by_day))
        for day in event_days:
            active = (created <= day) & (day < deleted) & eligible_base
            active_count = int(active.sum())
            if active_count == 0:
                continue
            for flow in flows_by_day.get(day, []):
                expected = flow.total_pp / 100.0 * active_count / flow.duration
                moves = int(self._rng.poisson(expected))
                if moves == 0:
                    continue
                self._move(
                    events, state, active, flow.field, flow.sources, flow.dest,
                    day, count=moves,
                )
            for pulse in pulses_by_day.get(day, []):
                self._move(
                    events, state, active, pulse.field, pulse.sources, pulse.dest,
                    day, fraction=pulse.fraction, count=pulse.count,
                )
        return events, state

    def _move(
        self,
        events: DomainEventLog,
        state: Dict[Field, np.ndarray],
        active: np.ndarray,
        field: Field,
        sources: Sequence[str],
        dest: str,
        day: int,
        fraction: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        source_ids = self._resolve(field, sources)
        dest_id = int(self._plan_ids[field][dest]) if dest in self._plan_ids[field] else None
        if dest_id is None:
            raise ScenarioError(f"unknown plan key {dest!r}")
        candidates = np.flatnonzero(active & np.isin(state[field], source_ids))
        if len(candidates) == 0:
            return
        if fraction is not None:
            take = int(round(fraction * len(candidates)))
        else:
            assert count is not None
            take = min(count, len(candidates))
        if take <= 0:
            return
        picks = self._rng.choice(candidates, size=take, replace=False)
        for index in picks:
            events.add(day, int(index), field, dest_id)
        state[field][picks] = dest_id
