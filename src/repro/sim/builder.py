"""A public builder for custom scenarios and counterfactuals.

The calibrated conflict scenario is one configuration of the general
machinery (plans, weights, flows, pulses, infra events).  ``WorldBuilder``
exposes that machinery as a safe, validating API so downstream users can
compose their own worlds — or derive counterfactuals from the conflict
scenario ("what if Cloudflare had exited too?") and measure the outcome
with the unchanged analysis pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScenarioError
from ..providers.addressing import AddressPlan
from ..providers.catalog import ProviderCatalog, standard_catalog
from ..registry.population import DomainPopulation, PopulationConfig
from ..rng import derive_rng
from ..sanctions.lists import SanctionsList
from ..timeline import STUDY_DAYS, DateLike
from .conflict import (
    ConflictScenarioConfig,
    DNS_WEIGHTS,
    HOSTING_WEIGHTS,
    _dns_plans,
    _hosting_plans,
    _weight_vector,
)
from .events import Field, InfraEvent
from .flows import Flow, FlowEngine, Pulse
from .manifest import ScenarioManifest
from .world import World

__all__ = ["WorldBuilder", "counterfactual_flows"]


class WorldBuilder:
    """Compose a world from weights, flows, pulses, and infra events.

    By default the builder starts from the standard provider market and
    the conflict scenario's plan tables and 2017 weights, with *no*
    scripted events — a "peaceful baseline".  Add flows/pulses/events to
    taste, then :meth:`build`.
    """

    def __init__(
        self,
        scale: float = 1000.0,
        seed: int = 20220224,
        catalog: Optional[ProviderCatalog] = None,
    ) -> None:
        self._config = ConflictScenarioConfig(
            scale=scale, seed=seed, with_pki=False
        )
        self._catalog = catalog or standard_catalog()
        self._dns_weights: Dict[str, float] = dict(DNS_WEIGHTS)
        self._hosting_weights: Dict[str, float] = dict(HOSTING_WEIGHTS)
        self._flows: List[Flow] = []
        self._pulses: List[Pulse] = []
        self._infra_events: List[InfraEvent] = []
        self._manifest = ScenarioManifest()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def set_dns_weight(self, plan_key: str, weight: float) -> "WorldBuilder":
        """Override one DNS cohort's initial weight (percent)."""
        if weight < 0:
            raise ScenarioError(f"negative weight for {plan_key}")
        self._dns_weights[plan_key] = weight
        return self

    def set_hosting_weight(self, plan_key: str, weight: float) -> "WorldBuilder":
        """Override one hosting cohort's initial weight (percent)."""
        if weight < 0:
            raise ScenarioError(f"negative weight for {plan_key}")
        self._hosting_weights[plan_key] = weight
        return self

    def add_flow(self, flow: Flow, note: str = "") -> "WorldBuilder":
        """Add a gradual reassignment."""
        self._flows.append(flow)
        if note:
            from ..timeline import from_day_index

            self._manifest.record(from_day_index(flow.start_day), "custom", note)
        return self

    def add_pulse(self, pulse: Pulse, note: str = "") -> "WorldBuilder":
        """Add an instantaneous partial migration."""
        self._pulses.append(pulse)
        if note:
            from ..timeline import from_day_index

            self._manifest.record(from_day_index(pulse.day), "custom", note)
        return self

    def add_infra_event(self, event: InfraEvent, note: str = "") -> "WorldBuilder":
        """Add an infrastructure-level change."""
        self._infra_events.append(event)
        if note:
            from ..timeline import from_day_index

            self._manifest.record(from_day_index(event.day), "custom", note)
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self) -> World:
        """Assemble and validate the world."""
        config = self._config
        address_plan = AddressPlan(self._catalog)
        dns_table = _dns_plans(self._catalog)
        hosting_table = _hosting_plans(self._catalog)

        population = DomainPopulation(
            PopulationConfig(seed=config.seed, initial_count=config.initial_count)
        )
        n = len(population)
        rng = derive_rng(config.seed, "builder", "assignment")
        base_dns = rng.choice(
            len(dns_table), size=n, p=_weight_vector(dns_table, self._dns_weights)
        ).astype(np.int32)
        base_host = rng.choice(
            len(hosting_table),
            size=n,
            p=_weight_vector(hosting_table, self._hosting_weights),
        ).astype(np.int32)

        engine = FlowEngine(
            population,
            {
                Field.DNS: {p.key: i for i, p in enumerate(dns_table.plans())},
                Field.HOSTING: {
                    p.key: i for i, p in enumerate(hosting_table.plans())
                },
            },
            derive_rng(config.seed, "builder", "flows"),
        )
        events, _ = engine.run(
            base={Field.HOSTING: base_host, Field.DNS: base_dns},
            flows=self._flows,
            pulses=self._pulses,
            horizon_days=STUDY_DAYS,
        )

        world = World(
            population=population,
            catalog=self._catalog,
            address_plan=address_plan,
            dns_plans=dns_table,
            hosting_plans=hosting_table,
            base_hosting=base_host,
            base_dns=base_dns,
            events=events,
            infra_events=list(self._infra_events),
            sanctions=SanctionsList([]),
            sanctioned_indices=np.asarray([], dtype=np.int64),
        )
        world.manifest = self._manifest
        return world


def counterfactual_flows(
    provider_dns_plan: str,
    provider_hosting_plan: str,
    dns_refuge: str,
    hosting_refuge: str,
    start: DateLike,
    end: DateLike,
    dns_pp: float,
    hosting_pp: float,
) -> Tuple[List[Flow], List[Pulse]]:
    """Convenience: the flows modelling one provider's full market exit."""
    flows = [
        Flow(Field.DNS, [provider_dns_plan], dns_refuge, dns_pp, start, end),
        Flow(
            Field.HOSTING, [provider_hosting_plan], hosting_refuge, hosting_pp,
            start, end,
        ),
    ]
    return flows, []
