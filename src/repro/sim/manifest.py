"""Scenario manifest: the scripted timeline, human-readable.

The conflict scenario is driven by dated events (provider exits, the
Netnod renumbering, CA issuance stops, sanctions waves).  The manifest
records them as ``(date, actor, description)`` entries so examples,
documentation, and the CLI can narrate what the simulation *did* —
without the analysis layer ever reading it.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Tuple

from ..timeline import DateLike, as_date

__all__ = ["ScenarioManifest"]


class ScenarioManifest:
    """An ordered, dated list of scenario events."""

    def __init__(self) -> None:
        self._entries: List[Tuple[_dt.date, str, str]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, date: DateLike, actor: str, description: str) -> None:
        """Add one event."""
        self._entries.append((as_date(date), actor, description))

    def entries(self) -> List[Tuple[_dt.date, str, str]]:
        """All events, chronological (stable for same-day events)."""
        return sorted(self._entries, key=lambda entry: entry[0])

    def between(
        self, start: DateLike, end: DateLike
    ) -> List[Tuple[_dt.date, str, str]]:
        """Events within [start, end]."""
        lo, hi = as_date(start), as_date(end)
        return [entry for entry in self.entries() if lo <= entry[0] <= hi]

    def render(self) -> str:
        """Plain-text timeline."""
        lines = ["scenario timeline:"]
        for date, actor, description in self.entries():
            lines.append(f"  {date}  [{actor:12s}] {description}")
        return "\n".join(lines)
