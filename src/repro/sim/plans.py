"""DNS and hosting plans: the configurations domains are assigned to.

A *DNS plan* is a concrete set of name-server hosts a domain delegates to
(possibly spanning two providers — primary plus secondary).  A *hosting
plan* is the set of networks the domain's apex A records live in (one
component normally, two for dual-homed setups).

For the columnar fast path, per-plan *derived label tables* precompute
everything the analysis needs — country composition, name-TLD
composition, per-TLD membership, origin ASNs — against a specific
infrastructure state (address plan + routing + geolocation).  A domain's
daily analysis then reduces to one table lookup by plan id.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dns.name import DomainName
from ..errors import ScenarioError
from ..geo.countries import RU
from ..geo.database import GeoDatabase
from ..net.rib import RoutingTable
from ..providers.addressing import AddressPlan
from ..registry.tld import RUSSIAN_TLDS

__all__ = [
    "LABEL_FULL",
    "LABEL_PART",
    "LABEL_NON",
    "LABEL_NAMES",
    "composition_label",
    "DnsPlan",
    "HostingPlan",
    "DnsPlanTable",
    "HostingPlanTable",
    "DnsPlanLabels",
    "HostingPlanLabels",
]

#: All measured locations inside Russia.
LABEL_FULL = 0
#: Some, but not all, measured locations inside Russia.
LABEL_PART = 1
#: No measured location inside Russia.
LABEL_NON = 2

LABEL_NAMES = {LABEL_FULL: "full", LABEL_PART: "part", LABEL_NON: "non"}


def composition_label(flags: Sequence[bool]) -> int:
    """Full/part/non from per-element "is Russian" flags."""
    if not flags:
        raise ScenarioError("cannot label an empty composition")
    russian = sum(bool(flag) for flag in flags)
    if russian == len(flags):
        return LABEL_FULL
    if russian == 0:
        return LABEL_NON
    return LABEL_PART


class DnsPlan:
    """A delegation target: the NS hostnames a domain's NS set contains."""

    __slots__ = ("key", "ns_hostnames")

    def __init__(self, key: str, ns_hostnames: Sequence[str]) -> None:
        if not ns_hostnames:
            raise ScenarioError(f"DNS plan {key} has no name servers")
        self.key = key
        self.ns_hostnames: Tuple[DomainName, ...] = tuple(
            DomainName.parse(hostname) for hostname in ns_hostnames
        )

    def ns_tlds(self) -> Tuple[str, ...]:
        """Distinct TLDs of the NS hostnames, sorted."""
        tlds = {hostname.tld for hostname in self.ns_hostnames}
        return tuple(sorted(tld for tld in tlds if tld is not None))

    def __repr__(self) -> str:
        return f"DnsPlan({self.key}, {len(self.ns_hostnames)} NS)"


class HostingPlan:
    """Where a domain's apex A records live.

    Each component is ``(provider_key, asn)``; the apex resolves to one
    address per component.
    """

    __slots__ = ("key", "components")

    def __init__(self, key: str, components: Sequence[Tuple[str, int]]) -> None:
        if not components:
            raise ScenarioError(f"hosting plan {key} has no components")
        self.key = key
        self.components: Tuple[Tuple[str, int], ...] = tuple(components)

    @property
    def primary_asn(self) -> int:
        """ASN of the first component."""
        return self.components[0][1]

    def asns(self) -> Tuple[int, ...]:
        """All component ASNs (duplicates removed, order kept)."""
        seen: List[int] = []
        for _, asn in self.components:
            if asn not in seen:
                seen.append(asn)
        return tuple(seen)

    def __repr__(self) -> str:
        return f"HostingPlan({self.key}, {self.components})"


class DnsPlanLabels:
    """Derived per-DNS-plan labels for one infrastructure epoch."""

    def __init__(
        self,
        geo_label: np.ndarray,
        tld_label: np.ndarray,
        tld_names: List[str],
        tld_membership: np.ndarray,
        ns_asns: List[Tuple[int, ...]],
        ns_countries: List[Tuple[Optional[str], ...]],
        ns_addresses: List[Tuple[int, ...]],
    ) -> None:
        self.geo_label = geo_label
        self.tld_label = tld_label
        self.tld_names = tld_names
        self.tld_membership = tld_membership  # bool [n_plans, n_tlds]
        self.ns_asns = ns_asns
        self.ns_countries = ns_countries
        self.ns_addresses = ns_addresses

    def tld_index(self, tld: str) -> int:
        """Column index of ``tld`` in the membership matrix."""
        return self.tld_names.index(tld)


class HostingPlanLabels:
    """Derived per-hosting-plan labels for one infrastructure epoch."""

    def __init__(
        self,
        geo_label: np.ndarray,
        primary_asn: np.ndarray,
        asn_sets: List[Tuple[int, ...]],
        countries: List[Tuple[Optional[str], ...]],
    ) -> None:
        self.geo_label = geo_label
        self.primary_asn = primary_asn
        self.asn_sets = asn_sets
        self.countries = countries


class DnsPlanTable:
    """All DNS plans of a scenario, indexed by dense integer ids."""

    def __init__(self) -> None:
        self._plans: List[DnsPlan] = []
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._plans)

    def add(self, plan: DnsPlan) -> int:
        """Register a plan; returns its id."""
        if plan.key in self._ids:
            raise ScenarioError(f"duplicate DNS plan key {plan.key}")
        self._plans.append(plan)
        self._ids[plan.key] = len(self._plans) - 1
        return self._ids[plan.key]

    def id_of(self, key: str) -> int:
        """Id for a plan key."""
        plan_id = self._ids.get(key)
        if plan_id is None:
            raise ScenarioError(f"unknown DNS plan {key}")
        return plan_id

    def plan(self, plan_id: int) -> DnsPlan:
        """Plan by id."""
        return self._plans[plan_id]

    def plans(self) -> List[DnsPlan]:
        """All plans, id order."""
        return list(self._plans)

    def derive(
        self,
        address_plan: AddressPlan,
        routing: RoutingTable,
        geo: GeoDatabase,
    ) -> DnsPlanLabels:
        """Compute the label table against one infrastructure state."""
        n = len(self._plans)
        geo_label = np.zeros(n, dtype=np.int8)
        tld_label = np.zeros(n, dtype=np.int8)
        all_tlds = sorted({tld for plan in self._plans for tld in plan.ns_tlds()})
        tld_col = {tld: i for i, tld in enumerate(all_tlds)}
        membership = np.zeros((n, len(all_tlds)), dtype=bool)
        ns_asns: List[Tuple[int, ...]] = []
        ns_countries: List[Tuple[Optional[str], ...]] = []
        ns_addresses: List[Tuple[int, ...]] = []

        for plan_id, plan in enumerate(self._plans):
            addresses = tuple(
                address_plan.ns_address(hostname) for hostname in plan.ns_hostnames
            )
            countries = tuple(geo.lookup(address) for address in addresses)
            asns = tuple(
                asn for asn in (routing.lookup(a) for a in addresses) if asn is not None
            )
            geo_label[plan_id] = composition_label([c == RU for c in countries])
            tlds = plan.ns_tlds()
            tld_label[plan_id] = composition_label(
                [tld in RUSSIAN_TLDS for tld in tlds]
            )
            for tld in tlds:
                membership[plan_id, tld_col[tld]] = True
            ns_asns.append(asns)
            ns_countries.append(countries)
            ns_addresses.append(addresses)

        return DnsPlanLabels(
            geo_label, tld_label, all_tlds, membership, ns_asns, ns_countries,
            ns_addresses,
        )


class HostingPlanTable:
    """All hosting plans of a scenario, indexed by dense integer ids."""

    def __init__(self) -> None:
        self._plans: List[HostingPlan] = []
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._plans)

    def add(self, plan: HostingPlan) -> int:
        """Register a plan; returns its id."""
        if plan.key in self._ids:
            raise ScenarioError(f"duplicate hosting plan key {plan.key}")
        self._plans.append(plan)
        self._ids[plan.key] = len(self._plans) - 1
        return self._ids[plan.key]

    def id_of(self, key: str) -> int:
        """Id for a plan key."""
        plan_id = self._ids.get(key)
        if plan_id is None:
            raise ScenarioError(f"unknown hosting plan {key}")
        return plan_id

    def plan(self, plan_id: int) -> HostingPlan:
        """Plan by id."""
        return self._plans[plan_id]

    def plans(self) -> List[HostingPlan]:
        """All plans, id order."""
        return list(self._plans)

    def derive(
        self,
        address_plan: AddressPlan,
        routing: RoutingTable,
        geo: GeoDatabase,
    ) -> HostingPlanLabels:
        """Compute the label table against one infrastructure state."""
        n = len(self._plans)
        geo_label = np.zeros(n, dtype=np.int8)
        primary_asn = np.zeros(n, dtype=np.int64)
        asn_sets: List[Tuple[int, ...]] = []
        countries: List[Tuple[Optional[str], ...]] = []

        for plan_id, plan in enumerate(self._plans):
            # Component country is a property of the pool, not of the
            # specific hashed address, so probe one pool address.
            comp_countries = []
            for provider_key, asn in plan.components:
                pool = address_plan.hosting_pool(asn)
                comp_countries.append(geo.lookup(pool.first))
            geo_label[plan_id] = composition_label(
                [c == RU for c in comp_countries]
            )
            primary_asn[plan_id] = plan.primary_asn
            asn_sets.append(plan.asns())
            countries.append(tuple(comp_countries))

        return HostingPlanLabels(geo_label, primary_asn, asn_sets, countries)
